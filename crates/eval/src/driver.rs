//! Shared experiment plumbing: seeded sampling and per-destination
//! parallel sharding.
//!
//! Every Chapter 5 experiment has the same outer shape — pick sample
//! destinations, solve the BGP stable state once per destination, then
//! evaluate many sources against it. Destinations are independent, so we
//! shard them over scoped threads (no async runtime: this is pure
//! CPU-bound work).

use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Sample `n` distinct destinations (fewer if the graph is smaller).
pub fn sample_dests(topo: &Topology, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut all: Vec<NodeId> = topo.nodes().collect();
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

/// Sample `n` distinct sources, excluding `dest`.
pub fn sample_srcs(topo: &Topology, dest: NodeId, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed ^ (dest as u64) << 20);
    let mut all: Vec<NodeId> = topo.nodes().filter(|&x| x != dest).collect();
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

/// Derive a per-destination RNG deterministically.
pub fn rng_for(seed: u64, dest: NodeId, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (dest as u64).wrapping_mul(0x0100_0000_01b3) ^ salt)
}

/// Solve each destination's routing state and map `f` over them in
/// parallel; results come back in destination order.
pub fn par_over_dests<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &RoutingState<'_>) -> T + Sync,
{
    miro_bgp::engine::par_over_dests(topo, dests, threads, f)
}

/// [`par_over_dests`] with the what-if cache: the closure can answer any
/// number of failed-link variants per destination through the
/// incremental delta path instead of full re-solves.
pub fn par_over_dests_whatif<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &mut miro_bgp::engine::WhatIf<'_, '_>) -> T + Sync,
{
    miro_bgp::engine::par_over_dests_whatif(topo, dests, threads, f)
}

/// Uniform random element (seeded) — tiny convenience used by samplers.
pub fn pick<'a, T>(rng: &mut StdRng, slice: &'a [T]) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_range(0..slice.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let t = GenParams::tiny(1).generate();
        let a = sample_dests(&t, 10, 42);
        let b = sample_dests(&t, 10, 42);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), a.len());
        assert_ne!(sample_dests(&t, 10, 43), a);
    }

    #[test]
    fn src_sampling_excludes_dest() {
        let t = GenParams::tiny(2).generate();
        let d = 5;
        let srcs = sample_srcs(&t, d, 1000, 9);
        assert!(!srcs.contains(&d));
        assert_eq!(srcs.len(), t.num_nodes() - 1);
    }

    #[test]
    fn par_over_dests_matches_serial() {
        let t = GenParams::tiny(3).generate();
        let dests = sample_dests(&t, 8, 5);
        let par = par_over_dests(&t, &dests, 4, |d, st| (d, st.reachable_count()));
        let ser = par_over_dests(&t, &dests, 1, |d, st| (d, st.reachable_count()));
        assert_eq!(par, ser);
        assert_eq!(par.len(), 8);
        for (i, &(d, _)) in par.iter().enumerate() {
            assert_eq!(d, dests[i], "results in destination order");
        }
    }
}
