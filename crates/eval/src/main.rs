//! `miro-eval`: regenerate every table and figure of the paper.
//!
//! ```text
//! miro-eval [OPTIONS] <COMMAND>
//!
//! Commands:
//!   table5-1   Dataset attributes (Table 5.1)
//!   fig5-1     Node degree distribution (Figure 5.1)
//!   fig5-2     Number of available routes (Figures 5.2/5.3)
//!   table5-2   Avoid-AS success rates (Table 5.2)
//!   table5-3   Negotiation state (Table 5.3)
//!   fig5-4     Incremental deployment (Figures 5.4/5.5)
//!   fig5-6     Inbound traffic control (Figures 5.6/5.7)
//!   fig7-1     Convergence gadget, Figure 7.1
//!   fig7-2     Convergence gadget, Figure 7.2
//!   failures   Single-link failure sweep (incremental delta engine)
//!   whole-table  Summarize a `miro shard-solve` result table (needs --table)
//!   all        Everything above
//!
//! Options:
//!   --scale F     Topology scale, 1.0 = paper size   [default: 0.05]
//!   --seed N      Master seed                        [default: 20060911]
//!   --dests N     Sampled destinations per dataset   [default: 120]
//!   --srcs N      Sampled sources per destination    [default: 60]
//!   --threads N   Worker threads                     [default: CPUs]
//!   --dataset S   Restrict to one dataset (gao2000|gao2003|gao2005|agarwal2004)
//!   --cache P     Run on a `miro ingest` JSON cache instead of generated presets
//!   --table P     RouteTableSet file for the `whole-table` command
//! ```

use miro_eval::datasets::{fig5_1, table5_1, Dataset, EvalConfig};
use miro_eval::{avoid, convergence_exp, deploy, inbound, report, routes};
use miro_topology::gen::DatasetPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `miro-eval help` for usage");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = EvalConfig::default();
    let mut command: Option<String> = None;
    let mut only: Option<DatasetPreset> = None;
    let mut cache: Option<String> = None;
    let mut table: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => cfg.scale = next("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--seed" => cfg.seed = next("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--dests" => cfg.dest_samples = next("--dests")?.parse().map_err(|e| format!("--dests: {e}"))?,
            "--srcs" => cfg.src_samples = next("--srcs")?.parse().map_err(|e| format!("--srcs: {e}"))?,
            "--threads" => cfg.threads = next("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--dataset" => {
                only = Some(match next("--dataset")?.as_str() {
                    "gao2000" => DatasetPreset::Gao2000,
                    "gao2003" => DatasetPreset::Gao2003,
                    "gao2005" => DatasetPreset::Gao2005,
                    "agarwal2004" => DatasetPreset::Agarwal2004,
                    other => return Err(format!("unknown dataset {other:?}")),
                })
            }
            "--cache" => cache = Some(next("--cache")?),
            "--table" => table = Some(next("--table")?),
            "--help" | "-h" => command = Some("help".to_string()),
            c if !c.starts_with('-') && command.is_none() => command = Some(c.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let command = command.unwrap_or_else(|| "help".to_string());
    let presets: Vec<DatasetPreset> =
        only.map(|p| vec![p]).unwrap_or_else(|| DatasetPreset::ALL.to_vec());

    // `--cache` swaps the generated presets for one ingested snapshot.
    let build = |presets: &[DatasetPreset]| -> Result<Vec<Dataset>, String> {
        match &cache {
            Some(path) => Ok(vec![Dataset::load_cache(path)?]),
            None => Ok(presets.iter().map(|&p| Dataset::build(p, &cfg)).collect()),
        }
    };

    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("miro-eval: regenerate the MIRO paper's tables and figures");
            println!("commands: table5-1 fig5-1 fig5-2 table5-2 table5-3 fig5-4 fig5-6 fig7-1 fig7-2 failures ablations dynamics whole-table all");
            println!("options: --scale F --seed N --dests N --srcs N --threads N --dataset S --cache P --table P");
        }
        "table5-1" => cmd_table5_1(&build(&presets)?),
        "fig5-1" => cmd_fig5_1(&build(&presets)?),
        "fig5-2" => cmd_fig5_2(&build(&presets)?, &cfg),
        "table5-2" => cmd_avoid(&build(&presets)?, &cfg, true, false, false),
        "table5-3" => cmd_avoid(&build(&presets)?, &cfg, false, true, false),
        "fig5-4" => cmd_avoid(&build(&presets)?, &cfg, false, false, true),
        "fig5-6" => cmd_fig5_6(&build(&presets)?, &cfg),
        "fig7-1" => cmd_fig7(1),
        "fig7-2" => cmd_fig7(2),
        "failures" => cmd_failures(&build(&presets)?, &cfg),
        "ablations" => cmd_ablations(&build(&presets)?, &cfg),
        "dynamics" => cmd_dynamics(&cfg, only.unwrap_or(DatasetPreset::Gao2005)),
        "whole-table" => {
            let path = table.ok_or("whole-table needs --table FILE (a `miro shard-solve` output)")?;
            print!("{}", miro_eval::whole_table::run_file(&path)?);
        }
        "all" => {
            let ds = build(&presets)?;
            cmd_table5_1(&ds);
            cmd_fig5_1(&ds);
            cmd_fig5_2(&ds, &cfg);
            cmd_avoid(&ds, &cfg, true, true, true);
            cmd_fig5_6(&ds, &cfg);
            cmd_fig7(1);
            cmd_fig7(2);
            cmd_ablations(&ds, &cfg);
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn cmd_table5_1(datasets: &[Dataset]) {
    let rows = table5_1(datasets);
    println!("Table 5.1: Attributes of the data sets (synthetic, scaled)\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nodes.to_string(),
                r.edges.to_string(),
                r.pc_links.to_string(),
                r.peering_links.to_string(),
                r.sibling_links.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["Name", "Nodes", "Edges", "P/C links", "Peering links", "Sibling links"],
            &body
        )
    );
    report::persist("table5-1", &rows);
    println!();
}

fn cmd_fig5_1(datasets: &[Dataset]) {
    let series = fig5_1(datasets);
    println!("Figure 5.1: Node degree distribution (CCDF)\n");
    for s in &series {
        let pick: Vec<String> = s
            .points
            .iter()
            .filter(|(d, _)| [1, 2, 5, 10, 20, 40, 100, 200].contains(d))
            .map(|(d, c)| format!("deg>={d}: {c}"))
            .collect();
        println!("{:<14} {}", s.name, pick.join("  "));
        if let Some((d, c)) = s.points.last() {
            println!("{:<14} max degree {d} held by {c} node(s)", "");
        }
    }
    report::persist("fig5-1", &series);
    println!();
}

fn cmd_fig5_2(datasets: &[Dataset], cfg: &EvalConfig) {
    println!("Figures 5.2/5.3: Number of available routes per (src, dst) pair\n");
    for ds in datasets {
        let r = routes::fig5_2(ds, cfg);
        println!("[{}]  ({} pairs per series)", r.dataset, r.series[0].counts.len());
        for s in &r.series {
            print!(
                "  {:<12} no-alternate {}  {}",
                s.label,
                report::pct(s.no_alternates_pct()),
                report::cdf_summary("routes", &s.counts)
            );
        }
        report::persist(&format!("fig5-2-{}", ds.name().replace(' ', "-")), &r);
        println!();
    }
}

fn cmd_avoid(datasets: &[Dataset], cfg: &EvalConfig, t52: bool, t53: bool, f54: bool) {
    for ds in datasets {
        let probes = avoid::sample_probes(ds, cfg);
        if t52 {
            let row = avoid::table5_2_row(ds.name(), &probes);
            println!(
                "Table 5.2 [{}] ({} triples): Single {}  Multi/s {}  Multi/e {}  Multi/a {}  Source {}  Reroute {}",
                row.name,
                row.triples,
                report::pct(row.single_pct),
                report::pct(row.multi_s_pct),
                report::pct(row.multi_e_pct),
                report::pct(row.multi_a_pct),
                report::pct(row.source_pct),
                report::pct(row.reroute_pct),
            );
            report::persist(&format!("table5-2-{}", ds.name().replace(' ', "-")), &row);
        }
        if t53 {
            let rows = avoid::table5_3_rows(&probes);
            println!("Table 5.3 [{}]:", ds.name());
            let body: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.policy.clone(),
                        report::pct(r.success_pct),
                        format!("{:.2}", r.as_per_tuple),
                        format!("{:.1}", r.path_per_tuple),
                    ]
                })
                .collect();
            print!(
                "{}",
                report::table(&["Policy", "Success Rate", "AS#/tuple", "Path#/tuple"], &body)
            );
            report::persist(&format!("table5-3-{}", ds.name().replace(' ', "-")), &rows);
        }
        if f54 {
            let r = deploy::fig5_4(ds, &probes);
            println!("Figures 5.4/5.5 [{}]: fraction of full /a gain vs adoption", r.dataset);
            for c in r.by_degree.iter().chain([&r.low_degree_first]) {
                print!("{}", report::curve(&c.label, &c.points));
            }
            report::persist(&format!("fig5-4-{}", ds.name().replace(' ', "-")), &r);
        }
        println!();
    }
}

fn cmd_fig5_6(datasets: &[Dataset], cfg: &EvalConfig) {
    println!("Figures 5.6/5.7: Multi-homed stub ASes with power nodes\n");
    for ds in datasets {
        let r = inbound::fig5_6(ds, cfg);
        println!("[{}]  ({} stubs evaluated)", r.dataset, r.stubs_evaluated);
        for (pi, pname) in ["strict", "flexible"].iter().enumerate() {
            for (mi, mname) in ["convert_all", "independent"].iter().enumerate() {
                let pts: Vec<(f64, f64)> = [0.05, 0.10, 0.15, 0.25, 0.35, 0.50]
                    .iter()
                    .map(|&t| (t, r.cdf_at(pi, mi, t)))
                    .collect();
                print!("{}", report::curve(&format!("  {pname}/{mname}: stubs with >= x moved"), &pts));
            }
        }
        let (one, two) = r.power_distance_stats();
        println!(
            "  power nodes: {:.0}% immediate neighbors, {:.0}% two hops away",
            one * 100.0,
            two * 100.0
        );
        report::persist(&format!("fig5-6-{}", ds.name().replace(' ', "-")), &r);
        println!();
    }
}

fn cmd_ablations(datasets: &[Dataset], cfg: &EvalConfig) {
    use miro_eval::ablations;
    println!("Ablations (DESIGN.md): architectures, strategies, state cost\n");
    for ds in datasets {
        println!("[{}]", ds.name());
        let arch = ablations::architecture_comparison(ds, cfg, 8);
        println!("  avoid-AS success by architecture (same triples):");
        for r in &arch {
            println!("    {:<38} {}", r.name, report::pct(r.success_pct));
        }
        let strats = ablations::strategy_comparison(ds, cfg);
        println!("  MIRO /e success by targeting strategy:");
        for r in &strats {
            println!("    {:<38} {}", r.name, report::pct(r.success_pct));
        }
        let (deagg, miro) = ablations::deaggregation_cost(&ds.topo, 2);
        println!(
            "  inbound steering state: subnet-splitting adds {deagg} global \
             table entries; one MIRO tunnel adds {miro}."
        );
        report::persist(
            &format!("ablations-{}", ds.name().replace(' ', "-")),
            &(arch, strats),
        );
        println!();
    }
}

fn cmd_failures(datasets: &[Dataset], cfg: &EvalConfig) {
    println!("Single-link failure sweep (incremental delta engine)\n");
    let rows: Vec<convergence_exp::FailureSweepRow> = datasets
        .iter()
        .map(|ds| convergence_exp::failure_sweep(ds, cfg, 16))
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.events.to_string(),
                r.tree_events.to_string(),
                r.skipped.to_string(),
                format!("{:.1}", r.mean_cone),
                r.max_cone.to_string(),
                r.disconnected.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["Dataset", "Events", "On-tree", "Skipped", "Mean cone", "Max cone", "Disconnected"],
            &body
        )
    );
    report::persist("failures", &rows);
    println!();
}

fn cmd_dynamics(cfg: &EvalConfig, preset: DatasetPreset) {
    use miro_eval::dynamics;
    println!("Convergence dynamics (instrumentation beyond the paper)\n");
    let rows = dynamics::sweep(preset, cfg, &[cfg.scale / 4.0, cfg.scale / 2.0, cfg.scale]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.nodes.to_string(),
                format!("{:.0}", r.bgp_activations_mean),
                r.tunnel_rounds_b.to_string(),
                r.tunnel_rounds_e.to_string(),
                r.tunnel_churn_e.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["Dataset", "Nodes", "BGP activations", "Rounds (B)", "Rounds (E)", "Churn (E)"],
            &body
        )
    );
    report::persist("dynamics", &rows);
    println!();
}

fn cmd_fig7(which: u8) {
    let (title, runs) = if which == 1 {
        ("Figure 7.1: MIRO non-convergence gadget", convergence_exp::run_fig7_1(300))
    } else {
        ("Figure 7.2: strict-policy non-convergence gadget", convergence_exp::run_fig7_2(300))
    };
    println!("{title}\n");
    let body: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                if r.converged { "converged".into() } else { "OSCILLATES".into() },
                r.rounds.to_string(),
                r.establishments.to_string(),
                r.teardowns.to_string(),
                r.tunnels_up.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["Configuration", "Outcome", "Rounds", "Establish", "Teardown", "Tunnels up"],
            &body
        )
    );
    report::persist(&format!("fig7-{which}"), &runs);
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_paths_succeed() {
        assert!(run(&args("help")).is_ok());
        assert!(run(&args("--help")).is_ok());
        assert!(run(&[]).is_ok(), "no command shows help");
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(run(&args("frobnicate")).unwrap_err().contains("unknown command"));
        assert!(run(&args("--bogus 3 help")).unwrap_err().contains("unknown argument"));
        assert!(run(&args("--scale")).unwrap_err().contains("needs a value"));
        assert!(run(&args("--scale xyz help")).unwrap_err().contains("--scale"));
        assert!(run(&args("--dataset mars help")).unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn small_real_run_works() {
        // A tiny but real experiment through the CLI path.
        assert!(run(&args(
            "--scale 0.008 --dests 10 --srcs 8 --threads 2 --dataset gao2000 table5-2"
        ))
        .is_ok());
        assert!(run(&args("fig7-1")).is_ok());
    }

    #[test]
    fn failure_sweep_runs_through_cli() {
        assert!(run(&args(
            "--scale 0.008 --dests 8 --srcs 4 --threads 2 --dataset gao2000 failures"
        ))
        .is_ok());
    }

    #[test]
    fn cache_option_runs_experiments_on_an_ingested_snapshot() {
        use miro_topology::io::stream::{IngestCache, ParseStats};
        use miro_topology::io::TopologyDoc;
        let topo = DatasetPreset::Gao2000.params(0.012, 7).generate();
        let cache = IngestCache::new(
            "unit-cache".into(),
            "test".into(),
            ParseStats::default(),
            TopologyDoc::of(&topo),
        );
        let path = std::env::temp_dir().join("miro_eval_cache_test.json");
        std::fs::write(&path, serde_json::to_string(&cache).unwrap()).unwrap();
        assert!(run(&args(&format!(
            "--cache {} --dests 8 --srcs 4 --threads 2 table5-1",
            path.display()
        )))
        .is_ok());
        assert!(run(&args("--cache /nonexistent.json table5-1"))
            .unwrap_err()
            .contains("cannot read cache"));
    }

    #[test]
    fn flag_order_is_free_and_dataset_restricts() {
        assert!(run(&args(
            "table5-1 --dataset gao2005 --scale 0.01 --seed 5"
        ))
        .is_ok());
    }
}
