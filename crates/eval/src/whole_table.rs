//! Whole-table summary: decode a merged [`RouteTableSet`] (the output of
//! `miro shard-solve`) and report aggregate routing statistics —
//! reachability, AS-hop path-length distribution, and the business-class
//! mix of the chosen routes.
//!
//! This closes the loop on the sharded solve service: the binary tables
//! it produces are not just an artifact to diff, they feed analysis. The
//! summary treats the file as ground truth — decode re-verifies every
//! per-row checksum, so a summary is also an integrity check of the
//! merge.

use miro_shard::format::RouteTableSet;

/// Aggregate statistics over every (source AS, destination) cell of a
/// route table set. The destination's own row entry (hops 0, pointing at
/// itself) is excluded so the numbers describe actual forwarding state.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSummary {
    pub num_nodes: u32,
    pub num_dests: usize,
    /// Off-destination cells with a route.
    pub routed: u64,
    /// Off-destination cells with no route (partition or policy).
    pub unrouted: u64,
    /// Routed cells per first-hop business class: `[customer, peer, provider]`.
    pub class_mix: [u64; 3],
    /// Routed cells per AS-hop count, `hop_hist[h]` = cells at `h` hops.
    pub hop_hist: Vec<u64>,
    pub mean_hops: f64,
    pub max_hops: u16,
}

impl TableSummary {
    pub fn reachable_frac(&self) -> f64 {
        let cells = self.routed + self.unrouted;
        if cells == 0 {
            return 0.0;
        }
        self.routed as f64 / cells as f64
    }
}

/// Scan every row of `set` and fold the per-cell statistics.
pub fn summarize(set: &RouteTableSet) -> Result<TableSummary, String> {
    let mut s = TableSummary {
        num_nodes: set.num_nodes(),
        num_dests: set.dests().len(),
        routed: 0,
        unrouted: 0,
        class_mix: [0; 3],
        hop_hist: Vec::new(),
        mean_hops: 0.0,
        max_hops: 0,
    };
    let mut hop_total: u64 = 0;
    for (i, &dest) in set.dests().iter().enumerate() {
        let (next, hops, class) = set.row(i);
        for x in 0..set.num_nodes() as usize {
            if x as u32 == dest {
                continue; // the destination's self-entry carries no route
            }
            if next[x] == miro_bgp::solver::UNROUTED_NEXT {
                s.unrouted += 1;
                continue;
            }
            s.routed += 1;
            let h = hops[x];
            if s.hop_hist.len() <= h as usize {
                s.hop_hist.resize(h as usize + 1, 0);
            }
            s.hop_hist[h as usize] += 1;
            hop_total += h as u64;
            s.max_hops = s.max_hops.max(h);
            let c = class[x] as usize;
            if c >= 3 {
                return Err(format!(
                    "destination {dest}: AS {x} is routed but carries class code {c}"
                ));
            }
            s.class_mix[c] += 1;
        }
    }
    if s.routed > 0 {
        s.mean_hops = hop_total as f64 / s.routed as f64;
    }
    Ok(s)
}

/// Render a summary in the report style the other eval commands use.
pub fn render(s: &TableSummary) -> String {
    let mut out = String::new();
    out.push_str("Whole-table summary (merged RouteTableSet)\n\n");
    out.push_str(&format!(
        "  topology: {} ASes, {} destinations ({} route cells)\n",
        s.num_nodes,
        s.num_dests,
        s.routed + s.unrouted
    ));
    out.push_str(&format!(
        "  reachability: {:.2}% ({} routed, {} unrouted)\n",
        100.0 * s.reachable_frac(),
        s.routed,
        s.unrouted
    ));
    out.push_str(&format!(
        "  path length: mean {:.2} AS hops, max {}\n",
        s.mean_hops, s.max_hops
    ));
    let total = s.class_mix.iter().sum::<u64>().max(1) as f64;
    out.push_str(&format!(
        "  first-hop class mix: customer {:.1}% | peer {:.1}% | provider {:.1}%\n",
        100.0 * s.class_mix[0] as f64 / total,
        100.0 * s.class_mix[1] as f64 / total,
        100.0 * s.class_mix[2] as f64 / total,
    ));
    out.push_str("\n  hops  cells\n");
    for (h, &n) in s.hop_hist.iter().enumerate() {
        if n > 0 {
            out.push_str(&format!("  {h:>4}  {n}\n"));
        }
    }
    out
}

/// Decode the table at `path` and return the rendered summary.
pub fn run_file(path: &str) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let set = RouteTableSet::decode(&bytes)?;
    Ok(render(&summarize(&set)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    #[test]
    fn summary_matches_direct_solves() {
        let t = GenParams::tiny(7).generate();
        let dests = miro_shard::sample_dests(t.num_nodes(), 10);
        let set = RouteTableSet::from_solves(&t, &dests, 2);
        let s = summarize(&set).expect("valid table");

        assert_eq!(s.num_nodes, t.num_nodes() as u32);
        assert_eq!(s.num_dests, dests.len());
        // Every off-destination cell is counted exactly once.
        assert_eq!(
            s.routed + s.unrouted,
            dests.len() as u64 * (t.num_nodes() as u64 - 1)
        );
        // Gao-style generated graphs are connected enough that routes exist.
        assert!(s.routed > 0, "expected at least one routed pair");
        assert_eq!(s.class_mix.iter().sum::<u64>(), s.routed);
        assert_eq!(s.hop_hist.iter().sum::<u64>(), s.routed);
        // Cross-check the mean against the histogram.
        let total: u64 = s.hop_hist.iter().enumerate().map(|(h, &n)| h as u64 * n).sum();
        assert!((s.mean_hops - total as f64 / s.routed as f64).abs() < 1e-12);
        assert!(s.max_hops >= 1);
    }

    #[test]
    fn run_file_round_trips_through_disk() {
        let t = GenParams::tiny(3).generate();
        let dests = miro_shard::sample_dests(t.num_nodes(), 6);
        let set = RouteTableSet::from_solves(&t, &dests, 1);
        let path = std::env::temp_dir().join(format!("miro_wt_{}.mirt", std::process::id()));
        std::fs::write(&path, set.encode()).unwrap();
        let report = run_file(path.to_str().unwrap()).expect("summarizes");
        let _ = std::fs::remove_file(&path);
        assert!(report.contains("Whole-table summary"));
        assert!(report.contains(&format!("{} ASes", t.num_nodes())));
        assert!(report.contains("reachability:"));

        let err = run_file("/nonexistent/table.mirt").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
