//! Figures 7.1 and 7.2 as runnable experiments: the counter-example
//! gadgets executed under each guideline, reporting convergence outcome
//! and flap counts — plus a failure-event sweep (beyond the paper) that
//! measures, at dataset scale, how much of the network a single link
//! failure actually perturbs. The sweep runs on the incremental delta
//! engine, so each event costs only its re-routed cone.

use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_convergence::gadgets::{fig7_1, fig7_2, fig7_2_guideline_d_config, sim_for};
use miro_convergence::{Guideline, SimOutcome};
use miro_topology::NodeId;
use rand::Rng;
use serde::Serialize;

/// One gadget-under-config run.
#[derive(Serialize, Clone, Debug)]
pub struct GadgetRun {
    pub config: String,
    pub converged: bool,
    pub rounds: usize,
    pub establishments: usize,
    pub teardowns: usize,
    pub tunnels_up: usize,
}

fn run_one(
    topo: &miro_topology::Topology,
    desires: &[miro_convergence::Desire],
    label: &str,
    config: miro_convergence::GuidelineConfig,
    rounds: usize,
) -> GadgetRun {
    let mut sim = sim_for(topo, desires, config);
    let out = sim.run(1, rounds);
    GadgetRun {
        config: label.to_string(),
        converged: out.converged(),
        rounds: match out {
            SimOutcome::Converged { rounds } | SimOutcome::Diverged { rounds } => rounds,
        },
        establishments: sim.establishments.iter().sum(),
        teardowns: sim.teardowns.iter().sum(),
        tunnels_up: sim.established_count(),
    }
}

/// Figure 7.1: the BAD-GADGET-style configuration, raw and under
/// Guidelines B and C.
pub fn run_fig7_1(budget_rounds: usize) -> Vec<GadgetRun> {
    let (t, _, desires) = fig7_1();
    vec![
        run_one(&t, &desires, "unrestricted", Guideline::Unrestricted.config(), budget_rounds),
        run_one(&t, &desires, "guideline B", Guideline::B.config(), budget_rounds),
        run_one(&t, &desires, "guideline C", Guideline::C.config(), budget_rounds),
    ]
}

/// Figure 7.2: the strict-policy counter-example, raw and under
/// Guidelines D and E.
pub fn run_fig7_2(budget_rounds: usize) -> Vec<GadgetRun> {
    let (t, nodes, desires) = fig7_2();
    let strict_effective = miro_convergence::GuidelineConfig {
        offer: miro_convergence::OfferRule::SameClassCandidates,
        transport: miro_convergence::TransportRule::Effective,
        gate: miro_convergence::PreferenceGate::Always,
        advertise_to_leaves: false,
    };
    vec![
        run_one(&t, &desires, "strict, no order (unrestricted)", strict_effective, budget_rounds),
        run_one(&t, &desires, "guideline D (partial order)", fig7_2_guideline_d_config(nodes), budget_rounds),
        run_one(&t, &desires, "guideline E (pinned BGP)", Guideline::E.config(), budget_rounds),
    ]
}

/// Aggregate outcome of a single-link failure sweep over one dataset.
#[derive(Serialize, Clone, Debug)]
pub struct FailureSweepRow {
    pub dataset: String,
    pub dests: usize,
    /// Failure events injected (per-destination what-ifs).
    pub events: usize,
    /// Events whose link carried the destination's routing tree — only
    /// these perturb anyone.
    pub tree_events: usize,
    /// Events the what-if cache answered with zero recomputation because
    /// the base solution never used the link.
    pub skipped: usize,
    /// Mean nodes re-routed per tree event (the failure "cone").
    pub mean_cone: f64,
    /// Largest single-event cone seen.
    pub max_cone: usize,
    /// Nodes left with no route at all, summed over tree events.
    pub disconnected: usize,
}

/// Inject `events_per_dest` single-link failures per sampled destination
/// and measure the blast radius of each. Events alternate between links
/// on the destination's routing tree (guaranteed to perturb someone) and
/// uniformly random links (mostly off-tree, exercising the cache's skip
/// path) — mirroring the event mix of a convergence experiment where most
/// failures happen far from any given destination's tree.
pub fn failure_sweep(
    ds: &Dataset,
    cfg: &EvalConfig,
    events_per_dest: usize,
) -> FailureSweepRow {
    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples, cfg.seed);
    let per_dest = driver::par_over_dests_whatif(&ds.topo, &dests, cfg.threads, |d, wi| {
        let mut rng = driver::rng_for(cfg.seed, d, 0xFA11);
        let routed: Vec<NodeId> = ds
            .topo
            .nodes()
            .filter(|&v| v != d && wi.base().best(v).is_some())
            .collect();
        let mut max_cone = 0usize;
        let mut disconnected = 0usize;
        for k in 0..events_per_dest {
            let (a, b) = if k % 2 == 0 && !routed.is_empty() {
                // A link the routing tree provably uses.
                let v = routed[rng.gen_range(0..routed.len())];
                (v, wi.base().best(v).unwrap().next)
            } else {
                // Any link of the graph.
                let v = rng.gen_range(0..ds.topo.num_nodes()) as NodeId;
                let nbrs = ds.topo.neighbors(v);
                if nbrs.is_empty() {
                    continue;
                }
                (v, nbrs[rng.gen_range(0..nbrs.len())].0)
            };
            let (cone, disc) =
                wi.without_link(a, b, |f| (f.recomputed(), f.disconnected()));
            max_cone = max_cone.max(cone);
            disconnected += disc;
        }
        (wi.stats(), max_cone, disconnected)
    });

    let mut events = 0;
    let mut skipped = 0;
    let mut recomputed = 0;
    let mut max_cone = 0;
    let mut disconnected = 0;
    for (stats, mc, disc) in per_dest {
        events += stats.what_ifs;
        skipped += stats.skipped;
        recomputed += stats.recomputed;
        max_cone = max_cone.max(mc);
        disconnected += disc;
    }
    let tree_events = events - skipped;
    FailureSweepRow {
        dataset: ds.name().to_string(),
        dests: dests.len(),
        events,
        tree_events,
        skipped,
        mean_cone: recomputed as f64 / tree_events.max(1) as f64,
        max_cone,
        disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_1_outcomes_match_the_paper() {
        let runs = run_fig7_1(200);
        assert!(!runs[0].converged, "unrestricted must oscillate");
        assert!(runs[1].converged, "guideline B must converge");
        assert!(runs[2].converged, "guideline C must converge");
        assert_eq!(runs[1].tunnels_up, 3);
    }

    #[test]
    fn fig7_2_outcomes_match_the_paper() {
        let runs = run_fig7_2(200);
        assert!(!runs[0].converged, "strict alone must oscillate");
        assert!(runs[1].converged, "guideline D must converge");
        assert!(runs[2].converged, "guideline E must converge");
        assert_eq!(runs[1].tunnels_up, 2, "the order forbids the cycle-closer");
        assert_eq!(runs[2].tunnels_up, 3, "pinned transport allows all three");
    }

    #[test]
    fn oscillation_flap_counts_scale_with_budget() {
        let short = run_fig7_1(50);
        let long = run_fig7_1(500);
        assert!(long[0].teardowns > short[0].teardowns * 5);
    }

    #[test]
    fn failure_sweep_counts_are_consistent() {
        use crate::datasets::{Dataset, EvalConfig};
        use miro_topology::gen::DatasetPreset;
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        let row = failure_sweep(&ds, &cfg, 6);
        assert!(row.events > 0);
        assert_eq!(row.events, row.tree_events + row.skipped);
        assert!(row.tree_events > 0, "the forced tree links must perturb someone");
        assert!(row.max_cone >= 1);
        assert!(row.mean_cone >= 1.0, "a tree event re-routes at least the child");
        assert!(
            (row.mean_cone as usize) <= row.max_cone,
            "mean cone cannot exceed the max"
        );

        // Deterministic across thread counts.
        let mut serial_cfg = cfg.clone();
        serial_cfg.threads = 1;
        let serial = failure_sweep(&ds, &serial_cfg, 6);
        assert_eq!(row.events, serial.events);
        assert_eq!(row.tree_events, serial.tree_events);
        assert_eq!(row.max_cone, serial.max_cone);
        assert_eq!(row.disconnected, serial.disconnected);
    }
}
