//! Figures 7.1 and 7.2 as runnable experiments: the counter-example
//! gadgets executed under each guideline, reporting convergence outcome
//! and flap counts.

use miro_convergence::gadgets::{fig7_1, fig7_2, fig7_2_guideline_d_config, sim_for};
use miro_convergence::{Guideline, SimOutcome};
use serde::Serialize;

/// One gadget-under-config run.
#[derive(Serialize, Clone, Debug)]
pub struct GadgetRun {
    pub config: String,
    pub converged: bool,
    pub rounds: usize,
    pub establishments: usize,
    pub teardowns: usize,
    pub tunnels_up: usize,
}

fn run_one(
    topo: &miro_topology::Topology,
    desires: &[miro_convergence::Desire],
    label: &str,
    config: miro_convergence::GuidelineConfig,
    rounds: usize,
) -> GadgetRun {
    let mut sim = sim_for(topo, desires, config);
    let out = sim.run(1, rounds);
    GadgetRun {
        config: label.to_string(),
        converged: out.converged(),
        rounds: match out {
            SimOutcome::Converged { rounds } | SimOutcome::Diverged { rounds } => rounds,
        },
        establishments: sim.establishments.iter().sum(),
        teardowns: sim.teardowns.iter().sum(),
        tunnels_up: sim.established_count(),
    }
}

/// Figure 7.1: the BAD-GADGET-style configuration, raw and under
/// Guidelines B and C.
pub fn run_fig7_1(budget_rounds: usize) -> Vec<GadgetRun> {
    let (t, _, desires) = fig7_1();
    vec![
        run_one(&t, &desires, "unrestricted", Guideline::Unrestricted.config(), budget_rounds),
        run_one(&t, &desires, "guideline B", Guideline::B.config(), budget_rounds),
        run_one(&t, &desires, "guideline C", Guideline::C.config(), budget_rounds),
    ]
}

/// Figure 7.2: the strict-policy counter-example, raw and under
/// Guidelines D and E.
pub fn run_fig7_2(budget_rounds: usize) -> Vec<GadgetRun> {
    let (t, nodes, desires) = fig7_2();
    let strict_effective = miro_convergence::GuidelineConfig {
        offer: miro_convergence::OfferRule::SameClassCandidates,
        transport: miro_convergence::TransportRule::Effective,
        gate: miro_convergence::PreferenceGate::Always,
        advertise_to_leaves: false,
    };
    vec![
        run_one(&t, &desires, "strict, no order (unrestricted)", strict_effective, budget_rounds),
        run_one(&t, &desires, "guideline D (partial order)", fig7_2_guideline_d_config(nodes), budget_rounds),
        run_one(&t, &desires, "guideline E (pinned BGP)", Guideline::E.config(), budget_rounds),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_1_outcomes_match_the_paper() {
        let runs = run_fig7_1(200);
        assert!(!runs[0].converged, "unrestricted must oscillate");
        assert!(runs[1].converged, "guideline B must converge");
        assert!(runs[2].converged, "guideline C must converge");
        assert_eq!(runs[1].tunnels_up, 3);
    }

    #[test]
    fn fig7_2_outcomes_match_the_paper() {
        let runs = run_fig7_2(200);
        assert!(!runs[0].converged, "strict alone must oscillate");
        assert!(runs[1].converged, "guideline D must converge");
        assert!(runs[2].converged, "guideline E must converge");
        assert_eq!(runs[1].tunnels_up, 2, "the order forbids the cycle-closer");
        assert_eq!(runs[2].tunnels_up, 3, "pinned transport allows all three");
    }

    #[test]
    fn oscillation_flap_counts_scale_with_budget() {
        let short = run_fig7_1(50);
        let long = run_fig7_1(500);
        assert!(long[0].teardowns > short[0].teardowns * 5);
    }
}
