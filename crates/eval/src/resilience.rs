//! `miro resilience` — control-plane robustness under an unreliable
//! channel, including full session-lifecycle recovery.
//!
//! Sweeps the [`miro_core::chan::FaultyChannel`] fault knobs (drop /
//! duplicate / reorder) over a Gao2005-shaped topology and measures what
//! the [`miro_core::reliable`] layer delivers at each point:
//!
//! * **negotiation success rate** — handshakes completed via
//!   retransmit/backoff, over pairs known to succeed on a perfect channel
//!   (so loss measures the reliability layer, not semantic rejects);
//! * **handshake latency** — virtual ticks from first `Request` to the
//!   terminal outcome, mean and p95;
//! * **fallbacks** — every exhausted negotiation must surface a typed
//!   failure and degrade to the BGP default path (asserted, not hoped);
//! * **double establishes** — must be zero at every fault level;
//! * **tunnel survival** — fraction of pairs with a live tunnel after a
//!   further stretch of lossy keepalive traffic (paced re-negotiation may
//!   resurrect tunnels during this window — that is the feature);
//! * **RTO trajectory** — per-peer SRTT/RTO learned from handshake echoes;
//! * **outage recovery** — a scheduled total blackout long enough to
//!   expire every tunnel's soft state; the paced re-negotiation machinery
//!   then has to win service back. Run twice per point — adaptive RTO vs
//!   the legacy static ladder — so the estimator has to pay for itself;
//! * **crash-restart recovery** — the busiest responder loses its entire
//!   session and tunnel table mid-run; keepalive death detection plus
//!   pacing must re-establish with zero orphaned tunnels at quiescence.
//!
//! The sweep is seeded and deterministic; results go to `RESILIENCE.json`
//! (next to `BENCH_solver.json`) so CI can pin a success floor with
//! `--check-floor` and a recovery floor (rate + zero orphans) with
//! `--check-recovery-floor`.

use crate::report;
use miro_bgp::solver::{RoutingState, SolveScratch};
use miro_core::chan::FaultConfig;
use miro_core::node::MiroNetwork;
use miro_core::reliable::{FallbackEvent, ReliabilityConfig, ReliableNet, RtoMode};
use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};
use serde::Serialize;
use std::fmt::Write as _;

/// Drop rates swept, in per-mille. Duplication rides at half the drop
/// rate and reordering at the full drop rate, so one axis describes the
/// whole channel. The 100‰ point (10% drop + 5% dup + 10% reorder) is the
/// acceptance point `--check-floor` and `--check-recovery-floor` pin.
const DROP_SWEEP: &[u32] = &[0, 50, 100, 200, 300];

/// Ticks of continued lossy keepalive traffic after the handshakes
/// settle, for the survival measurement. Several times the keepalive
/// timeout (35), so sustained-loss expiry has room to show.
const SURVIVAL_TICKS: u64 = 200;

/// Per-sweep-point hard cap on settling time; generous next to the worst
/// retransmit schedule (~256 ticks at the default backoff ladder).
const MAX_SETTLE_TICKS: u64 = 2_000;

/// Per-scenario cap on draining the paced re-negotiation machinery: up to
/// 6 attempts per episode, each bounded by the retransmit ladder plus a
/// jittered sleep capped at 256 ticks.
const MAX_RECOVERY_TICKS: u64 = 8_000;

/// Default scheduled-outage length: comfortably past the keepalive
/// timeout (35), so every tunnel's soft state dies during the window.
const DEFAULT_OUTAGE_TICKS: u64 = 60;

/// How long after a disruption ends its keepalive deaths can still
/// surface: the soft-state timeout (35 ticks) plus heartbeat slack.
/// Bounds the episode window each recovery scenario accounts for.
const DETECTION_SLACK: u64 = 50;

/// Repetitions pooled per recovery scenario per sweep point. Each uses a
/// distinct sub-seed; the adaptive and static runs share the sub-seed
/// sequence so the comparison measures the timer policy, not one channel
/// realization.
const SCENARIO_REPS: u64 = 4;

/// Perfect-channel ticks appended after each recovery scenario before
/// orphans are counted: two soft-state timeouts, enough for every
/// one-sided tunnel to be expired or torn down. Zero orphans after this
/// is a hard invariant, not a tuning outcome.
const HEAL_TICKS: u64 = 80;

/// Recovery metrics of one fault scenario (scheduled outage or
/// crash-restart). An *episode* is an original retryable fallback —
/// chained per-attempt failures are accounted to their origin.
#[derive(Serialize)]
pub struct RecoveryStats {
    /// Retryable fallback episodes opened by the scenario.
    pub episodes: u64,
    /// Episodes a paced re-negotiation closed with a fresh tunnel.
    pub recovered: u64,
    /// `recovered / episodes` (1.0 when nothing needed recovery).
    pub recovery_rate: f64,
    /// Ticks from fallback to recovery, over recovered episodes.
    pub mean_recovery_ticks: f64,
    pub median_recovery_ticks: u64,
    pub p95_recovery_ticks: u64,
    /// Re-negotiation attempts launched across all episodes.
    pub retry_attempts: u64,
    /// One-sided tunnels at quiescence over a healed channel. Must be 0.
    pub orphaned_tunnels: u64,
    /// Ticks from scenario start to quiescence (recovery machinery
    /// drained), before the healing epilogue.
    pub quiesce_ticks: u64,
}

/// Aggregate of the per-peer adaptive-RTO estimators after the handshake
/// phase.
#[derive(Serialize)]
pub struct RtoTrajectory {
    pub peers: u64,
    pub samples: u64,
    pub srtt_mean: f64,
    pub rto_mean: f64,
    pub rto_peak: u64,
}

#[derive(Serialize)]
pub struct SweepPoint {
    pub drop_permille: u32,
    pub dup_permille: u32,
    pub reorder_permille: u32,
    pub attempted: u64,
    pub succeeded: u64,
    pub success_rate: f64,
    /// Typed failures among the original handshakes, each with a recorded
    /// degrade-to-default event.
    pub fallbacks: u64,
    /// Negotiations that allocated more than one tunnel (must be 0).
    pub double_established: u64,
    pub mean_latency_ticks: f64,
    pub p95_latency_ticks: u64,
    /// Requester-side retransmissions across the original handshakes.
    pub retransmits: u64,
    /// Channel duplicates absorbed by the sequence layer.
    pub duplicates_suppressed: u64,
    pub settle_ticks: u64,
    /// Pairs with a live tunnel after [`SURVIVAL_TICKS`] more lossy ticks
    /// (paced re-negotiation included).
    pub tunnels_surviving: u64,
    pub survival_rate: f64,
    /// Adaptive-RTO estimator state after the handshake phase.
    pub rto: RtoTrajectory,
    /// Scheduled-blackout scenario under adaptive RTO.
    pub outage_recovery: RecoveryStats,
    /// The same scenario under the legacy static ladder, for comparison.
    pub outage_recovery_static: RecoveryStats,
    /// Busiest-responder crash-restart scenario (adaptive RTO).
    pub crash_recovery: RecoveryStats,
}

#[derive(Serialize)]
pub struct ResilienceReport {
    pub seed: u64,
    pub scale: f64,
    pub nodes: u64,
    pub pairs: u64,
    pub outage_ticks: u64,
    pub points: Vec<SweepPoint>,
}

/// Entry point for `miro resilience [--seed N] [--scale F] [--pairs N]
/// [--outage-ticks N] [--out PATH] [--check-floor PCT]
/// [--check-recovery-floor PCT]`. Returns the human-readable report; JSON
/// lands in `--out` (default `RESILIENCE.json`). With `--check-floor`,
/// errors if the handshake success rate at the 10%-drop point falls below
/// `PCT` percent. With `--check-recovery-floor`, errors if the outage- or
/// crash-recovery rate at the same point falls below `PCT` percent, if
/// ANY scenario at ANY point left an orphaned tunnel at quiescence, or if
/// adaptive-RTO recovery regressed past the static ladder's numbers
/// (beyond a 5%+1-tick noise band) at any sweep point.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut seed: u64 = 20060911;
    let mut scale: f64 = 0.01;
    let mut pairs: usize = 40;
    let mut outage_ticks: u64 = DEFAULT_OUTAGE_TICKS;
    let mut out_path = "RESILIENCE.json".to_string();
    let mut floor: Option<f64> = None;
    let mut recovery_floor: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--pairs" => pairs = val("--pairs")?.parse().map_err(|e| format!("--pairs: {e}"))?,
            "--outage-ticks" => {
                outage_ticks = val("--outage-ticks")?
                    .parse()
                    .map_err(|e| format!("--outage-ticks: {e}"))?;
                if outage_ticks == 0 {
                    return Err("--outage-ticks must be at least 1".to_string());
                }
            }
            "--out" => out_path = val("--out")?,
            "--check-floor" => {
                floor = Some(
                    val("--check-floor")?.parse().map_err(|e| format!("--check-floor: {e}"))?,
                )
            }
            "--check-recovery-floor" => {
                recovery_floor = Some(
                    val("--check-recovery-floor")?
                        .parse()
                        .map_err(|e| format!("--check-recovery-floor: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let topo = DatasetPreset::Gao2005.params(scale, seed).generate();
    let (dest, candidates) = workable_pairs(&topo, pairs, seed);
    if candidates.is_empty() {
        return Err("no negotiable pairs found; raise --scale".to_string());
    }
    let st = RoutingState::solve(&topo, dest);

    let mut points = Vec::new();
    for &drop in DROP_SWEEP {
        let (dup, reorder) = (drop / 2, drop);
        points.push(sweep_point(&topo, &st, &candidates, drop, dup, reorder, seed, outage_ticks));
    }

    let report = ResilienceReport {
        seed,
        scale,
        nodes: topo.num_nodes() as u64,
        pairs: candidates.len() as u64,
        outage_ticks,
        points,
    };

    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out_path, json).map_err(|e| format!("write {out_path}: {e}"))?;
    report::persist("resilience", &report);

    let mut out = render(&report);
    let _ = writeln!(out, "\nJSON written to {out_path}");

    if let Some(floor) = floor {
        let gate = gate_point(&report)?;
        let got = gate.success_rate * 100.0;
        if got < floor {
            return Err(format!(
                "fault-injection floor violated: success {got:.1}% < {floor:.1}% \
                 at 10% drop / 5% dup / 10% reorder"
            ));
        }
        let _ = writeln!(out, "floor check: {got:.1}% >= {floor:.1}% at 10% drop — ok");
    }

    if let Some(floor) = recovery_floor {
        let orphans: u64 = report
            .points
            .iter()
            .map(|p| {
                p.outage_recovery.orphaned_tunnels
                    + p.outage_recovery_static.orphaned_tunnels
                    + p.crash_recovery.orphaned_tunnels
            })
            .sum();
        if orphans > 0 {
            return Err(format!(
                "recovery floor violated: {orphans} orphaned tunnel(s) survived quiescence"
            ));
        }
        let gate = gate_point(&report)?;
        let got = gate.outage_recovery.recovery_rate * 100.0;
        if got < floor {
            return Err(format!(
                "recovery floor violated: outage recovery {got:.1}% < {floor:.1}% \
                 at 10% drop / 5% dup / 10% reorder"
            ));
        }
        let crash = gate.crash_recovery.recovery_rate * 100.0;
        if crash < floor {
            return Err(format!(
                "recovery floor violated: crash-restart recovery {crash:.1}% < {floor:.1}% \
                 at 10% drop / 5% dup / 10% reorder"
            ));
        }
        // Adaptive RTO must not regress recovery versus the legacy static
        // ladder at ANY sweep point — same outage, same sub-seeds, same
        // pacing schedule, only the timer policy differs. The band
        // (5% + 1 tick) absorbs channel-dice noise on a metric whose unit
        // is one virtual tick; genuine stalls (an inflated estimator
        // pacing re-negotiation) blow straight through it.
        for p in &report.points {
            let (a, s) = (&p.outage_recovery, &p.outage_recovery_static);
            let band = |stat: f64| stat * 1.05 + 1.0;
            if a.mean_recovery_ticks > band(s.mean_recovery_ticks)
                || (a.p95_recovery_ticks as f64) > band(s.p95_recovery_ticks as f64)
            {
                return Err(format!(
                    "recovery floor violated: adaptive RTO regressed recovery at {}‰ drop \
                     (mean {:.1} vs {:.1}, p95 {} vs {} ticks)",
                    p.drop_permille,
                    a.mean_recovery_ticks,
                    s.mean_recovery_ticks,
                    a.p95_recovery_ticks,
                    s.p95_recovery_ticks,
                ));
            }
        }
        let _ = writeln!(
            out,
            "recovery floor check: outage {got:.1}% / crash {crash:.1}% >= {floor:.1}%, \
             0 orphans, adaptive RTO within the no-regression band at every point — ok"
        );
    }
    Ok(out)
}

fn gate_point(report: &ResilienceReport) -> Result<&SweepPoint, String> {
    report
        .points
        .iter()
        .find(|p| p.drop_permille == 100)
        .ok_or_else(|| "sweep has no 10%-drop point to gate on".to_string())
}

/// Pick (requester, responder) pairs that negotiate successfully on a
/// perfect channel, plus the destination they share: the sweep then
/// measures only channel effects. Responders are drawn from each
/// requester's default path (the paper's on-path strategy).
fn workable_pairs(topo: &Topology, want: usize, seed: u64) -> (NodeId, Vec<(NodeId, NodeId)>) {
    let n = topo.num_nodes() as NodeId;
    // A deterministic, seed-shifted scan over destinations; the first
    // destination yielding enough workable pairs wins.
    let mut best: (NodeId, Vec<(NodeId, NodeId)>) = (0, Vec::new());
    let mut scratch = SolveScratch::new();
    for probe in 0..8u64 {
        let dest = ((seed.wrapping_add(probe * 7919)) % u64::from(n)) as NodeId;
        let st = RoutingState::solve_into(topo, dest, &mut scratch);
        let mut net = MiroNetwork::new(topo);
        let mut found = Vec::new();
        for req in 0..n {
            if found.len() >= want {
                break;
            }
            if req == dest {
                continue;
            }
            let Some(path) = st.path(req) else { continue };
            // First on-path AS beyond the requester, destination excluded.
            let Some(&resp) = path.iter().skip(1).find(|&&x| x != dest && x != req) else {
                continue;
            };
            if net.negotiate(&st, req, resp, Vec::new(), 1_000).is_ok() {
                found.push((req, resp));
            }
        }
        st.recycle(&mut scratch);
        if found.len() > best.1.len() {
            best = (dest, found);
        }
        if best.1.len() >= want {
            break;
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn sweep_point(
    topo: &Topology,
    st: &RoutingState<'_>,
    pairs: &[(NodeId, NodeId)],
    drop: u32,
    dup: u32,
    reorder: u32,
    seed: u64,
    outage_ticks: u64,
) -> SweepPoint {
    let fault = FaultConfig::lossy(drop, dup, reorder);
    let mut net = ReliableNet::new(topo, fault, seed ^ u64::from(drop));
    for &(req, resp) in pairs {
        net.start(st, req, resp, Vec::new(), 1_000)
            .expect("pre-screened pairs are never self-negotiations");
        // Stagger starts so retransmit timers do not all fire in lockstep.
        net.tick(st);
    }
    let settle_ticks = net.run_until_settled(st, MAX_SETTLE_TICKS);

    // The paced re-negotiation machinery may already have launched fresh
    // sessions for early failures; handshake metrics cover only the
    // ORIGINAL negotiations (ids 0..pairs, allocated in start order).
    let originals: Vec<_> = net
        .outcomes()
        .iter()
        .filter(|o| (o.id.0 as usize) < pairs.len())
        .collect();
    assert_eq!(originals.len(), pairs.len(), "every negotiation reaches a terminal state");
    let succeeded = originals.iter().filter(|o| o.result.is_ok()).count() as u64;
    // The robustness contract: every failure is a typed, recorded
    // fallback to the BGP default path — never a silent loss of service.
    for o in originals.iter().filter(|o| o.result.is_err()) {
        assert!(
            net.fallbacks().iter().any(|f| f.id == o.id),
            "each failure records its fallback"
        );
    }
    let fallbacks = originals.len() as u64 - succeeded;

    let mut latencies: Vec<u64> = originals
        .iter()
        .filter(|o| o.result.is_ok())
        .map(|o| o.latency())
        .collect();
    latencies.sort_unstable();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let p95 = latencies
        .get((latencies.len().saturating_sub(1)) * 95 / 100)
        .copied()
        .unwrap_or(0);
    let retransmits: u64 = originals.iter().map(|o| u64::from(o.retransmits)).sum();
    let double_established = net.double_establish_count() as u64;
    assert_eq!(double_established, 0, "duplicate-safe handlers never double-establish");
    let snap = net.rto_snapshot();
    let rto = RtoTrajectory {
        peers: snap.peers as u64,
        samples: snap.samples,
        srtt_mean: snap.srtt_mean,
        rto_mean: snap.rto_mean,
        rto_peak: snap.rto_peak,
    };

    // Survival: keep the channel lossy and let keepalives (and paced
    // re-negotiation) fight it.
    for _ in 0..SURVIVAL_TICKS {
        net.tick(st);
    }
    let tunnels_surviving = net.leases().len().min(pairs.len()) as u64;

    // Pool several repetitions per scenario (distinct sub-seeds, the SAME
    // sub-seed sequence for both RTO modes) so per-point recovery numbers
    // measure the policy, not one channel realization.
    let scen_seeds: Vec<u64> =
        (0..SCENARIO_REPS).map(|r| seed ^ (u64::from(drop) << 17) ^ (r * 0x9e37_79b9)).collect();
    let run_outage = |mode: RtoMode| -> RecoveryStats {
        pool(
            scen_seeds
                .iter()
                .map(|&s| outage_scenario(topo, st, pairs, fault, s, outage_ticks, mode))
                .collect(),
        )
    };
    let outage_recovery = run_outage(RtoMode::Adaptive);
    let outage_recovery_static = run_outage(RtoMode::StaticLadder);
    let crash_recovery =
        pool(scen_seeds.iter().map(|&s| crash_scenario(topo, st, pairs, fault, s)).collect());

    SweepPoint {
        drop_permille: drop,
        dup_permille: dup,
        reorder_permille: reorder,
        attempted: pairs.len() as u64,
        succeeded,
        success_rate: succeeded as f64 / pairs.len() as f64,
        fallbacks,
        double_established,
        mean_latency_ticks: mean,
        p95_latency_ticks: p95,
        retransmits,
        duplicates_suppressed: net.duplicates_suppressed as u64,
        settle_ticks,
        tunnels_surviving,
        survival_rate: tunnels_surviving as f64 / pairs.len() as f64,
        rto,
        outage_recovery,
        outage_recovery_static,
        crash_recovery,
    }
}

/// Summarize the retryable fallback episodes opened in
/// `from_tick..=until_tick` — the window the scenario's disruption can
/// reach (detection lags the fault by up to a keepalive timeout). Later
/// episodes are ordinary steady-state churn on the lossy channel, a
/// different population from what the scenario is measuring. The orphan
/// count stays global: no scenario may strand a tunnel anywhere.
fn recovery_stats(
    net: &ReliableNet<'_>,
    from_tick: u64,
    until_tick: u64,
    quiesce_ticks: u64,
) -> ScenarioRaw {
    // One episode per (requester, dest) pair: the FIRST retryable origin
    // fallback in the window answers "the disruption felled this pair —
    // how long until service returned". A pair re-dying later (steady
    // churn at heavy loss) is not the scenario's doing, and counting it
    // for whichever RTO mode happened to churn would skew the comparison.
    let mut first: std::collections::BTreeMap<(NodeId, NodeId), &FallbackEvent> =
        std::collections::BTreeMap::new();
    for f in net.fallbacks().iter().filter(|f| {
        f.retry_of.is_none() && f.reason.is_retryable() && (from_tick..=until_tick).contains(&f.at)
    }) {
        first.entry((f.requester, f.dest)).or_insert(f);
    }
    let origins: Vec<&FallbackEvent> = first.into_values().collect();
    ScenarioRaw {
        recovery_ticks: origins.iter().filter_map(|f| f.recovery_ticks()).collect(),
        episodes: origins.len() as u64,
        retry_attempts: origins.iter().map(|f| u64::from(f.retry_attempts)).sum(),
        orphaned_tunnels: net.orphan_count() as u64,
        quiesce_ticks,
    }
}

/// One scenario repetition's raw evidence, before pooling.
struct ScenarioRaw {
    recovery_ticks: Vec<u64>,
    episodes: u64,
    retry_attempts: u64,
    orphaned_tunnels: u64,
    quiesce_ticks: u64,
}

/// Pool the repetitions of one scenario into the reported stats.
fn pool(raws: Vec<ScenarioRaw>) -> RecoveryStats {
    let episodes: u64 = raws.iter().map(|r| r.episodes).sum();
    let mut ticks: Vec<u64> = raws.iter().flat_map(|r| r.recovery_ticks.iter().copied()).collect();
    ticks.sort_unstable();
    let mean = if ticks.is_empty() {
        0.0
    } else {
        ticks.iter().sum::<u64>() as f64 / ticks.len() as f64
    };
    let pct = |q: usize| ticks.get((ticks.len().saturating_sub(1)) * q / 100).copied().unwrap_or(0);
    RecoveryStats {
        episodes,
        recovered: ticks.len() as u64,
        recovery_rate: if episodes == 0 { 1.0 } else { ticks.len() as f64 / episodes as f64 },
        mean_recovery_ticks: mean,
        median_recovery_ticks: pct(50),
        p95_recovery_ticks: pct(95),
        retry_attempts: raws.iter().map(|r| r.retry_attempts).sum(),
        orphaned_tunnels: raws.iter().map(|r| r.orphaned_tunnels).sum(),
        quiesce_ticks: raws.iter().map(|r| r.quiesce_ticks).max().unwrap_or(0),
    }
}

/// Establish all pairs, then black the channel out completely for
/// `outage_ticks` — long enough (by default) for every tunnel's soft
/// state to expire — and let the paced re-negotiation machinery win the
/// service back over the still-lossy steady-state channel. Ends with a
/// healed-channel epilogue so the orphan count is a hard invariant.
fn outage_scenario(
    topo: &Topology,
    st: &RoutingState<'_>,
    pairs: &[(NodeId, NodeId)],
    fault: FaultConfig,
    seed: u64,
    outage_ticks: u64,
    mode: RtoMode,
) -> ScenarioRaw {
    let rel = ReliabilityConfig { rto_mode: mode, ..Default::default() };
    let mut net = ReliableNet::with_reliability(topo, fault, seed, rel);
    for &(req, resp) in pairs {
        net.start(st, req, resp, Vec::new(), 1_000).expect("pre-screened pairs");
        net.tick(st);
    }
    net.run_until_settled(st, MAX_SETTLE_TICKS);
    let from = net.clock;
    let outage_start = net.clock + 5;
    net.schedule_outage(outage_start, outage_start + outage_ticks)
        .expect("outage_ticks is validated nonzero");
    while net.clock < outage_start + outage_ticks {
        net.tick(st);
    }
    let quiesce_ticks = net.run_until_quiescent(st, MAX_RECOVERY_TICKS);
    heal_and_settle(&mut net, st);
    recovery_stats(&net, from, outage_start + outage_ticks + DETECTION_SLACK, quiesce_ticks)
}

/// Establish all pairs, then crash-restart the responder serving the most
/// of them: its entire session and tunnel table vanishes. Keepalive death
/// detection plus paced re-negotiation must re-establish; the healed
/// epilogue then proves zero orphans.
fn crash_scenario(
    topo: &Topology,
    st: &RoutingState<'_>,
    pairs: &[(NodeId, NodeId)],
    fault: FaultConfig,
    seed: u64,
) -> ScenarioRaw {
    let mut net = ReliableNet::new(topo, fault, seed ^ 0xc5a5);
    for &(req, resp) in pairs {
        net.start(st, req, resp, Vec::new(), 1_000).expect("pre-screened pairs");
        net.tick(st);
    }
    net.run_until_settled(st, MAX_SETTLE_TICKS);
    // The busiest responder hurts the most when it dies.
    let mut counts: std::collections::BTreeMap<NodeId, usize> = std::collections::BTreeMap::new();
    for &(_, resp) in pairs {
        *counts.entry(resp).or_default() += 1;
    }
    let victim = counts
        .iter()
        .max_by_key(|&(node, count)| (*count, std::cmp::Reverse(*node)))
        .map(|(node, _)| *node)
        .expect("pairs is nonempty");
    let from = net.clock;
    net.crash_restart(victim);
    // Death detection: the keepalive/Teardown fast path over the lossy
    // channel, with soft-state expiry (35 ticks) as the backstop.
    for _ in 0..DETECTION_SLACK {
        net.tick(st);
    }
    let quiesce_ticks = net.run_until_quiescent(st, MAX_RECOVERY_TICKS);
    heal_and_settle(&mut net, st);
    recovery_stats(&net, from, from + DETECTION_SLACK, quiesce_ticks)
}

/// Heal the channel to perfect, run two keepalive timeouts so every
/// one-sided tunnel is expired or torn down, and drain any last paced
/// retries. After this, a nonzero orphan count is a bug, not bad luck.
fn heal_and_settle(net: &mut ReliableNet<'_>, st: &RoutingState<'_>) {
    net.set_fault(FaultConfig::PERFECT);
    for _ in 0..HEAL_TICKS {
        net.tick(st);
    }
    net.run_until_quiescent(st, MAX_RECOVERY_TICKS);
}

fn render(r: &ResilienceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "resilience sweep — Gao2005 scale {} ({} nodes), {} pairs, seed {}, outage {} ticks",
        r.scale, r.nodes, r.pairs, r.seed, r.outage_ticks
    );
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.drop_permille),
                format!("{}/{}", p.succeeded, p.attempted),
                report::pct(p.success_rate * 100.0),
                format!("{:.1}", p.mean_latency_ticks),
                format!("{}", p.retransmits),
                format!("{:.1}", p.rto.rto_mean),
                report::pct(p.survival_rate * 100.0),
                report::pct(p.outage_recovery.recovery_rate * 100.0),
                format!(
                    "{:.0}/{}",
                    p.outage_recovery.mean_recovery_ticks, p.outage_recovery.p95_recovery_ticks
                ),
                format!(
                    "{:.0}/{}",
                    p.outage_recovery_static.mean_recovery_ticks,
                    p.outage_recovery_static.p95_recovery_ticks
                ),
                report::pct(p.crash_recovery.recovery_rate * 100.0),
                format!(
                    "{}",
                    p.outage_recovery.orphaned_tunnels
                        + p.outage_recovery_static.orphaned_tunnels
                        + p.crash_recovery.orphaned_tunnels
                ),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "drop\u{2030}", "ok", "success", "lat(mean)", "rexmit", "rto",
            "survival", "recov", "rT(adpt)", "rT(stat)", "crash", "orphan",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("miro-resilience-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn tiny_sweep_end_to_end() {
        let out = tmp("tiny.json");
        let args: Vec<String> =
            ["--pairs", "6", "--out", &out, "--seed", "7"].iter().map(|s| s.to_string()).collect();
        let report = run(&args).expect("sweep runs");
        assert!(report.contains("success"), "human table rendered");
        assert!(report.contains("recov"), "recovery columns rendered");
        let json = std::fs::read_to_string(&out).expect("JSON written");
        let parsed: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let serde_json::JsonValue::Obj(top) = &parsed else { panic!("top-level object") };
        let serde_json::JsonValue::Arr(points) = &top["points"] else { panic!("points array") };
        assert_eq!(points.len(), DROP_SWEEP.len());
        let obj = |p: &serde_json::JsonValue, key: &str| -> serde_json::JsonValue {
            let serde_json::JsonValue::Obj(o) = p else { panic!("object") };
            o[key].clone()
        };
        let num = |p: &serde_json::JsonValue, key: &str| -> f64 {
            let serde_json::JsonValue::Num(n) = obj(p, key) else { panic!("{key} numeric") };
            n
        };
        // Perfect-channel point: everything succeeds, nothing retransmits.
        assert_eq!(num(&points[0], "drop_permille"), 0.0);
        assert_eq!(num(&points[0], "success_rate"), 1.0);
        assert_eq!(num(&points[0], "retransmits"), 0.0);
        // Its outage scenario kills and recovers every pair, orphan-free.
        let recovery = obj(&points[0], "outage_recovery");
        assert!(num(&recovery, "episodes") >= 1.0, "the outage opened episodes");
        assert_eq!(num(&recovery, "recovery_rate"), 1.0, "perfect channel recovers all");
        assert_eq!(num(&recovery, "orphaned_tunnels"), 0.0);
        // The crash scenario detected and healed the restart.
        let crash = obj(&points[0], "crash_recovery");
        assert!(num(&crash, "episodes") >= 1.0, "the crash opened episodes");
        assert_eq!(num(&crash, "recovery_rate"), 1.0);
        assert_eq!(num(&crash, "orphaned_tunnels"), 0.0);
        for p in points {
            assert_eq!(num(p, "double_established"), 0.0);
            // The RTO trajectory is present at every point.
            let rto = obj(p, "rto");
            assert!(num(&rto, "samples") >= 1.0, "estimators sampled");
            let stat = obj(p, "outage_recovery_static");
            assert_eq!(num(&stat, "orphaned_tunnels"), 0.0);
        }
    }

    /// RESILIENCE.json keys are emitted in sorted order — schema consumers
    /// (and diffs) see a stable layout.
    #[test]
    fn json_key_order_is_sorted_and_stable() {
        let out = tmp("keys.json");
        let args: Vec<String> = ["--pairs", "4", "--out", &out, "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).expect("sweep runs");
        let json = std::fs::read_to_string(&out).expect("JSON written");
        // Spot-check alphabetical ordering at both nesting levels.
        for window in [
            ["\"nodes\"", "\"outage_ticks\"", "\"pairs\"", "\"points\"", "\"scale\"", "\"seed\""],
            [
                "\"attempted\"",
                "\"crash_recovery\"",
                "\"double_established\"",
                "\"outage_recovery\"",
                "\"rto\"",
                "\"survival_rate\"",
            ],
        ] {
            let mut last = 0;
            for key in window {
                let at = json.find(key).unwrap_or_else(|| panic!("{key} present"));
                assert!(at > last, "{key} out of order");
                last = at;
            }
        }
        // Running twice with the same inputs produces byte-identical JSON.
        let out2 = tmp("keys2.json");
        let args2: Vec<String> = ["--pairs", "4", "--out", &out2, "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args2).expect("sweep runs");
        assert_eq!(json, std::fs::read_to_string(&out2).unwrap(), "deterministic output");
    }

    #[test]
    fn impossible_floor_fails_the_gate() {
        let out = tmp("floor.json");
        let args: Vec<String> = ["--pairs", "6", "--out", &out, "--seed", "7", "--check-floor", "101"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).expect_err("101% floor cannot be met");
        assert!(err.contains("floor violated"), "typed gate failure: {err}");
    }

    #[test]
    fn impossible_recovery_floor_fails_the_gate() {
        let out = tmp("rfloor.json");
        let args: Vec<String> = [
            "--pairs", "6", "--out", &out, "--seed", "7", "--check-recovery-floor", "101",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args).expect_err("101% recovery floor cannot be met");
        assert!(err.contains("recovery floor violated"), "typed gate failure: {err}");
    }

    #[test]
    fn unknown_argument_is_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(run(&args).is_err());
    }

    #[test]
    fn zero_outage_ticks_is_rejected() {
        let args: Vec<String> =
            ["--outage-ticks", "0"].iter().map(|s| s.to_string()).collect();
        let err = run(&args).expect_err("empty outage window");
        assert!(err.contains("--outage-ticks"), "{err}");
    }
}
