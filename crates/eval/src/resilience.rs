//! `miro resilience` — control-plane robustness under an unreliable
//! channel.
//!
//! Sweeps the [`miro_core::chan::FaultyChannel`] fault knobs (drop /
//! duplicate / reorder) over a Gao2005-shaped topology and measures what
//! the [`miro_core::reliable`] layer delivers at each point:
//!
//! * **negotiation success rate** — handshakes completed via
//!   retransmit/backoff, over pairs known to succeed on a perfect channel
//!   (so loss measures the reliability layer, not semantic rejects);
//! * **handshake latency** — virtual ticks from first `Request` to the
//!   terminal outcome, mean and p95;
//! * **fallbacks** — every exhausted negotiation must surface a typed
//!   failure and degrade to the BGP default path (asserted, not hoped);
//! * **double establishes** — must be zero at every fault level;
//! * **tunnel survival** — fraction of established tunnels still alive
//!   after a further stretch of lossy keepalive traffic.
//!
//! The sweep is seeded and deterministic; results go to `RESILIENCE.json`
//! (next to `BENCH_solver.json`) so CI can pin a success floor with
//! `--check-floor`.

use crate::report;
use miro_bgp::solver::{RoutingState, SolveScratch};
use miro_core::chan::FaultConfig;
use miro_core::node::MiroNetwork;
use miro_core::reliable::ReliableNet;
use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};
use serde::Serialize;
use std::fmt::Write as _;

/// Drop rates swept, in per-mille. Duplication rides at half the drop
/// rate and reordering at the full drop rate, so one axis describes the
/// whole channel. The 100‰ point (10% drop + 5% dup + 10% reorder) is the
/// acceptance point `--check-floor` pins.
const DROP_SWEEP: &[u32] = &[0, 50, 100, 200, 300];

/// Ticks of continued lossy keepalive traffic after the handshakes
/// settle, for the survival measurement. Several times the keepalive
/// timeout (35), so sustained-loss expiry has room to show.
const SURVIVAL_TICKS: u64 = 200;

/// Per-sweep-point hard cap on settling time; generous next to the worst
/// retransmit schedule (~256 ticks at the default backoff ladder).
const MAX_SETTLE_TICKS: u64 = 2_000;

#[derive(Serialize)]
pub struct SweepPoint {
    pub drop_permille: u32,
    pub dup_permille: u32,
    pub reorder_permille: u32,
    pub attempted: usize,
    pub succeeded: usize,
    pub success_rate: f64,
    /// Typed failures, each with a recorded degrade-to-default event.
    pub fallbacks: usize,
    /// Negotiations that allocated more than one tunnel (must be 0).
    pub double_established: usize,
    pub mean_latency_ticks: f64,
    pub p95_latency_ticks: u64,
    /// Requester-side retransmissions across all handshakes.
    pub retransmits: u32,
    /// Channel duplicates absorbed by the sequence layer.
    pub duplicates_suppressed: usize,
    pub settle_ticks: u64,
    /// Tunnels still alive after [`SURVIVAL_TICKS`] more lossy ticks.
    pub tunnels_surviving: usize,
    pub survival_rate: f64,
}

#[derive(Serialize)]
pub struct ResilienceReport {
    pub seed: u64,
    pub scale: f64,
    pub nodes: usize,
    pub pairs: usize,
    pub points: Vec<SweepPoint>,
}

/// Entry point for `miro resilience [--seed N] [--scale F] [--pairs N]
/// [--out PATH] [--check-floor PCT]`. Returns the human-readable report;
/// JSON lands in `--out` (default `RESILIENCE.json`). With
/// `--check-floor`, errors if the success rate at the 10%-drop point
/// falls below `PCT` percent — the CI fault-injection gate.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut seed: u64 = 20060911;
    let mut scale: f64 = 0.01;
    let mut pairs: usize = 40;
    let mut out_path = "RESILIENCE.json".to_string();
    let mut floor: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--pairs" => pairs = val("--pairs")?.parse().map_err(|e| format!("--pairs: {e}"))?,
            "--out" => out_path = val("--out")?,
            "--check-floor" => {
                floor = Some(
                    val("--check-floor")?.parse().map_err(|e| format!("--check-floor: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let topo = DatasetPreset::Gao2005.params(scale, seed).generate();
    let (dest, candidates) = workable_pairs(&topo, pairs, seed);
    if candidates.is_empty() {
        return Err("no negotiable pairs found; raise --scale".to_string());
    }
    let st = RoutingState::solve(&topo, dest);

    let mut points = Vec::new();
    for &drop in DROP_SWEEP {
        let (dup, reorder) = (drop / 2, drop);
        points.push(sweep_point(&topo, &st, &candidates, drop, dup, reorder, seed));
    }

    let report = ResilienceReport {
        seed,
        scale,
        nodes: topo.num_nodes(),
        pairs: candidates.len(),
        points,
    };

    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out_path, json).map_err(|e| format!("write {out_path}: {e}"))?;
    report::persist("resilience", &report);

    let mut out = render(&report);
    let _ = writeln!(out, "\nJSON written to {out_path}");

    if let Some(floor) = floor {
        let gate = report
            .points
            .iter()
            .find(|p| p.drop_permille == 100)
            .ok_or("sweep has no 10%-drop point to gate on")?;
        let got = gate.success_rate * 100.0;
        if got < floor {
            return Err(format!(
                "fault-injection floor violated: success {got:.1}% < {floor:.1}% \
                 at 10% drop / 5% dup / 10% reorder"
            ));
        }
        let _ = writeln!(out, "floor check: {got:.1}% >= {floor:.1}% at 10% drop — ok");
    }
    Ok(out)
}

/// Pick (requester, responder) pairs that negotiate successfully on a
/// perfect channel, plus the destination they share: the sweep then
/// measures only channel effects. Responders are drawn from each
/// requester's default path (the paper's on-path strategy).
fn workable_pairs(topo: &Topology, want: usize, seed: u64) -> (NodeId, Vec<(NodeId, NodeId)>) {
    let n = topo.num_nodes() as NodeId;
    // A deterministic, seed-shifted scan over destinations; the first
    // destination yielding enough workable pairs wins.
    let mut best: (NodeId, Vec<(NodeId, NodeId)>) = (0, Vec::new());
    let mut scratch = SolveScratch::new();
    for probe in 0..8u64 {
        let dest = ((seed.wrapping_add(probe * 7919)) % u64::from(n)) as NodeId;
        let st = RoutingState::solve_into(topo, dest, &mut scratch);
        let mut net = MiroNetwork::new(topo);
        let mut found = Vec::new();
        for req in 0..n {
            if found.len() >= want {
                break;
            }
            if req == dest {
                continue;
            }
            let Some(path) = st.path(req) else { continue };
            // First on-path AS beyond the requester, destination excluded.
            let Some(&resp) = path.iter().skip(1).find(|&&x| x != dest && x != req) else {
                continue;
            };
            if net.negotiate(&st, req, resp, Vec::new(), 1_000).is_ok() {
                found.push((req, resp));
            }
        }
        st.recycle(&mut scratch);
        if found.len() > best.1.len() {
            best = (dest, found);
        }
        if best.1.len() >= want {
            break;
        }
    }
    best
}

fn sweep_point(
    topo: &Topology,
    st: &RoutingState<'_>,
    pairs: &[(NodeId, NodeId)],
    drop: u32,
    dup: u32,
    reorder: u32,
    seed: u64,
) -> SweepPoint {
    let fault = FaultConfig::lossy(drop, dup, reorder);
    let mut net = ReliableNet::new(topo, fault, seed ^ u64::from(drop));
    for &(req, resp) in pairs {
        net.start(st, req, resp, Vec::new(), 1_000)
            .expect("pre-screened pairs are never self-negotiations");
        // Stagger starts so retransmit timers do not all fire in lockstep.
        net.tick(st);
    }
    let settle_ticks = net.run_until_settled(st, MAX_SETTLE_TICKS);

    let outcomes = net.outcomes();
    assert_eq!(outcomes.len(), pairs.len(), "every negotiation reaches a terminal state");
    let succeeded = outcomes.iter().filter(|o| o.result.is_ok()).count();
    let failed = outcomes.len() - succeeded;
    // The robustness contract: every failure is a typed, recorded
    // fallback to the BGP default path — never a silent loss of service.
    assert_eq!(net.fallbacks().len(), failed, "each failure records its fallback");

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.result.is_ok())
        .map(|o| o.latency())
        .collect();
    latencies.sort_unstable();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let p95 = latencies
        .get((latencies.len().saturating_sub(1)) * 95 / 100)
        .copied()
        .unwrap_or(0);
    let retransmits: u32 = outcomes.iter().map(|o| o.retransmits).sum();
    let double_established = net.double_establish_count();
    assert_eq!(double_established, 0, "duplicate-safe handlers never double-establish");

    // Survival: keep the channel lossy and let keepalives fight it.
    for _ in 0..SURVIVAL_TICKS {
        net.tick(st);
    }
    let tunnels_surviving = net.leases().len();

    SweepPoint {
        drop_permille: drop,
        dup_permille: dup,
        reorder_permille: reorder,
        attempted: pairs.len(),
        succeeded,
        success_rate: succeeded as f64 / pairs.len() as f64,
        fallbacks: failed,
        double_established,
        mean_latency_ticks: mean,
        p95_latency_ticks: p95,
        retransmits,
        duplicates_suppressed: net.duplicates_suppressed,
        settle_ticks,
        tunnels_surviving,
        survival_rate: if succeeded == 0 {
            0.0
        } else {
            tunnels_surviving as f64 / succeeded as f64
        },
    }
}

fn render(r: &ResilienceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "resilience sweep — Gao2005 scale {} ({} nodes), {} pairs, seed {}",
        r.scale, r.nodes, r.pairs, r.seed
    );
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.drop_permille),
                format!("{}", p.dup_permille),
                format!("{}", p.reorder_permille),
                format!("{}/{}", p.succeeded, p.attempted),
                report::pct(p.success_rate * 100.0),
                format!("{:.1}", p.mean_latency_ticks),
                format!("{}", p.p95_latency_ticks),
                format!("{}", p.retransmits),
                format!("{}", p.fallbacks),
                report::pct(p.survival_rate * 100.0),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "drop\u{2030}", "dup\u{2030}", "reord\u{2030}", "ok", "success",
            "lat(mean)", "lat(p95)", "rexmit", "fallback", "survival",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("miro-resilience-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn tiny_sweep_end_to_end() {
        let out = tmp("tiny.json");
        let args: Vec<String> =
            ["--pairs", "6", "--out", &out, "--seed", "7"].iter().map(|s| s.to_string()).collect();
        let report = run(&args).expect("sweep runs");
        assert!(report.contains("success"), "human table rendered");
        let json = std::fs::read_to_string(&out).expect("JSON written");
        let parsed: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let serde_json::JsonValue::Obj(top) = &parsed else { panic!("top-level object") };
        let serde_json::JsonValue::Arr(points) = &top["points"] else { panic!("points array") };
        assert_eq!(points.len(), DROP_SWEEP.len());
        let num = |p: &serde_json::JsonValue, key: &str| -> f64 {
            let serde_json::JsonValue::Obj(o) = p else { panic!("point object") };
            let serde_json::JsonValue::Num(n) = o[key] else { panic!("{key} numeric") };
            n
        };
        // Perfect-channel point: everything succeeds, nothing retransmits.
        assert_eq!(num(&points[0], "drop_permille"), 0.0);
        assert_eq!(num(&points[0], "success_rate"), 1.0);
        assert_eq!(num(&points[0], "retransmits"), 0.0);
        for p in points {
            assert_eq!(num(p, "double_established"), 0.0);
        }
    }

    #[test]
    fn impossible_floor_fails_the_gate() {
        let out = tmp("floor.json");
        let args: Vec<String> = ["--pairs", "6", "--out", &out, "--seed", "7", "--check-floor", "101"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).expect_err("101% floor cannot be met");
        assert!(err.contains("floor violated"), "typed gate failure: {err}");
    }

    #[test]
    fn unknown_argument_is_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(run(&args).is_err());
    }
}
