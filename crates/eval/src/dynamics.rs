//! Convergence-dynamics instrumentation (beyond the paper's figures,
//! indexed in DESIGN.md): how expensive is convergence, and what do the
//! safety guidelines cost?
//!
//! The dissertation proves *that* MIRO converges under Guidelines B-E;
//! an operator deciding whether to deploy also wants to know *how fast*
//! and at what message cost. This experiment measures, across topology
//! scales: (a) activations for plain BGP to converge (event simulator),
//! (b) activation rounds for the tunnel layer to quiesce under each
//! guideline, and (c) the tunnel-layer establish/teardown churn.

use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_bgp::sim::{GaoRexford, Sim};
use miro_bgp::solver::{RoutingState, SolveScratch};
use miro_convergence::{Desire, Guideline, TunnelSim};
use miro_topology::NodeId;
use rand::Rng;
use serde::Serialize;

/// One measurement row.
#[derive(Serialize, Clone, Debug)]
pub struct DynamicsRow {
    pub label: String,
    pub nodes: usize,
    /// Mean BGP activations to converge, per destination.
    pub bgp_activations_mean: f64,
    /// Tunnel-layer rounds to quiesce under Guideline B / E.
    pub tunnel_rounds_b: usize,
    pub tunnel_rounds_e: usize,
    /// Establish + teardown events under Guideline E (churn).
    pub tunnel_churn_e: usize,
}

/// Random realistic desires (sampled from actual candidate sets).
fn sample_desires(ds: &Dataset, cfg: &EvalConfig, count: usize) -> Vec<Desire> {
    let mut rng = driver::rng_for(cfg.seed, 1, 0xD1);
    let nodes: Vec<NodeId> = ds.topo.nodes().collect();
    let mut out = Vec::new();
    let mut guard = 0;
    let mut scratch = SolveScratch::new();
    while out.len() < count && guard < count * 100 {
        guard += 1;
        let dest = nodes[rng.gen_range(0..nodes.len())];
        let req = nodes[rng.gen_range(0..nodes.len())];
        if req == dest {
            continue;
        }
        let st = RoutingState::solve_into(&ds.topo, dest, &mut scratch);
        let desire = (|| {
            let path = st.path(req)?;
            if path.len() < 2 {
                return None;
            }
            let responder = path[rng.gen_range(0..path.len() - 1)];
            if responder == dest || responder == req {
                return None;
            }
            let cands = st.candidates(responder);
            if cands.is_empty() {
                return None;
            }
            let wanted = cands[rng.gen_range(0..cands.len())].path.clone();
            Some(Desire { requester: req, responder, dest, wanted })
        })();
        st.recycle(&mut scratch);
        out.extend(desire);
    }
    out
}

/// Measure one dataset.
pub fn measure(ds: &Dataset, cfg: &EvalConfig, desire_count: usize) -> DynamicsRow {
    // (a) BGP activations, averaged over sampled destinations.
    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples.min(20), cfg.seed ^ 0xD7);
    let mut total_steps = 0usize;
    for &d in &dests {
        let mut sim = Sim::new(&ds.topo, GaoRexford, d);
        match sim.run(cfg.seed, 100_000_000) {
            miro_bgp::sim::Outcome::Converged { steps } => total_steps += steps,
            miro_bgp::sim::Outcome::Diverged { .. } => {
                unreachable!("Gao-Rexford policies always converge")
            }
        }
    }
    // (b)+(c) Tunnel-layer rounds under B and E.
    let desires = sample_desires(ds, cfg, desire_count);
    let run = |g: Guideline| {
        let mut sim = TunnelSim::new(&ds.topo, g.config(), desires.clone());
        let out = sim.run(cfg.seed ^ 0xD9, 1000);
        let rounds = match out {
            miro_convergence::SimOutcome::Converged { rounds } => rounds,
            miro_convergence::SimOutcome::Diverged { rounds } => rounds,
        };
        let churn: usize = sim.establishments.iter().sum::<usize>()
            + sim.teardowns.iter().sum::<usize>();
        (rounds, churn)
    };
    let (rounds_b, _) = run(Guideline::B);
    let (rounds_e, churn_e) = run(Guideline::E);
    DynamicsRow {
        label: ds.name().to_string(),
        nodes: ds.topo.num_nodes(),
        bgp_activations_mean: total_steps as f64 / dests.len().max(1) as f64,
        tunnel_rounds_b: rounds_b,
        tunnel_rounds_e: rounds_e,
        tunnel_churn_e: churn_e,
    }
}

/// Sweep scales for one preset.
pub fn sweep(
    preset: miro_topology::gen::DatasetPreset,
    cfg: &EvalConfig,
    scales: &[f64],
) -> Vec<DynamicsRow> {
    scales
        .iter()
        .map(|&s| {
            let mut c = cfg.clone();
            c.scale = s;
            let ds = Dataset::build(preset, &c);
            let mut row = measure(&ds, &c, 16);
            row.label = format!("{} @ {:.0}%", row.label, s * 100.0);
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::DatasetPreset;

    #[test]
    fn dynamics_scale_sanely() {
        let cfg = EvalConfig::test_tiny();
        let rows = sweep(DatasetPreset::Gao2005, &cfg, &[0.008, 0.016]);
        assert_eq!(rows.len(), 2);
        // More nodes, more activations.
        assert!(rows[1].nodes > rows[0].nodes);
        assert!(
            rows[1].bgp_activations_mean > rows[0].bgp_activations_mean,
            "{rows:?}"
        );
        // Tunnel layers quiesce in a handful of rounds (the proofs'
        // constructive sequences are 2-4 phases; random schedules take a
        // few more).
        for r in &rows {
            assert!(r.tunnel_rounds_b <= 20, "{r:?}");
            assert!(r.tunnel_rounds_e <= 20, "{r:?}");
            assert!(r.bgp_activations_mean >= r.nodes as f64 * 0.9,
                "every node activates at least about once: {r:?}");
        }
    }

    #[test]
    fn guideline_b_is_never_chattier_than_e() {
        // B never stacks tunnels, so it cannot out-churn E by much; both
        // stay near the desire count.
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        let row = measure(&ds, &cfg, 12);
        assert!(row.tunnel_churn_e <= 12 * 6, "bounded churn: {row:?}");
    }
}
