//! Design-choice ablations beyond the paper's own figures (indexed in
//! DESIGN.md):
//!
//! * **overlay baseline** — the section 2.1.3 comparison: overlay
//!   networks relay through intermediate hosts but cannot control the
//!   underlay, so avoidance works only when *both* underlay legs dodge
//!   the offender, and breaks silently when the underlay reroutes
//!   (Figure 2.3's case b);
//! * **multi-hop negotiation** — the section 3.3 extension where a
//!   responding AS queries its neighbors to satisfy a request;
//! * **targeting strategies** — on-path vs 1-hop vs combined success
//!   rates (their *cost* is measured by the `strategy` bench group);
//! * **prefix de-aggregation** — today's inbound-control hack the paper's
//!   footnote calls out ("announcing small subnets increases
//!   routing-table size without providing precise control"), quantified:
//!   global forwarding-state cost of subnet splitting vs one MIRO tunnel.

use crate::avoid::TripleProbe;
use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_bgp::solver::{RoutingState, SolveScratch};
use miro_core::export::ExportPolicy;
use miro_core::strategy::{
    avoid_via_multihop_negotiation, avoid_via_negotiation, TargetStrategy,
};
use miro_topology::stats::top_degree_nodes;
use miro_topology::NodeId;
use serde::Serialize;

/// Success rates on the same avoid-AS triples for every architecture in
/// the extended comparison.
#[derive(Serialize, Clone, Debug)]
pub struct AblationRow {
    pub name: String,
    pub success_pct: f64,
}

/// Overlay-network avoidance: with relay nodes at the `k` highest-degree
/// ASes, a source avoids `avoid` iff some relay has both underlay legs
/// (src -> relay, relay -> dst) clean. `relay_states[i]` must be the
/// routing state toward `relays[i]`.
pub fn overlay_avoids(
    relays: &[NodeId],
    relay_states: &[RoutingState<'_>],
    dest_state: &RoutingState<'_>,
    src: NodeId,
    avoid: NodeId,
) -> bool {
    relays.iter().zip(relay_states).any(|(&r, rst)| {
        if r == src || r == avoid || r == dest_state.dest() {
            return false;
        }
        let leg1 = rst.path(src);
        let leg2 = dest_state.path(r);
        matches!((leg1, leg2), (Some(a), Some(b))
            if !a.contains(&avoid) && !b.contains(&avoid))
    })
}

/// Compare architectures on freshly sampled triples: single-path BGP,
/// overlay (k relays), MIRO direct (`/e`), MIRO multi-hop (`/e`), source
/// routing.
pub fn architecture_comparison(
    ds: &Dataset,
    cfg: &EvalConfig,
    relay_count: usize,
) -> Vec<AblationRow> {
    let relays = top_degree_nodes(&ds.topo, relay_count);
    let relay_states: Vec<RoutingState<'_>> =
        relays.iter().map(|&r| RoutingState::solve(&ds.topo, r)).collect();

    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples, cfg.seed ^ 0xAB);
    let mut counts = [0usize; 6];
    let mut total = 0usize;
    // The relay states above must all stay alive at once, but the
    // per-destination state is transient — recycle its storage.
    let mut scratch = SolveScratch::new();
    for &d in &dests {
        let st = RoutingState::solve_into(&ds.topo, d, &mut scratch);
        let mut rng = driver::rng_for(cfg.seed, d, 0xAB1);
        for src in driver::sample_srcs(&ds.topo, d, cfg.src_samples / 2, cfg.seed ^ 0xAB2) {
            let Some(path) = st.path(src) else { continue };
            if path.len() < 2 {
                continue;
            }
            let eligible: Vec<NodeId> = path[..path.len() - 1]
                .iter()
                .copied()
                .filter(|&x| ds.topo.rel(src, x).is_none())
                .collect();
            if eligible.is_empty() {
                continue;
            }
            use rand::Rng;
            let avoid = eligible[rng.gen_range(0..eligible.len())];
            total += 1;
            if st.candidates(src).iter().any(|c| !c.traverses(avoid)) {
                counts[0] += 1;
            }
            // NS-BGP defaults: richer rib-in, still no negotiation.
            if miro_bgp::ns::ns_single_path_avoids(&st, src, avoid) {
                counts[1] += 1;
            }
            if overlay_avoids(&relays, &relay_states, &st, src, avoid) {
                counts[2] += 1;
            }
            if avoid_via_negotiation(
                &st,
                src,
                avoid,
                ExportPolicy::RespectExport,
                TargetStrategy::OnPath,
                None,
            )
            .success
            {
                counts[3] += 1;
            }
            if avoid_via_multihop_negotiation(
                &st,
                src,
                avoid,
                ExportPolicy::RespectExport,
                TargetStrategy::OnPath,
                None,
            )
            .success
            {
                counts[4] += 1;
            }
            if ds.topo.reachable_avoiding(src, d, avoid) {
                counts[5] += 1;
            }
        }
        st.recycle(&mut scratch);
    }
    let names = [
        "single-path BGP",
        "NS-BGP defaults (no negotiation)",
        "overlay (relays at top-degree ASes)",
        "MIRO /e direct",
        "MIRO /e multi-hop",
        "source routing (upper bound)",
    ];
    names
        .iter()
        .zip(counts)
        .map(|(n, c)| AblationRow {
            name: n.to_string(),
            success_pct: 100.0 * c as f64 / total.max(1) as f64,
        })
        .collect()
}

/// Targeting-strategy ablation over pre-computed probes is not possible
/// (probes are on-path); this variant re-runs the negotiation per
/// strategy on sampled triples.
pub fn strategy_comparison(ds: &Dataset, cfg: &EvalConfig) -> Vec<AblationRow> {
    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples, cfg.seed ^ 0xCD);
    let strategies = [
        TargetStrategy::OnPath,
        TargetStrategy::OneHop,
        TargetStrategy::OnPathThenNeighbors,
    ];
    let results = driver::par_over_dests(&ds.topo, &dests, cfg.threads, |d, st| {
        let mut rng = driver::rng_for(cfg.seed, d, 0xCD1);
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for src in driver::sample_srcs(&ds.topo, d, cfg.src_samples / 2, cfg.seed ^ 0xCD2) {
            let Some(path) = st.path(src) else { continue };
            if path.len() < 2 {
                continue;
            }
            let eligible: Vec<NodeId> = path[..path.len() - 1]
                .iter()
                .copied()
                .filter(|&x| ds.topo.rel(src, x).is_none())
                .collect();
            if eligible.is_empty() {
                continue;
            }
            use rand::Rng;
            let avoid = eligible[rng.gen_range(0..eligible.len())];
            total += 1;
            for (i, &strat) in strategies.iter().enumerate() {
                if avoid_via_negotiation(
                    st,
                    src,
                    avoid,
                    ExportPolicy::RespectExport,
                    strat,
                    None,
                )
                .success
                {
                    counts[i] += 1;
                }
            }
        }
        (counts, total)
    });
    let mut counts = [0usize; 3];
    let mut total = 0usize;
    for (c, t) in results {
        for i in 0..3 {
            counts[i] += c[i];
        }
        total += t;
    }
    strategies
        .iter()
        .zip(counts)
        .map(|(s, c)| AblationRow {
            name: s.label().to_string(),
            success_pct: 100.0 * c as f64 / total.max(1) as f64,
        })
        .collect()
}

/// Prefix de-aggregation cost model (the section 1.2 footnote): a
/// multi-homed stub that splits its prefix into `2^k` subnets to steer
/// inbound traffic adds `2^k` extra routing-table entries at *every* AS
/// in the Internet; a MIRO negotiation adds tunnel state at exactly two
/// ASes. Returns (deagg_entries_global, miro_entries_global) for one
/// stub's steering action.
pub fn deaggregation_cost(topo: &miro_topology::Topology, split_bits: u32) -> (usize, usize) {
    let subnets = 1usize << split_bits;
    // Every AS holds every announced prefix: the whole table grows.
    let deagg = subnets * topo.num_nodes();
    // MIRO: one lease, state at the two endpoints.
    let miro = 2;
    (deagg, miro)
}

/// Did the `probes` population include cases only multi-hop can solve?
/// (Used by tests; cheap to answer from a fresh sample.)
pub fn multihop_gain(probes: &[TripleProbe], ds: &Dataset) -> (usize, usize) {
    let mut direct = 0;
    let mut multi = 0;
    let mut scratch = SolveScratch::new();
    for p in probes.iter().filter(|p| !p.single) {
        let st = RoutingState::solve_into(&ds.topo, p.dest, &mut scratch);
        if avoid_via_negotiation(
            &st,
            p.src,
            p.avoid,
            ExportPolicy::RespectExport,
            TargetStrategy::OnPath,
            None,
        )
        .success
        {
            direct += 1;
        }
        if avoid_via_multihop_negotiation(
            &st,
            p.src,
            p.avoid,
            ExportPolicy::RespectExport,
            TargetStrategy::OnPath,
            None,
        )
        .success
        {
            multi += 1;
        }
        st.recycle(&mut scratch);
    }
    (direct, multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::DatasetPreset;

    fn ds_and_cfg() -> (Dataset, EvalConfig) {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        (ds, cfg)
    }

    #[test]
    fn architecture_ordering_holds() {
        let (ds, cfg) = ds_and_cfg();
        let rows = architecture_comparison(&ds, &cfg, 6);
        assert_eq!(rows.len(), 6);
        let v: Vec<f64> = rows.iter().map(|r| r.success_pct).collect();
        // single <= NS-BGP defaults <= source; single <= MIRO direct <=
        // MIRO multi-hop <= source routing.
        assert!(v[0] <= v[1] + 1e-9, "NS-BGP defaults can only add: {rows:?}");
        assert!(v[0] <= v[3] + 1e-9, "{rows:?}");
        assert!(v[3] <= v[4] + 1e-9, "{rows:?}");
        assert!(v[4] <= v[5] + 1e-9, "{rows:?}");
        // Overlay and NS-BGP stay below the source bound.
        assert!(v[1] <= v[5] + 1e-9, "{rows:?}");
        assert!(v[2] <= v[5] + 1e-9, "{rows:?}");
    }

    #[test]
    fn overlay_breaks_when_both_legs_cross_the_offender() {
        // Figure 2.3 case b, distilled: the only relay's leg crosses the
        // avoided AS, so the overlay cannot help even though a clean
        // underlay path exists for MIRO.
        let (ds, _) = ds_and_cfg();
        let relays = top_degree_nodes(&ds.topo, 1);
        let relay_states: Vec<_> =
            relays.iter().map(|&r| RoutingState::solve(&ds.topo, r)).collect();
        let d = ds.topo.nodes().last().unwrap();
        let st = RoutingState::solve(&ds.topo, d);
        // Avoiding the relay itself always defeats the overlay.
        for src in ds.topo.nodes().take(20) {
            assert!(!overlay_avoids(&relays, &relay_states, &st, src, relays[0]));
        }
    }

    #[test]
    fn strategy_comparison_shapes() {
        let (ds, cfg) = ds_and_cfg();
        let rows = strategy_comparison(&ds, &cfg);
        assert_eq!(rows.len(), 3);
        let on_path = rows[0].success_pct;
        let combined = rows[2].success_pct;
        assert!(combined >= on_path - 1e-9, "combined covers on-path: {rows:?}");
    }

    #[test]
    fn deaggregation_is_orders_of_magnitude_costlier() {
        let (ds, _) = ds_and_cfg();
        let (deagg, miro) = deaggregation_cost(&ds.topo, 2);
        assert_eq!(miro, 2);
        assert!(deagg >= ds.topo.num_nodes() * 4);
        assert!(deagg / miro > 100, "the footnote's point, quantified");
    }
}
