//! Figures 5.4/5.5: incremental deployment.
//!
//! Only a fraction of ASes speak MIRO; the requester can negotiate only
//! with deployed on-path ASes. Adoption proceeds in decreasing node-degree
//! order ("the likely scenario where the nodes with higher degree adopt
//! MIRO first"), with a low-degree-first control showing edge-first
//! deployment is ineffective. The y-axis normalizes negotiated successes
//! to ubiquitous deployment under the most flexible policy, over the
//! triples single-path routing cannot satisfy.

use crate::avoid::TripleProbe;
use crate::datasets::Dataset;
use miro_topology::stats::nodes_by_degree_desc;
use serde::Serialize;

/// The adoption fractions swept (log-ish scale, as in the figure).
pub const ADOPTION_FRACTIONS: [f64; 10] =
    [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0];

/// One deployment curve: per adoption fraction, the benefit ratio.
#[derive(Serialize, Clone, Debug)]
pub struct DeployCurve {
    pub label: String,
    /// (fraction of ASes deployed, fraction of the full-deployment
    /// flexible-policy gain achieved).
    pub points: Vec<(f64, f64)>,
}

/// The Figure 5.4/5.5 result for one dataset.
#[derive(Serialize, Clone, Debug)]
pub struct DeployResult {
    pub dataset: String,
    /// Three curves (one per policy), high-degree-first adoption.
    pub by_degree: Vec<DeployCurve>,
    /// Control: flexible policy, lowest-degree-first adoption.
    pub low_degree_first: DeployCurve,
    /// Deployment-independent floor: the fraction of the full-deployment
    /// gain that plain BGP already delivers by rerouting around a failed
    /// link into the offender — what an operator gets with zero adoption.
    pub reroute_floor: f64,
}

fn mask_for(order: &[miro_topology::NodeId], n_nodes: usize, k: usize) -> Vec<bool> {
    let mut mask = vec![false; n_nodes];
    for &x in order.iter().take(k) {
        mask[x as usize] = true;
    }
    mask
}

/// Run the experiment from pre-computed probes (shared with Table 5.2/5.3).
pub fn fig5_4(ds: &Dataset, probes: &[TripleProbe]) -> DeployResult {
    let order = nodes_by_degree_desc(&ds.topo);
    let n = ds.topo.num_nodes();
    // Base: full deployment, flexible policy, over single-path failures.
    let need: Vec<&TripleProbe> = probes.iter().filter(|p| !p.single).collect();
    let base = need.iter().filter(|p| p.success(2, None)).count().max(1);

    let curve = |label: String, order: &[miro_topology::NodeId], policy: usize| {
        let points = ADOPTION_FRACTIONS
            .iter()
            .map(|&f| {
                let k = ((n as f64 * f).ceil() as usize).max(1).min(n);
                let mask = mask_for(order, n, k);
                let wins = need
                    .iter()
                    .filter(|p| !p.single && p.success(policy, Some(&mask)))
                    .count();
                (f, wins as f64 / base as f64)
            })
            .collect();
        DeployCurve { label, points }
    };

    let by_degree = (0..3)
        .map(|p| {
            curve(
                format!("high-degree first {}", ["/s", "/e", "/a"][p]),
                &order,
                p,
            )
        })
        .collect();
    let mut reversed = order.clone();
    reversed.reverse();
    let low_degree_first =
        curve("low-degree first /a".to_string(), &reversed, 2);
    let reroute_floor = need.iter().filter(|p| p.reroute_avoids).count() as f64
        / base as f64;
    DeployResult {
        dataset: ds.name().to_string(),
        by_degree,
        low_degree_first,
        reroute_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avoid::sample_probes;
    use crate::datasets::EvalConfig;
    use miro_topology::gen::DatasetPreset;

    fn run() -> DeployResult {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        let probes = sample_probes(&ds, &cfg);
        fig5_4(&ds, &probes)
    }

    #[test]
    fn curves_are_monotone_in_adoption() {
        let r = run();
        for c in r.by_degree.iter().chain([&r.low_degree_first]) {
            for w in c.points.windows(2) {
                assert!(
                    w[0].1 <= w[1].1 + 1e-9,
                    "{}: more deployment cannot hurt: {:?}",
                    c.label,
                    c.points
                );
            }
        }
    }

    #[test]
    fn flexible_full_deployment_reaches_one() {
        let r = run();
        let last = r.by_degree[2].points.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "ratio at 100% /a must be 1.0");
    }

    #[test]
    fn high_degree_first_beats_low_degree_first() {
        // The paper's headline: a handful of well-connected adopters give
        // most of the benefit, while edge-first deployment gives almost
        // nothing until nearly everyone has deployed.
        let r = run();
        let hi = &r.by_degree[2].points; // /a, high-degree first
        let lo = &r.low_degree_first.points;
        // At 5% adoption, high-degree-first should deliver a large share
        // of the gain, low-degree-first very little.
        let at = |pts: &[(f64, f64)], f: f64| {
            pts.iter().find(|p| (p.0 - f).abs() < 1e-12).unwrap().1
        };
        assert!(
            at(hi, 0.05) > 0.3,
            "top-5% adopters should yield much of the gain: {}",
            at(hi, 0.05)
        );
        assert!(
            at(lo, 0.05) < at(hi, 0.05),
            "edge-first must trail core-first"
        );
        assert!(at(lo, 0.05) < 0.35, "edge-first gain stays small: {}", at(lo, 0.05));
    }

    #[test]
    fn reroute_floor_is_a_partial_gain() {
        // Passive rerouting recovers some but not all of the negotiated
        // gain — otherwise deployment curves would be pointless.
        let r = run();
        assert!(r.reroute_floor >= 0.0);
        assert!(
            r.reroute_floor < 1.0,
            "a single link failure cannot match full negotiation: {}",
            r.reroute_floor
        );
    }

    #[test]
    fn policy_order_preserved_under_deployment() {
        let r = run();
        for i in 0..ADOPTION_FRACTIONS.len() {
            let s = r.by_degree[0].points[i].1;
            let e = r.by_degree[1].points[i].1;
            let a = r.by_degree[2].points[i].1;
            assert!(s <= e + 1e-9 && e <= a + 1e-9);
        }
    }
}
