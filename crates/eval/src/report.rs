//! Plain-text rendering of tables and curve series, in the paper's
//! row/column format, plus JSON persistence of raw results.

use serde::Serialize;
use std::fmt::Write as _;

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
        }
        let _ = writeln!(out);
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Render a curve as `x -> y` pairs, one per line.
pub fn curve(label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}:");
    for (x, y) in points {
        let _ = writeln!(out, "  {:>7.3}  ->  {:.3}", x, y);
    }
    out
}

/// An ASCII CDF sketch for a sorted sample: percentile points.
pub fn cdf_summary(label: &str, sorted: &[u32]) -> String {
    if sorted.is_empty() {
        return format!("{label}: (empty)\n");
    }
    let p = |q: usize| sorted[(q * (sorted.len() - 1)) / 100];
    format!(
        "{label}: p5={} p25={} p50={} p75={} p95={} max={}\n",
        p(5),
        p(25),
        p(50),
        p(75),
        p(95),
        sorted[sorted.len() - 1]
    )
}

/// Persist a result as JSON under `target/eval/<name>.json` (best effort;
/// experiment output must not fail because the directory is read-only).
pub fn persist<T: Serialize>(name: &str, value: &T) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("eval");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).ok()?;
    std::fs::write(&path, json).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert!(lines[2].len() >= col);
    }

    #[test]
    fn cdf_summary_percentiles() {
        let s: Vec<u32> = (0..=100).collect();
        let out = cdf_summary("x", &s);
        assert!(out.contains("p50=50"));
        assert!(out.contains("max=100"));
        assert_eq!(cdf_summary("y", &[]), "y: (empty)\n");
    }

    #[test]
    fn pct_and_curve_format() {
        assert_eq!(pct(12.345), "12.3%");
        let c = curve("c", &[(0.5, 0.25)]);
        assert!(c.contains("0.500"));
        assert!(c.contains("0.250"));
    }
}
