//! The avoid-AS experiments: Table 5.2 (success rates) and Table 5.3
//! (negotiation state), plus the per-triple probes reused by the
//! incremental-deployment experiment (Figures 5.4/5.5).
//!
//! For every sampled (source, destination, AS-to-avoid) triple — where the
//! avoided AS sits on the source's default path, is not the destination,
//! and is not an immediate neighbor of the source (section 5.3's
//! exclusions) — we measure whether each routing architecture can meet the
//! objective:
//!
//! * **Single** — today's BGP: some ordinary candidate at the source
//!   already avoids the AS;
//! * **Multi `/s` `/e` `/a`** — MIRO: negotiate with on-path ASes before
//!   the offender under each export policy;
//! * **Source** — source routing: any path at all exists in the undirected
//!   graph once the offender is deleted (the paper's DFS feasibility test).

use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_bgp::engine::WhatIf;
use miro_core::export::ExportPolicy;
use miro_core::negotiate::Constraint;
use miro_core::strategy::{export_rel_toward, TargetStrategy};
use miro_topology::NodeId;
use rand::Rng;
use serde::Serialize;

/// Everything a deployment mask could need to know about one triple: the
/// ordered on-path responders with, per policy, whether that responder's
/// offers contain an avoiding route and how many offers it makes.
#[derive(Clone, Debug)]
pub struct TripleProbe {
    pub src: NodeId,
    pub dest: NodeId,
    pub avoid: NodeId,
    /// Ordinary BGP already avoids the AS.
    pub single: bool,
    /// Source routing (graph feasibility) succeeds.
    pub source: bool,
    /// After failing the link entering the offender on the source's
    /// default path, BGP's reconverged route still reaches the
    /// destination.
    pub reroute_reaches: bool,
    /// ...and that reconverged route also happens to avoid the AS — the
    /// "wait for a fault" baseline the negotiation columns are compared
    /// against.
    pub reroute_avoids: bool,
    /// On-path responders in contact order.
    pub responders: Vec<ResponderProbe>,
}

/// One on-path responder's answer, per export policy (indexed by
/// [`ExportPolicy::ALL`] order: `/s`, `/e`, `/a`).
#[derive(Clone, Debug)]
pub struct ResponderProbe {
    pub node: NodeId,
    /// Offers each policy would reveal.
    pub offers: [u32; 3],
    /// Whether any offer avoids the offending AS.
    pub success: [bool; 3],
}

impl TripleProbe {
    /// Negotiated success under policy `p` (index into
    /// [`ExportPolicy::ALL`]) when only `enabled` ASes speak MIRO
    /// (`None` = ubiquitous deployment). Single-path successes count as
    /// successes without negotiation.
    pub fn success(&self, p: usize, enabled: Option<&[bool]>) -> bool {
        if self.single {
            return true;
        }
        self.responders.iter().any(|r| {
            r.success[p]
                && enabled.is_none_or(|m| m[r.node as usize])
        })
    }

    /// (ASes contacted, paths received) under policy `p` with ubiquitous
    /// deployment — the Table 5.3 metrics. Contacts stop at the first
    /// success.
    pub fn negotiation_state(&self, p: usize) -> (usize, usize) {
        let mut contacted = 0;
        let mut received = 0;
        for r in &self.responders {
            contacted += 1;
            received += r.offers[p] as usize;
            if r.success[p] {
                break;
            }
        }
        (contacted, received)
    }
}

/// Probe one triple against a destination's what-if cache. All the
/// negotiation columns read the cached base solve; the reroute columns
/// fail the link entering the offender on `src`'s default path and read
/// the incrementally re-solved state.
pub fn probe_triple(
    wi: &mut WhatIf<'_, '_>,
    src: NodeId,
    avoid: NodeId,
) -> TripleProbe {
    let (dest, single, source, responders, failed_link) = {
        let st = wi.base();
        let topo = st.topology();
        let single = st.candidates(src).iter().any(|c| !c.traverses(avoid));
        let source = topo.reachable_avoiding(src, st.dest(), avoid);
        let mut responders = Vec::new();
        for responder in TargetStrategy::OnPath.targets(st, src, Some(avoid)) {
            let toward = export_rel_toward(st, src, responder);
            let constraint = Constraint::AvoidAs(avoid);
            let mut offers = [0u32; 3];
            let mut success = [false; 3];
            for (i, policy) in ExportPolicy::ALL.iter().enumerate() {
                let os = policy.offers(st, responder, toward);
                offers[i] = os.len() as u32;
                success[i] = os.iter().any(|o| constraint.admits(o));
            }
            responders.push(ResponderProbe { node: responder, offers, success });
        }
        // The link carrying the default path into the offender: the hop
        // before `avoid` on src's path (src itself if the offender is the
        // first hop).
        let failed_link = st.path(src).and_then(|path| {
            let i = path.iter().position(|&x| x == avoid)?;
            Some((if i == 0 { src } else { path[i - 1] }, avoid))
        });
        (st.dest(), single, source, responders, failed_link)
    };
    let (reroute_reaches, reroute_avoids) = match failed_link {
        // Offender not on the default path at all: nothing to fail, the
        // default route already satisfies both conditions.
        None => (true, true),
        Some((prev, next)) => wi.without_link(prev, next, |failed| {
            let reaches = failed.best(src).is_some();
            (reaches, reaches && !failed.path_traverses(src, avoid))
        }),
    };
    TripleProbe {
        src,
        dest,
        avoid,
        single,
        source,
        reroute_reaches,
        reroute_avoids,
        responders,
    }
}

/// Sample and probe triples for one dataset. Destinations shard across
/// threads; within a destination we sample sources and, for each, one
/// eligible AS to avoid.
pub fn sample_probes(ds: &Dataset, cfg: &EvalConfig) -> Vec<TripleProbe> {
    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples, cfg.seed);
    let per_dest = driver::par_over_dests_whatif(&ds.topo, &dests, cfg.threads, |d, wi| {
        let mut rng = driver::rng_for(cfg.seed, d, 0x5_301);
        let mut out = Vec::new();
        for src in driver::sample_srcs(&ds.topo, d, cfg.src_samples, cfg.seed ^ 0xabc) {
            let Some(path) = wi.base().path(src) else { continue };
            if path.len() < 2 {
                continue; // no intermediate AS to avoid
            }
            // Eligible: on the path, not the destination, not adjacent to
            // the source (the paper's exclusion).
            let eligible: Vec<NodeId> = path[..path.len() - 1]
                .iter()
                .copied()
                .filter(|&x| ds.topo.rel(src, x).is_none())
                .collect();
            if eligible.is_empty() {
                continue;
            }
            let avoid = eligible[rng.gen_range(0..eligible.len())];
            out.push(probe_triple(wi, src, avoid));
        }
        out
    });
    per_dest.into_iter().flatten().collect()
}

/// One row of Table 5.2 (percentages).
#[derive(Serialize, Clone, Debug)]
pub struct Table52Row {
    pub name: String,
    pub triples: usize,
    pub single_pct: f64,
    pub multi_s_pct: f64,
    pub multi_e_pct: f64,
    pub multi_a_pct: f64,
    pub source_pct: f64,
    /// Fraction whose post-failure BGP reroute happens to avoid the AS —
    /// the passive "break the link and pray" baseline MIRO negotiation is
    /// measured against.
    pub reroute_pct: f64,
}

/// Compute the Table 5.2 row for one dataset from its probes.
pub fn table5_2_row(name: &str, probes: &[TripleProbe]) -> Table52Row {
    let n = probes.len().max(1) as f64;
    let pct = |c: usize| 100.0 * c as f64 / n;
    Table52Row {
        name: name.to_string(),
        triples: probes.len(),
        single_pct: pct(probes.iter().filter(|p| p.single).count()),
        multi_s_pct: pct(probes.iter().filter(|p| p.success(0, None)).count()),
        multi_e_pct: pct(probes.iter().filter(|p| p.success(1, None)).count()),
        multi_a_pct: pct(probes.iter().filter(|p| p.success(2, None)).count()),
        source_pct: pct(probes.iter().filter(|p| p.source).count()),
        reroute_pct: pct(probes.iter().filter(|p| p.reroute_avoids).count()),
    }
}

/// One row of Table 5.3 (per policy, within one dataset).
#[derive(Serialize, Clone, Debug)]
pub struct Table53Row {
    pub policy: String,
    /// Overall negotiated success rate (same population as Table 5.2).
    pub success_pct: f64,
    /// Mean ASes contacted per single-path-failing tuple.
    pub as_per_tuple: f64,
    /// Mean candidate paths received per single-path-failing tuple.
    pub path_per_tuple: f64,
}

/// Compute Table 5.3 for one dataset: negotiation state over the tuples
/// single-path routing cannot satisfy (the paper eliminates the cases
/// "where today's single-path routing can succeed").
pub fn table5_3_rows(probes: &[TripleProbe]) -> Vec<Table53Row> {
    let all = probes.len().max(1) as f64;
    let need: Vec<&TripleProbe> = probes.iter().filter(|p| !p.single).collect();
    let m = need.len().max(1) as f64;
    ExportPolicy::ALL
        .iter()
        .enumerate()
        .map(|(i, policy)| {
            let succ = probes.iter().filter(|p| p.success(i, None)).count();
            let (ases, paths) = need.iter().fold((0usize, 0usize), |(a, p), t| {
                let (ta, tp) = t.negotiation_state(i);
                (a + ta, p + tp)
            });
            Table53Row {
                policy: format!("{}{}", policy_name(i), policy.label()),
                success_pct: 100.0 * succ as f64 / all,
                as_per_tuple: ases as f64 / m,
                path_per_tuple: paths as f64 / m,
            }
        })
        .collect()
}

fn policy_name(i: usize) -> &'static str {
    ["strict", "export", "flexible"][i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::DatasetPreset;

    fn small_probes() -> (Dataset, Vec<TripleProbe>) {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        let probes = sample_probes(&ds, &cfg);
        (ds, probes)
    }

    #[test]
    fn probes_respect_sampling_invariants() {
        let (ds, probes) = small_probes();
        assert!(probes.len() > 30, "enough triples sampled: {}", probes.len());
        for p in &probes {
            assert_ne!(p.avoid, p.dest);
            assert_ne!(p.avoid, p.src);
            assert!(
                ds.topo.rel(p.src, p.avoid).is_none(),
                "avoided AS must not neighbor the source"
            );
        }
    }

    #[test]
    fn policy_success_is_monotone() {
        let (_, probes) = small_probes();
        for p in &probes {
            let s = p.success(0, None);
            let e = p.success(1, None);
            let a = p.success(2, None);
            assert!(!s || e, "strict success implies export success");
            assert!(!e || a, "export success implies flexible success");
        }
    }

    #[test]
    fn multi_success_implies_source_success() {
        // Any negotiated path is a real path in the graph avoiding the AS,
        // so the graph-feasibility test must also pass.
        let (_, probes) = small_probes();
        for p in &probes {
            if p.success(2, None) {
                assert!(p.source, "negotiated success but graph says impossible?");
            }
        }
    }

    #[test]
    fn reroute_success_implies_source_success() {
        // A post-failure route that avoids the AS is a concrete path in
        // the graph avoiding the AS.
        let (_, probes) = small_probes();
        let mut rerouted = 0;
        for p in &probes {
            assert!(!p.reroute_avoids || p.reroute_reaches);
            if p.reroute_avoids {
                rerouted += 1;
                assert!(p.source, "reroute avoids the AS but graph says impossible?");
            }
        }
        assert!(rerouted > 0, "some probe must reroute around its offender");
    }

    #[test]
    fn passive_reroute_trails_negotiation() {
        // Failing one link only sometimes dodges the AS; negotiating for
        // an avoiding path under the flexible policy must do better.
        let (ds, probes) = small_probes();
        let row = table5_2_row(ds.name(), &probes);
        assert!(row.reroute_pct <= row.source_pct + 1e-9);
        assert!(
            row.reroute_pct < row.multi_a_pct,
            "reroute {} should trail multi/a {}",
            row.reroute_pct,
            row.multi_a_pct
        );
    }

    #[test]
    fn table_shape_matches_paper_ordering() {
        let (ds, probes) = small_probes();
        let row = table5_2_row(ds.name(), &probes);
        assert!(row.single_pct <= row.multi_s_pct);
        assert!(row.multi_s_pct <= row.multi_e_pct + 1e-9);
        assert!(row.multi_e_pct <= row.multi_a_pct + 1e-9);
        assert!(row.multi_a_pct <= row.source_pct + 1e-9);
        // The headline claim: MIRO at least doubles the single-path rate.
        assert!(
            row.multi_a_pct > 1.3 * row.single_pct,
            "multi {} vs single {}",
            row.multi_a_pct,
            row.single_pct
        );
    }

    #[test]
    fn table5_3_relaxation_lowers_contacts_raises_paths() {
        let (_, probes) = small_probes();
        let rows = table5_3_rows(&probes);
        assert_eq!(rows.len(), 3);
        // Looser policy => at most as many ASes contacted on average...
        assert!(rows[2].as_per_tuple <= rows[0].as_per_tuple + 0.2);
        // ...but more candidate paths shipped around.
        assert!(rows[2].path_per_tuple > rows[0].path_per_tuple);
        // Success rates increase with relaxation.
        assert!(rows[0].success_pct <= rows[1].success_pct + 1e-9);
        assert!(rows[1].success_pct <= rows[2].success_pct + 1e-9);
    }

    #[test]
    fn negotiation_state_stops_at_first_success() {
        let (_, probes) = small_probes();
        for p in probes.iter().filter(|p| !p.single) {
            let (contacted, _) = p.negotiation_state(2);
            assert!(contacted <= p.responders.len());
            if let Some(first) =
                p.responders.iter().position(|r| r.success[2])
            {
                assert_eq!(contacted, first + 1);
            }
        }
    }
}
