//! Evaluation harness: regenerates every table and figure of the paper's
//! evaluation (Chapter 5) and convergence (Chapter 7) chapters.
//!
//! | Paper artifact | Module | CLI subcommand |
//! |---|---|---|
//! | Table 5.1 (dataset attributes) | [`datasets`] | `table5-1` |
//! | Figure 5.1 (degree distribution) | [`datasets`] | `fig5-1` |
//! | Figures 5.2/5.3 (available routes) | [`routes`] | `fig5-2` |
//! | Table 5.2 (avoid-AS success rates) | [`avoid`] | `table5-2` |
//! | Table 5.3 (negotiation state) | [`avoid`] | `table5-3` |
//! | Figures 5.4/5.5 (incremental deployment) | [`deploy`] | `fig5-4` |
//! | Figures 5.6/5.7 (inbound traffic control) | [`inbound`] | `fig5-6` |
//! | Figure 7.1 / 7.2 gadget runs | [`convergence_exp`] | `fig7-1`, `fig7-2` |
//! | Control-plane robustness sweep | [`resilience`] | `miro resilience` |
//!
//! Experiments are seeded and deterministic; sample sizes and the
//! topology scale are configurable (the paper's full-size topologies and
//! exhaustive 300M-pair enumerations are available by turning the knobs
//! up, at matching cost). Results print in the paper's row/series format
//! and can also be serialized to JSON.

pub mod ablations;
pub mod avoid;
pub mod convergence_exp;
pub mod datasets;
pub mod deploy;
pub mod driver;
pub mod dynamics;
pub mod inbound;
pub mod report;
pub mod resilience;
pub mod routes;
pub mod whole_table;

pub use datasets::{Dataset, EvalConfig};
