//! Figures 5.6/5.7: controlling incoming traffic at multi-homed stubs.
//!
//! A multi-homed stub wants to move load between its incoming provider
//! links. It finds a "power node" — an AS many sources route through —
//! and asks it to switch to an alternate route entering via a different
//! link (the downstream-initiated negotiation of section 3.3). Following
//! section 5.4 we assume every source AS offers one unit of traffic, and
//! evaluate two propagation models:
//!
//! * **convert_all** — everyone routing through the power node follows it
//!   to the new link (upper bound; the paper notes the power node can
//!   force this on customers with community values);
//! * **independent_selection** — every AS re-runs BGP selection with the
//!   power node's new choice in place and moves only if it now prefers a
//!   path entering elsewhere (lower bound; we re-run the event simulator
//!   with the power node's route pinned).

use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_bgp::sim::{GaoRexford, RankPolicy, Sim};
use miro_bgp::solver::RoutingState;
use miro_core::export::ExportPolicy;
use miro_topology::{NodeId, Topology};
use serde::Serialize;

/// `GaoRexford` with one node pinned to a chosen path (the negotiated
/// switch): the pinned path ranks above everything at that node.
struct Pinned<'a> {
    node: NodeId,
    path: &'a [NodeId],
}

impl RankPolicy for Pinned<'_> {
    fn rank(&self, topo: &Topology, node: NodeId, path: &[NodeId]) -> Option<u64> {
        if node == self.node && path == self.path {
            return Some(0);
        }
        GaoRexford.rank(topo, node, path).map(|r| r + 1)
    }

    fn export(&self, topo: &Topology, node: NodeId, to: NodeId, path: &[NodeId]) -> bool {
        GaoRexford.export(topo, node, to, path)
    }
}

/// Per-stub measurement: the best movable traffic fraction under each
/// (policy, model) combination, and where the best power node sat.
#[derive(Serialize, Clone, Debug)]
pub struct StubOutcome {
    pub stub: u32,
    pub total_sources: usize,
    /// Indexed [strict, flexible] x [convert_all, independent].
    pub best_moved: [[f64; 2]; 2],
    /// Degree and hop distance of the best (flexible/convert) power node.
    pub power_degree: usize,
    pub power_distance: usize,
}

/// The incoming link (provider in front of the stub) a path enters by.
fn entry_of(path: &[NodeId], src: NodeId) -> NodeId {
    if path.len() >= 2 {
        path[path.len() - 2]
    } else {
        src // direct neighbor: the source itself is the entry AS
    }
}

/// Load per entry AS and per-node through-traffic for destination `d`.
fn traffic_profile(
    topo: &Topology,
    st: &RoutingState<'_>,
    d: NodeId,
) -> (std::collections::HashMap<NodeId, usize>, Vec<usize>, usize) {
    let mut entry_load: std::collections::HashMap<NodeId, usize> =
        std::collections::HashMap::new();
    let mut through = vec![0usize; topo.num_nodes()];
    let mut total = 0;
    for s in topo.nodes() {
        if s == d {
            continue;
        }
        let Some(path) = st.path(s) else { continue };
        total += 1;
        *entry_load.entry(entry_of(&path, s)).or_insert(0) += 1;
        through[s as usize] += 1; // the source's own unit passes itself
        for &hop in &path {
            if hop != d {
                through[hop as usize] += 1;
            }
        }
    }
    (entry_load, through, total)
}

/// Evaluate one stub. `power_candidates` and `offers_per_node` bound the
/// search (the paper needs only *one* good power node per stub).
pub fn evaluate_stub(
    topo: &Topology,
    d: NodeId,
    power_candidates: usize,
    offers_per_node: usize,
    sim_budget: usize,
) -> Option<StubOutcome> {
    let st = RoutingState::solve(topo, d);
    let (entry_load, through, total) = traffic_profile(topo, &st, d);
    if total == 0 {
        return None;
    }
    // Rank candidate power nodes by through-traffic.
    let mut cands: Vec<NodeId> = topo.nodes().filter(|&x| x != d).collect();
    cands.sort_by_key(|&x| std::cmp::Reverse(through[x as usize]));
    cands.truncate(power_candidates);

    let mut best = [[0.0f64; 2]; 2];
    let mut best_power: Option<(NodeId, usize)> = None;
    for &p in &cands {
        if through[p as usize] == 0 {
            continue;
        }
        let Some(p_path) = st.path(p) else { continue };
        let e_old = entry_of(&p_path, p);
        for (pi, policy) in [ExportPolicy::Strict, ExportPolicy::Flexible]
            .into_iter()
            .enumerate()
        {
            let offers = policy.switch_offers(&st, p);
            for offer in offers
                .iter()
                .filter(|o| entry_of(&o.route.path, p) != e_old)
                .take(offers_per_node)
            {
                // convert_all: everything through p moves.
                let conv = through[p as usize] as f64 / total as f64;
                if conv > best[pi][0] {
                    best[pi][0] = conv;
                    if pi == 1 {
                        best_power = Some((p, p_path.len()));
                    }
                }
                // independent_selection: re-run BGP with p pinned.
                let mut sim = Sim::new(topo, Pinned { node: p, path: &offer.route.path }, d);
                if !sim.run(0xF1F6 ^ p as u64, sim_budget).converged() {
                    continue;
                }
                let mut new_old_link = 0usize;
                for s in topo.nodes() {
                    if s == d {
                        continue;
                    }
                    if let Some(path) = sim.selected(s) {
                        if entry_of(path, s) == e_old {
                            new_old_link += 1;
                        }
                    }
                }
                let old = *entry_load.get(&e_old).unwrap_or(&0);
                let moved = old.saturating_sub(new_old_link) as f64 / total as f64;
                if moved > best[pi][1] {
                    best[pi][1] = moved;
                }
            }
        }
    }
    let (pw, dist) = best_power.unwrap_or((d, 0));
    Some(StubOutcome {
        stub: d,
        total_sources: total,
        best_moved: best,
        power_degree: topo.degree(pw),
        power_distance: dist,
    })
}

/// The Figure 5.6/5.7 result: per-series CDF over stubs.
#[derive(Serialize, Clone, Debug)]
pub struct InboundResult {
    pub dataset: String,
    pub stubs_evaluated: usize,
    pub outcomes: Vec<StubOutcome>,
}

impl InboundResult {
    /// Fraction of stubs whose best power node moves at least `frac` of
    /// the incoming traffic, per series index `[policy][model]`.
    pub fn cdf_at(&self, policy: usize, model: usize, frac: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.best_moved[policy][model] >= frac)
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Power-node composition stats (the section 5.4 narrative): fraction
    /// of best power nodes that are immediate neighbors of the stub, and
    /// fraction exactly two hops away.
    pub fn power_distance_stats(&self) -> (f64, f64) {
        let with = self
            .outcomes
            .iter()
            .filter(|o| o.power_distance > 0)
            .collect::<Vec<_>>();
        if with.is_empty() {
            return (0.0, 0.0);
        }
        let n = with.len() as f64;
        let one = with.iter().filter(|o| o.power_distance == 1).count() as f64 / n;
        let two = with.iter().filter(|o| o.power_distance == 2).count() as f64 / n;
        (one, two)
    }
}

/// Run the experiment for one dataset.
pub fn fig5_6(ds: &Dataset, cfg: &EvalConfig) -> InboundResult {
    let mut stubs: Vec<NodeId> = ds
        .topo
        .nodes()
        .filter(|&x| ds.topo.is_multihomed_stub(x))
        .collect();
    // Deterministic sample.
    let mut rng = driver::rng_for(cfg.seed, 0, 0x56);
    use rand::seq::SliceRandom;
    stubs.shuffle(&mut rng);
    stubs.truncate(cfg.dest_samples);
    let sim_budget = 200 * ds.topo.num_nodes();
    let outcomes: Vec<Option<StubOutcome>> =
        driver::par_over_dests(&ds.topo, &stubs, cfg.threads, |d, _st| {
            evaluate_stub(&ds.topo, d, 6, 2, sim_budget)
        });
    let outcomes: Vec<StubOutcome> = outcomes.into_iter().flatten().collect();
    InboundResult {
        dataset: ds.name().to_string(),
        stubs_evaluated: outcomes.len(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::DatasetPreset;

    fn run() -> InboundResult {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        fig5_6(&ds, &cfg)
    }

    #[test]
    fn entry_detection() {
        assert_eq!(entry_of(&[3, 7, 9], 1), 7);
        assert_eq!(entry_of(&[9], 4), 4);
    }

    #[test]
    fn evaluates_a_reasonable_number_of_stubs() {
        let r = run();
        assert!(r.stubs_evaluated >= 10, "stubs: {}", r.stubs_evaluated);
    }

    #[test]
    fn flexible_dominates_strict_and_convert_dominates_independent() {
        let r = run();
        for o in &r.outcomes {
            // Flexible offers are a superset of strict offers.
            assert!(o.best_moved[1][0] >= o.best_moved[0][0] - 1e-9);
            // convert_all is the paper's upper bound.
            for pi in 0..2 {
                assert!(
                    o.best_moved[pi][0] >= o.best_moved[pi][1] - 1e-9,
                    "convert_all must bound independent: {:?}",
                    o.best_moved
                );
            }
        }
    }

    #[test]
    fn many_stubs_can_move_traffic() {
        // Paper shape: under flexible/convert_all, the vast majority of
        // stubs find a power node moving >= 10% of traffic.
        let r = run();
        assert!(
            r.cdf_at(1, 0, 0.10) > 0.6,
            "flexible/convert at 10%: {}",
            r.cdf_at(1, 0, 0.10)
        );
        // And the independent model still moves traffic for many stubs.
        assert!(
            r.cdf_at(1, 1, 0.05) > 0.2,
            "flexible/independent at 5%: {}",
            r.cdf_at(1, 1, 0.05)
        );
    }

    #[test]
    fn cdf_is_monotone_decreasing_in_threshold() {
        let r = run();
        for pi in 0..2 {
            for mi in 0..2 {
                let mut prev = f64::INFINITY;
                for t in [0.05, 0.1, 0.2, 0.3, 0.5] {
                    let v = r.cdf_at(pi, mi, t);
                    assert!(v <= prev + 1e-12);
                    prev = v;
                }
            }
        }
    }
}
