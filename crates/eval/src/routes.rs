//! Figures 5.2/5.3: the number of available routes per (source,
//! destination) pair, under the three export policies and the two
//! negotiation scopes ("1-hop" with immediate neighbors, "path" with the
//! ASes on the default route).

use crate::datasets::{Dataset, EvalConfig};
use crate::driver;
use miro_core::export::ExportPolicy;
use miro_core::strategy::{count_available_routes, TargetStrategy};
use serde::Serialize;

/// One CDF series: label (e.g. "path /e") and the sorted per-pair counts.
#[derive(Serialize, Clone, Debug)]
pub struct RouteSeries {
    pub label: String,
    /// Sorted ascending; one entry per sampled (src, dest) pair.
    pub counts: Vec<u32>,
}

impl RouteSeries {
    /// Fraction of pairs with **no alternate route at all** (count <= 1:
    /// just the single default, the paper's "(5%, 1) point").
    pub fn no_alternates_pct(&self) -> f64 {
        let n = self.counts.len().max(1) as f64;
        100.0 * self.counts.iter().filter(|&&c| c <= 1).count() as f64 / n
    }

    /// The p-th percentile count (p in 0..=100).
    pub fn percentile(&self, p: usize) -> u32 {
        if self.counts.is_empty() {
            return 0;
        }
        let idx = (p * (self.counts.len() - 1)) / 100;
        self.counts[idx]
    }
}

/// The full Figure 5.2/5.3 result for one dataset: six series
/// (2 scopes x 3 policies).
#[derive(Serialize, Clone, Debug)]
pub struct RoutesResult {
    pub dataset: String,
    pub series: Vec<RouteSeries>,
}

/// Run the experiment for one dataset.
pub fn fig5_2(ds: &Dataset, cfg: &EvalConfig) -> RoutesResult {
    let dests = driver::sample_dests(&ds.topo, cfg.dest_samples, cfg.seed ^ 0x52);
    let strategies = [TargetStrategy::OneHop, TargetStrategy::OnPath];
    // counts[strategy][policy] accumulated across pairs.
    let per_dest = driver::par_over_dests(&ds.topo, &dests, cfg.threads, |d, st| {
        let mut counts: Vec<Vec<u32>> = vec![Vec::new(); 6];
        for src in driver::sample_srcs(&ds.topo, d, cfg.src_samples, cfg.seed ^ 0x52a) {
            if st.path(src).is_none() {
                continue;
            }
            for (si, &strat) in strategies.iter().enumerate() {
                for (pi, &policy) in ExportPolicy::ALL.iter().enumerate() {
                    let c = count_available_routes(st, src, policy, strat);
                    counts[si * 3 + pi].push(c as u32);
                }
            }
        }
        counts
    });
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); 6];
    for dest_counts in per_dest {
        for (i, c) in dest_counts.into_iter().enumerate() {
            merged[i].extend(c);
        }
    }
    let series = merged
        .into_iter()
        .enumerate()
        .map(|(i, mut counts)| {
            counts.sort_unstable();
            RouteSeries {
                label: format!(
                    "{} {}",
                    strategies[i / 3].label(),
                    ExportPolicy::ALL[i % 3].label()
                ),
                counts,
            }
        })
        .collect();
    RoutesResult { dataset: ds.name().to_string(), series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::DatasetPreset;

    fn result() -> RoutesResult {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
        fig5_2(&ds, &cfg)
    }

    #[test]
    fn six_series_with_consistent_sizes() {
        let r = result();
        assert_eq!(r.series.len(), 6);
        let n = r.series[0].counts.len();
        assert!(n > 100, "enough pairs sampled: {n}");
        for s in &r.series {
            assert_eq!(s.counts.len(), n);
            assert!(s.counts.windows(2).all(|w| w[0] <= w[1]), "sorted");
        }
    }

    #[test]
    fn policy_relaxation_shifts_the_cdf_right() {
        let r = result();
        // Within each scope, medians grow with policy relaxation.
        for base in [0, 3] {
            let med: Vec<u32> =
                (0..3).map(|i| r.series[base + i].percentile(50)).collect();
            assert!(med[0] <= med[1] && med[1] <= med[2], "medians {med:?}");
        }
    }

    #[test]
    fn most_pairs_have_alternates() {
        // Paper: "only 5% have no alternate paths in the worst case"
        // (1-hop strict); and most pairs see many alternates under /e.
        let r = result();
        let worst = &r.series[0]; // 1-hop /s
        assert!(
            worst.no_alternates_pct() < 35.0,
            "worst-case no-alternate fraction: {}",
            worst.no_alternates_pct()
        );
        let e_path = &r.series[4]; // path /e
        assert!(
            e_path.percentile(50) >= 3,
            "median available routes under path/e: {}",
            e_path.percentile(50)
        );
    }

    #[test]
    fn path_scope_at_least_matches_one_hop_on_median() {
        let r = result();
        // Not pointwise (different responder sets), but distributionally
        // the path scope should not collapse below 1-hop by much.
        let one_hop = r.series[2].percentile(50); // 1-hop /a
        let path = r.series[5].percentile(50); // path /a
        assert!(path * 3 >= one_hop, "path {path} vs 1-hop {one_hop}");
    }
}
