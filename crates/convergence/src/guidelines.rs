//! The convergence guidelines of Chapter 7, decomposed into three
//! orthogonal knobs of the tunnel layer.
//!
//! Reading the proofs and counter-examples operationally, what
//! distinguishes a safe configuration from an oscillating one is:
//!
//! 1. **what the responder may sell** ([`OfferRule`]) — its live selection
//!    (which can itself be a tunnel, creating dependencies), its pure BGP
//!    route, or its same-class candidate set ("strict policy");
//! 2. **what carries tunneled packets to the responder**
//!    ([`TransportRule`]) — the requester's current effective route (which
//!    can be another of its own tunnels — the Figure 7.2 oscillation), or
//!    the plain BGP route, pinned (Guideline E's fix);
//! 3. **when a tunnel may be preferred over BGP routes**
//!    ([`PreferenceGate`]) — always, or only when a per-AS strict partial
//!    order `first_downstream(r) ≺ a(r.prefix)` admits it (Guideline D's
//!    fix).

use miro_topology::NodeId;
use std::collections::HashMap;

/// What paths a responding AS offers when asked (per destination).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OfferRule {
    /// Its current *effective* selection — BGP route or its own tunnel.
    /// This couples tunnels to tunnels: the Figure 7.1 dynamics.
    Selected,
    /// Its pure BGP route only, regardless of what it itself forwards on
    /// (Guidelines B/C: "tunnels as a higher level layer").
    PureBgp,
    /// Any of its BGP candidates in the same class as its best route
    /// (the "strict policy" of section 7.3.3, used by Guidelines D/E).
    SameClassCandidates,
}

/// What carries the requester's packets to the responding AS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportRule {
    /// The requester's current effective route toward the responder —
    /// including its own tunnels. A tunnel becomes invalid the moment that
    /// route changes (the dissertation's "D finds out the tunnel D(BA) is
    /// no longer available since the BGP route DB has been replaced with
    /// D(CB)").
    Effective,
    /// The plain BGP route, pinned at establishment: the requester keeps
    /// using it for tunnel transport even if it prefers something else for
    /// ordinary traffic. This is Guideline E's "avoid using tunnels inside
    /// the same AS to reach the first downstream AS".
    PinnedBgp,
}

/// When an established tunnel may be *preferred* over BGP routes.
#[derive(Clone, Debug)]
pub enum PreferenceGate {
    /// Always (the counter-example configurations).
    Always,
    /// Guideline D: node `x` prefers a tunnel with first downstream `R`
    /// for prefix `p` only if `R ≺_x a(p)` in `x`'s strict partial order,
    /// here given as a rank map (lower rank ≺ higher rank; missing pairs
    /// are incomparable and the gate refuses).
    PartialOrder(HashMap<NodeId, HashMap<NodeId, u32>>),
}

impl PreferenceGate {
    /// Does the gate admit node `x` preferring a tunnel via `responder`
    /// for destination `dest` over its BGP routes?
    pub fn admits(&self, x: NodeId, responder: NodeId, dest: NodeId) -> bool {
        match self {
            PreferenceGate::Always => true,
            PreferenceGate::PartialOrder(orders) => {
                let Some(rank) = orders.get(&x) else { return false };
                match (rank.get(&responder), rank.get(&dest)) {
                    (Some(r), Some(d)) => r < d,
                    _ => false,
                }
            }
        }
    }
}

/// A complete tunnel-layer policy configuration.
#[derive(Clone, Debug)]
pub struct GuidelineConfig {
    pub offer: OfferRule,
    pub transport: TransportRule,
    pub gate: PreferenceGate,
    /// Guideline C: established tunnels may be advertised as BGP
    /// candidates to leaf neighbors.
    pub advertise_to_leaves: bool,
}

/// Named guideline presets.
///
/// ```
/// use miro_convergence::{Guideline, TunnelSim};
/// use miro_convergence::gadgets::fig7_1;
///
/// // The Figure 7.1 gadget oscillates unrestricted, converges under B:
/// let (topo, _, desires) = fig7_1();
/// let mut wild = TunnelSim::new(&topo, Guideline::Unrestricted.config(), desires.clone());
/// assert!(!wild.run(1, 200).converged());
/// let mut safe = TunnelSim::new(&topo, Guideline::B.config(), desires);
/// assert!(safe.run(1, 200).converged());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Guideline {
    /// No restriction — the counter-example configuration. May diverge.
    Unrestricted,
    /// Tunnels over pure BGP only, never re-advertised (Theorem 2).
    B,
    /// Guideline B plus advertisement to leaf nodes (Theorem 3).
    C,
    /// Strict policy + per-AS partial order (Lemma 8). The order must be
    /// supplied via [`Guideline::config_with_order`].
    D,
    /// Strict policy + pinned-BGP transport (Lemma 10).
    E,
}

impl Guideline {
    /// The preset configuration (Guideline D needs an order; this variant
    /// gives it an empty one, which admits no tunnel preference at all —
    /// trivially safe but useless; prefer `config_with_order`).
    pub fn config(self) -> GuidelineConfig {
        match self {
            Guideline::Unrestricted => GuidelineConfig {
                offer: OfferRule::Selected,
                transport: TransportRule::Effective,
                gate: PreferenceGate::Always,
                advertise_to_leaves: false,
            },
            Guideline::B => GuidelineConfig {
                offer: OfferRule::PureBgp,
                transport: TransportRule::PinnedBgp,
                gate: PreferenceGate::Always,
                advertise_to_leaves: false,
            },
            Guideline::C => GuidelineConfig {
                offer: OfferRule::PureBgp,
                transport: TransportRule::PinnedBgp,
                gate: PreferenceGate::Always,
                advertise_to_leaves: true,
            },
            Guideline::D => GuidelineConfig {
                offer: OfferRule::SameClassCandidates,
                transport: TransportRule::Effective,
                gate: PreferenceGate::PartialOrder(HashMap::new()),
                advertise_to_leaves: false,
            },
            Guideline::E => GuidelineConfig {
                offer: OfferRule::SameClassCandidates,
                transport: TransportRule::PinnedBgp,
                gate: PreferenceGate::Always,
                advertise_to_leaves: false,
            },
        }
    }

    /// Guideline D with an explicit per-node strict order: for each node,
    /// the listed ASes are ranked by list position (earlier ≺ later).
    pub fn config_with_order(orders: HashMap<NodeId, Vec<NodeId>>) -> GuidelineConfig {
        let ranked = orders
            .into_iter()
            .map(|(x, list)| {
                let rank = list
                    .into_iter()
                    .enumerate()
                    .map(|(i, n)| (n, i as u32))
                    .collect::<HashMap<_, _>>();
                (x, rank)
            })
            .collect();
        GuidelineConfig {
            gate: PreferenceGate::PartialOrder(ranked),
            ..Guideline::D.config()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_gate_admits() {
        assert!(PreferenceGate::Always.admits(1, 2, 3));
    }

    #[test]
    fn partial_order_gate() {
        let mut orders = HashMap::new();
        orders.insert(0u32, vec![1u32, 2, 3]);
        let cfg = Guideline::config_with_order(orders);
        let gate = &cfg.gate;
        assert!(gate.admits(0, 1, 3), "1 ≺ 3");
        assert!(!gate.admits(0, 3, 1), "3 ⊀ 1");
        assert!(!gate.admits(0, 1, 9), "unranked dest is incomparable");
        assert!(!gate.admits(5, 1, 3), "node without an order admits nothing");
    }

    #[test]
    fn preset_shapes() {
        assert_eq!(Guideline::B.config().offer, OfferRule::PureBgp);
        assert_eq!(Guideline::B.config().transport, TransportRule::PinnedBgp);
        assert!(Guideline::C.config().advertise_to_leaves);
        assert_eq!(Guideline::E.config().offer, OfferRule::SameClassCandidates);
        assert_eq!(Guideline::E.config().transport, TransportRule::PinnedBgp);
        assert_eq!(
            Guideline::Unrestricted.config().transport,
            TransportRule::Effective
        );
    }
}
