//! Convergence framework for MIRO (Chapter 7).
//!
//! MIRO layers negotiated tunnels over BGP; with more routes and richer
//! policies, the Gao-Rexford convergence argument must be re-examined. The
//! dissertation exhibits two counter-examples (Figures 7.1 and 7.2) where
//! unrestricted tunnel policies oscillate forever, then proves four
//! guidelines safe when paired with Guideline A:
//!
//! * **Guideline B** (section 7.3.1) - tunnels ride only pure BGP routes and
//!   are never re-advertised: a strictly higher layer.
//! * **Guideline C** (section 7.3.2) - tunnels may additionally be
//!   advertised as BGP routes, but only to *leaf* ASes (which never
//!   re-export anything).
//! * **Guideline D** (section 7.3.3) - strict same-class export, plus a
//!   per-AS strict partial order gating which tunnels may be preferred
//!   over BGP routes (the Banker's-algorithm-style cycle avoidance of
//!   section 7.4).
//! * **Guideline E** (section 7.3.3) - strict same-class export, plus:
//!   never build a tunnel whose transport to the first downstream AS is
//!   itself one of your own tunnels (in practice: pin tunnel transport to
//!   the plain BGP route).
//!
//! [`model`] is an executable version of the section 7.1 abstract model:
//! per-node (BGP route, tunnel set) state, activation semantics, random
//! fair activation sequences, quiescence and oscillation detection.
//! [`guidelines`] encodes each guideline as a combination of offer rule,
//! transport rule, and preference gate. [`gadgets`] reconstructs the two
//! counter-examples so the paper's divergence claims are reproducible
//! tests and the `fig7-1` / `fig7-2` experiments of `miro-eval`.

pub mod gadgets;
pub mod guidelines;
pub mod model;

pub use guidelines::{Guideline, GuidelineConfig, OfferRule, PreferenceGate, TransportRule};
pub use model::{Desire, SimOutcome, TunnelSim};
