//! The Chapter 7 counter-example gadgets, reconstructed.
//!
//! * [`fig7_1`] — "An Example where MIRO Does Not Converge" (Figure 7.1):
//!   ASes A, B, C are customers of provider D and peer with each other.
//!   BGP converges (each uses its direct provider route to D, because
//!   peers do not export provider routes), but if each AS establishes a
//!   tunnel through its clockwise peer to D and prefers it over its BGP
//!   route, the availability of each tunnel depends on the *selection* of
//!   the next AS — Griffin's BAD GADGET dynamics — and no stable state
//!   exists.
//!
//! * [`fig7_2`] — "An Example where MIRO Does Not Converge under Strict
//!   Policy" (Figure 7.2): D is a customer of A, B, C, which peer in a
//!   cycle and export everything to D. D prefers tunnel D(BA) over DA,
//!   D(CB) over DB, and D(AC) over DC; each tunnel rides D's route to its
//!   first downstream AS, so establishing one invalidates another, around
//!   and around. Strict same-class export alone does not help; Guideline
//!   D's partial order or Guideline E's pinned-BGP transport does.

use crate::guidelines::{Guideline, GuidelineConfig};
use crate::model::{Desire, TunnelSim};
use miro_topology::{AsId, NodeId, Topology, TopologyBuilder};
use std::collections::HashMap;

/// The Figure 7.1 topology and the three tunnel desires. Returns the
/// topology, node ids `[a, b, c, d]`, and the desires (A via B, B via C,
/// C via A — all toward D).
pub fn fig7_1() -> (Topology, [NodeId; 4], Vec<Desire>) {
    let mut bld = TopologyBuilder::new();
    let (ia, ib, ic, id) = (AsId(1), AsId(2), AsId(3), AsId(4));
    for x in [ia, ib, ic, id] {
        bld.add_as(x);
    }
    bld.provider_customer(id, ia);
    bld.provider_customer(id, ib);
    bld.provider_customer(id, ic);
    bld.peering(ia, ib);
    bld.peering(ib, ic);
    bld.peering(ic, ia);
    let t = bld.build_checked(true).expect("fig 7.1 topology is valid");
    let a = t.node(ia).unwrap();
    let b = t.node(ib).unwrap();
    let c = t.node(ic).unwrap();
    let d = t.node(id).unwrap();
    // Each AS wants to reach D through its clockwise peer's *selected*
    // route (the direct provider link).
    let desires = vec![
        Desire { requester: a, responder: b, dest: d, wanted: vec![d] },
        Desire { requester: b, responder: c, dest: d, wanted: vec![d] },
        Desire { requester: c, responder: a, dest: d, wanted: vec![d] },
    ];
    (t, [a, b, c, d], desires)
}

/// The Figure 7.2 topology and D's three tunnel desires. Returns the
/// topology, node ids `[a, b, c, d]`, and the desires (D(BA), D(CB),
/// D(AC) in that order).
pub fn fig7_2() -> (Topology, [NodeId; 4], Vec<Desire>) {
    let mut bld = TopologyBuilder::new();
    let (ia, ib, ic, id) = (AsId(1), AsId(2), AsId(3), AsId(4));
    for x in [ia, ib, ic, id] {
        bld.add_as(x);
    }
    // D is a customer of all three.
    bld.provider_customer(ia, id);
    bld.provider_customer(ib, id);
    bld.provider_customer(ic, id);
    bld.peering(ia, ib);
    bld.peering(ib, ic);
    bld.peering(ic, ia);
    let t = bld.build_checked(true).expect("fig 7.2 topology is valid");
    let a = t.node(ia).unwrap();
    let b = t.node(ib).unwrap();
    let c = t.node(ic).unwrap();
    let d = t.node(id).unwrap();
    let desires = vec![
        // D(BA): reach A via B on B's peer route BA.
        Desire { requester: d, responder: b, dest: a, wanted: vec![a] },
        // D(CB): reach B via C on CB.
        Desire { requester: d, responder: c, dest: b, wanted: vec![b] },
        // D(AC): reach C via A on AC.
        Desire { requester: d, responder: a, dest: c, wanted: vec![c] },
    ];
    (t, [a, b, c, d], desires)
}

/// A Guideline-D order for the Figure 7.2 gadget that admits D(BA) and
/// D(CB) but forbids D(AC) (B ≺ A requires... we rank C ≺ B ≺ A at D, so
/// responder B ≺ dest A and responder C ≺ dest B hold while responder A ≺
/// dest C fails), breaking the dependency cycle.
pub fn fig7_2_guideline_d_config(nodes: [NodeId; 4]) -> GuidelineConfig {
    let [a, b, c, d] = nodes;
    let mut orders = HashMap::new();
    orders.insert(d, vec![c, b, a]);
    Guideline::config_with_order(orders)
}

/// Convenience: a ready-to-run simulator for either gadget under a config.
pub fn sim_for<'t>(
    topo: &'t Topology,
    desires: &[Desire],
    config: GuidelineConfig,
) -> TunnelSim<'t> {
    TunnelSim::new(topo, config, desires.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidelines::Guideline;
    use miro_bgp::solver::RoutingState;

    #[test]
    fn fig7_1_bgp_base_is_direct_provider_routes() {
        let (t, [a, b, c, d], _) = fig7_1();
        let st = RoutingState::solve(&t, d);
        // Peers do not export provider routes, so each customer has only
        // its direct route.
        for x in [a, b, c] {
            assert_eq!(st.path(x), Some(vec![d]));
            assert_eq!(st.candidates(x).len(), 1);
        }
    }

    /// The paper's divergence claim: unrestricted tunnel policy on
    /// Figure 7.1 never converges (BAD GADGET dynamics), under any fair
    /// schedule.
    #[test]
    fn gadget_fig7_1_oscillates_unrestricted() {
        let (t, _, desires) = fig7_1();
        for seed in 0..8u64 {
            let mut sim = sim_for(&t, &desires, Guideline::Unrestricted.config());
            let out = sim.run(seed, 300);
            assert!(!out.converged(), "seed {seed}: fig 7.1 must oscillate");
            // Sustained flapping, not a one-off transient.
            assert!(sim.teardowns.iter().sum::<usize>() > 50);
        }
    }

    /// Theorem 2: Guideline B makes the same configuration safe. Under B
    /// each tunnel rides the pure BGP route (stable) and offers are pure
    /// BGP routes (stable), so all three tunnels coexist.
    #[test]
    fn gadget_fig7_1_converges_under_guideline_b() {
        let (t, _, desires) = fig7_1();
        for seed in 0..8u64 {
            let mut sim = sim_for(&t, &desires, Guideline::B.config());
            assert!(sim.run(seed, 300).converged());
            assert_eq!(sim.established_count(), 3);
        }
    }

    /// Guideline C is Guideline B plus leaf advertisement; the dynamics
    /// are identical (leaves re-export nothing).
    #[test]
    fn gadget_fig7_1_converges_under_guideline_c() {
        let (t, _, desires) = fig7_1();
        let mut sim = sim_for(&t, &desires, Guideline::C.config());
        assert!(sim.run(3, 300).converged());
        assert_eq!(sim.established_count(), 3);
    }

    #[test]
    fn fig7_2_bgp_base_has_peer_alternates() {
        let (t, [a, b, c, d], _) = fig7_2();
        let st = RoutingState::solve(&t, a);
        // D's candidates for prefix A: direct DA, plus DBA and DCA via its
        // other providers (providers export their peer routes to
        // customers? B's best route to A is the direct peer link BA, which
        // it exports to customer D).
        let cands = st.candidates(d);
        assert!(cands.iter().any(|r| r.path == vec![a]));
        assert!(cands.iter().any(|r| r.path == vec![b, a]));
        assert!(cands.iter().any(|r| r.path == vec![c, a]));
    }

    /// The paper's claim: strict same-class export alone does not prevent
    /// the Figure 7.2 oscillation when tunnels ride effective routes.
    #[test]
    fn gadget_fig7_2_oscillates_under_strict_effective() {
        let (t, _, desires) = fig7_2();
        // Strict offers + effective transport + always-prefer: the
        // dissertation's counter-example configuration.
        let config = GuidelineConfig {
            offer: crate::guidelines::OfferRule::SameClassCandidates,
            transport: crate::guidelines::TransportRule::Effective,
            gate: crate::guidelines::PreferenceGate::Always,
            advertise_to_leaves: false,
        };
        for seed in 0..8u64 {
            let mut sim = sim_for(&t, &desires, config.clone());
            let out = sim.run(seed, 300);
            assert!(!out.converged(), "seed {seed}: fig 7.2 must oscillate");
        }
    }

    /// Lemma 8 / Theorem 4: a per-AS strict partial order (Guideline D)
    /// breaks the cycle; the run converges with the cycle-closing tunnel
    /// D(AC) never preferred.
    #[test]
    fn gadget_fig7_2_converges_under_guideline_d() {
        let (t, nodes, desires) = fig7_2();
        let config = fig7_2_guideline_d_config(nodes);
        for seed in 0..8u64 {
            let mut sim = sim_for(&t, &desires, config.clone());
            assert!(sim.run(seed, 300).converged(), "seed {seed}");
            assert!(sim.is_established(0), "D(BA) admitted by order");
            assert!(sim.is_established(1), "D(CB) admitted by order");
            assert!(!sim.is_established(2), "D(AC) forbidden by order");
        }
    }

    /// Lemma 10: pinning tunnel transport to the plain BGP route
    /// (Guideline E) also converges — and here all three tunnels coexist,
    /// because none rides another.
    #[test]
    fn gadget_fig7_2_converges_under_guideline_e() {
        let (t, _, desires) = fig7_2();
        for seed in 0..8u64 {
            let mut sim = sim_for(&t, &desires, Guideline::E.config());
            assert!(sim.run(seed, 300).converged(), "seed {seed}");
            assert_eq!(sim.established_count(), 3);
        }
    }
}
