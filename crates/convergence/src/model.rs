//! Executable version of the Chapter 7.1 abstract model.
//!
//! The BGP layer is taken at its (unique, Guideline-A) stable state from
//! `miro-bgp`'s solver — legitimate because under every configuration we
//! model, tunnels never feed back into non-leaf BGP selection (Guideline C
//! advertises only to leaves, which re-export nothing). The *dynamic*
//! object is the tunnel layer: a set of standing [`Desire`]s ("AS x wants
//! path w via responder R to reach dest d") that each activation
//! re-evaluates against the current global state, establishing tunnels
//! that are offered and transport-consistent and tearing down ones that no
//! longer are.
//!
//! A configuration converges when a full activation round changes nothing;
//! the Figure 7.1/7.2 configurations have no fixed point and flap forever,
//! which the run reports as divergence once the round budget is exhausted.

use crate::guidelines::{GuidelineConfig, OfferRule, TransportRule};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// A standing tunnel desire: `requester` wants to reach `dest` through
/// `responder` on the responder-held path `wanted` (next hop first, dest
/// last), preferring the tunnel over its BGP routes when the preference
/// gate admits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Desire {
    pub requester: NodeId,
    pub responder: NodeId,
    pub dest: NodeId,
    /// Path as held by the responder; `wanted.last() == dest`.
    pub wanted: Vec<NodeId>,
}

/// What a tunnel's transport rode on at establishment time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Transport {
    /// The plain BGP route toward the responder.
    Bgp,
    /// Another established tunnel of the same requester (by desire index)
    /// — only possible under [`TransportRule::Effective`].
    Via(usize),
}

/// Outcome of a tunnel-layer run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOutcome {
    /// A full activation round produced no change.
    Converged { rounds: usize },
    /// The round budget ran out with tunnels still flapping.
    Diverged { rounds: usize },
}

impl SimOutcome {
    pub fn converged(&self) -> bool {
        matches!(self, SimOutcome::Converged { .. })
    }
}

/// The tunnel-layer simulator.
pub struct TunnelSim<'t> {
    topo: &'t Topology,
    config: GuidelineConfig,
    desires: Vec<Desire>,
    states: HashMap<NodeId, RoutingState<'t>>,
    established: Vec<Option<Transport>>,
    /// Establish/teardown event counts per desire (flap diagnostics).
    pub establishments: Vec<usize>,
    pub teardowns: Vec<usize>,
}

impl<'t> TunnelSim<'t> {
    /// Build the simulator; BGP stable states are solved eagerly for every
    /// destination any desire touches (tunnel target or transport prefix).
    ///
    /// # Panics
    /// If a desire has `responder == dest` (such a "tunnel" is just the
    /// BGP route) or `requester == responder`.
    pub fn new(topo: &'t Topology, config: GuidelineConfig, desires: Vec<Desire>) -> Self {
        let mut states = HashMap::new();
        for d in &desires {
            assert_ne!(d.responder, d.dest, "tunnel to the destination itself");
            assert_ne!(d.requester, d.responder, "self-negotiation");
            states
                .entry(d.dest)
                .or_insert_with(|| RoutingState::solve(topo, d.dest));
            states
                .entry(d.responder)
                .or_insert_with(|| RoutingState::solve(topo, d.responder));
        }
        let n = desires.len();
        TunnelSim {
            topo,
            config,
            desires,
            states,
            established: vec![None; n],
            establishments: vec![0; n],
            teardowns: vec![0; n],
        }
    }

    fn bgp_path(&self, x: NodeId, dest: NodeId) -> Option<Vec<NodeId>> {
        self.states[&dest].path(x)
    }

    /// The identity of `x`'s current effective route toward prefix `p`:
    /// an established tunnel for `(x, p)` if one exists (established
    /// implies gate-admitted, see `try_establish`), else the BGP route.
    fn eff(&self, x: NodeId, p: NodeId) -> Option<Transport> {
        for (i, d) in self.desires.iter().enumerate() {
            if d.requester == x && d.dest == p && self.established[i].is_some() {
                return Some(Transport::Via(i));
            }
        }
        self.bgp_path(x, p).map(|_| Transport::Bgp)
    }

    /// Is desire `i`'s wanted path currently on offer from its responder?
    fn offered(&self, i: usize) -> bool {
        let d = &self.desires[i];
        match self.config.offer {
            OfferRule::Selected => {
                // The responder only sells what it currently forwards on:
                // its BGP route, and only while it has not itself moved to
                // a tunnel for this prefix.
                matches!(self.eff(d.responder, d.dest), Some(Transport::Bgp))
                    && self.bgp_path(d.responder, d.dest).as_deref()
                        == Some(d.wanted.as_slice())
            }
            OfferRule::PureBgp => {
                self.bgp_path(d.responder, d.dest).as_deref() == Some(d.wanted.as_slice())
            }
            OfferRule::SameClassCandidates => {
                let st = &self.states[&d.dest];
                let Some(best) = st.best(d.responder) else { return false };
                st.candidates(d.responder)
                    .iter()
                    .any(|c| c.class == best.class && c.path == d.wanted)
            }
        }
    }

    /// Current transport identity for desire `i`, if transport exists.
    fn transport_now(&self, i: usize) -> Option<Transport> {
        let d = &self.desires[i];
        match self.config.transport {
            TransportRule::PinnedBgp => self.bgp_path(d.requester, d.responder).map(|_| Transport::Bgp),
            TransportRule::Effective => self.eff(d.requester, d.responder),
        }
    }

    /// Does the transport chain starting at `first` (for desire `start`)
    /// ground out in a plain BGP route? A chain that revisits a desire —
    /// including `start` itself — is an infinite-encapsulation forwarding
    /// loop and is never usable. (Guideline D's partial order exists
    /// precisely to rule these out statically; under the unrestricted
    /// configuration they form and collapse dynamically, which is the
    /// Figure 7.2 oscillation.)
    fn grounded(&self, start: usize, first: Transport) -> bool {
        let mut at = first;
        let mut visited = vec![start];
        loop {
            match at {
                Transport::Bgp => return true,
                Transport::Via(j) => {
                    if visited.contains(&j) {
                        return false;
                    }
                    visited.push(j);
                    match self.established[j] {
                        Some(next) => at = next,
                        // Stale link in the chain: not usable.
                        None => return false,
                    }
                }
            }
        }
    }

    /// Activate node `x` (re-evaluate all its desires, in index order —
    /// the "prefix activation order inside an AS" of the proofs). Returns
    /// whether anything changed.
    pub fn activate(&mut self, x: NodeId) -> bool {
        let mut changed = false;
        for i in 0..self.desires.len() {
            if self.desires[i].requester != x {
                continue;
            }
            // 1. Validity of an established tunnel: still offered, same
            //    transport identity, and the transport chain still grounds
            //    out in a BGP route.
            if let Some(snapshot) = self.established[i] {
                let valid = self.offered(i)
                    && self.transport_now(i) == Some(snapshot)
                    && self.grounded(i, snapshot);
                if !valid {
                    self.established[i] = None;
                    self.teardowns[i] += 1;
                    changed = true;
                }
            }
            // 2. (Re-)establishment.
            if self.established[i].is_none() {
                let d = &self.desires[i];
                let admitted =
                    self.config.gate.admits(d.requester, d.responder, d.dest);
                if admitted && self.offered(i) {
                    if let Some(t) = self.transport_now(i) {
                        if self.grounded(i, t) {
                            self.established[i] = Some(t);
                            self.establishments[i] += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        changed
    }

    /// Run full activation rounds (every node once per round, in seeded
    /// random order) until a round changes nothing or the budget runs out.
    pub fn run(&mut self, seed: u64, max_rounds: usize) -> SimOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = self.topo.nodes().collect();
        for round in 0..max_rounds {
            nodes.shuffle(&mut rng);
            let mut changed = false;
            for &x in &nodes {
                changed |= self.activate(x);
            }
            if !changed {
                return SimOutcome::Converged { rounds: round + 1 };
            }
        }
        SimOutcome::Diverged { rounds: max_rounds }
    }

    /// Is desire `i` currently established?
    pub fn is_established(&self, i: usize) -> bool {
        self.established[i].is_some()
    }

    /// Number of currently established tunnels.
    pub fn established_count(&self) -> usize {
        self.established.iter().filter(|e| e.is_some()).count()
    }

    /// Guideline C: the extra BGP candidates that established tunnels
    /// would contribute to *leaf* neighbors of each requester — (leaf,
    /// dest, path-from-leaf) triples. Leaves re-export nothing (all their
    /// neighbors are providers and provider routes are not exportable
    /// upward), so these advertisements cannot feed back into the tunnel
    /// layer; this method materializes them for inspection and tests.
    pub fn leaf_advertisements(&self) -> Vec<(NodeId, NodeId, Vec<NodeId>)> {
        if !self.config.advertise_to_leaves {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, d) in self.desires.iter().enumerate() {
            if self.established[i].is_none() {
                continue;
            }
            for &(leaf, _) in self.topo.neighbors(d.requester) {
                if !self.topo.is_leaf(leaf) {
                    continue;
                }
                // Path as the leaf would hold it: the requester, then the
                // requester's BGP transport to the responder (whose last
                // hop *is* the responder), then the responder-held wanted
                // path (which starts at the responder's next hop).
                let Some(transport) = self.bgp_path(d.requester, d.responder) else {
                    continue;
                };
                let mut path = Vec::with_capacity(1 + transport.len() + d.wanted.len());
                path.push(d.requester);
                path.extend(transport);
                path.extend(d.wanted.iter().copied());
                out.push((leaf, d.dest, path));
            }
        }
        out
    }

    /// The desires driving this simulation.
    pub fn desires(&self) -> &[Desire] {
        &self.desires
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidelines::Guideline;
    use miro_topology::gen::figure_1_1;

    /// A single benign desire (the Figure 3.1 scenario: A buys BCF from B)
    /// converges instantly under every guideline.
    #[test]
    fn single_desire_converges_under_all_guidelines() {
        let (t, [a, b, c, _d, _e, f]) = figure_1_1();
        let desire = Desire { requester: a, responder: b, dest: f, wanted: vec![c, f] };
        for g in [Guideline::Unrestricted, Guideline::B, Guideline::E] {
            let mut sim = TunnelSim::new(&t, g.config(), vec![desire.clone()]);
            let out = sim.run(1, 100);
            assert!(out.converged(), "guideline {g:?} must converge");
        }
        // Under B (pure BGP offers) the wanted path BCF is NOT B's BGP
        // route (BEF is), so the tunnel is never established — but the
        // system is still stable.
        let mut sim = TunnelSim::new(&t, Guideline::B.config(), vec![desire.clone()]);
        sim.run(1, 100);
        assert!(!sim.is_established(0));
        // Under E (same-class candidates) BCF is a peer route while B's
        // best is a customer route: also not offered. Strict is strict.
        let mut sim = TunnelSim::new(&t, Guideline::E.config(), vec![desire]);
        sim.run(1, 100);
        assert!(!sim.is_established(0));
    }

    /// Under the unrestricted rules with `Selected` offers, the same
    /// desire *is* establishable... only if it matches B's selection.
    /// B selects BEF, so a desire for BEF establishes and stays.
    #[test]
    fn selected_offer_establishes_the_selected_path() {
        let (t, [a, b, _c, _d, e, f]) = figure_1_1();
        let desire = Desire { requester: a, responder: b, dest: f, wanted: vec![e, f] };
        let mut sim = TunnelSim::new(&t, Guideline::Unrestricted.config(), vec![desire]);
        assert!(sim.run(2, 100).converged());
        assert!(sim.is_established(0));
        assert_eq!(sim.established_count(), 1);
    }

    #[test]
    #[should_panic(expected = "tunnel to the destination itself")]
    fn desire_to_responder_prefix_rejected() {
        let (t, [a, b, ..]) = figure_1_1();
        let _ = TunnelSim::new(
            &t,
            Guideline::B.config(),
            vec![Desire { requester: a, responder: b, dest: b, wanted: vec![] }],
        );
    }
}
