//! Property-based tests for the convergence framework: the safety
//! guidelines converge on arbitrary small hierarchies with arbitrary
//! desires, and the preference gate algebra holds.

use miro_bgp::solver::RoutingState;
use miro_convergence::{Desire, Guideline, PreferenceGate, TunnelSim};
use miro_topology::{AsId, NodeId, Topology, TopologyBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random small hierarchy: 12 ASes in three tiers with a few peer links.
fn arb_hierarchy() -> impl Strategy<Value = Topology> {
    (
        proptest::collection::vec((0u32..4, 4u32..12), 8..20), // provider links
        proptest::collection::vec((0u32..6, 0u32..6), 0..4),   // peer links
    )
        .prop_map(|(pc, peers)| {
            let mut b = TopologyBuilder::new();
            for n in 0..12u32 {
                b.intern_as(AsId(500 + n));
            }
            let mut seen = std::collections::HashSet::new();
            for (p, c) in pc {
                if p < c && seen.insert((p, c)) {
                    b.provider_customer(AsId(500 + p), AsId(500 + c));
                }
            }
            for (x, y) in peers {
                let key = (x.min(y), x.max(y));
                if x != y && seen.insert(key) {
                    b.peering(AsId(500 + x), AsId(500 + y));
                }
            }
            b.build().expect("lower-index providers give a DAG")
        })
}

/// Desires derived from real candidate sets (what negotiations produce).
fn desires_for(topo: &Topology, picks: &[(u8, u8, u8)]) -> Vec<Desire> {
    let n = topo.num_nodes() as u32;
    let mut out = Vec::new();
    for &(req, dst, which) in picks {
        let requester = (req as u32) % n;
        let dest = (dst as u32) % n;
        if requester == dest {
            continue;
        }
        let st = RoutingState::solve(topo, dest);
        let Some(path) = st.path(requester) else { continue };
        if path.len() < 2 {
            continue;
        }
        let responder = path[(which as usize) % (path.len() - 1)];
        if responder == dest || responder == requester {
            continue;
        }
        let cands = st.candidates(responder);
        if cands.is_empty() {
            continue;
        }
        let wanted = cands[(which as usize) % cands.len()].path.clone();
        out.push(Desire { requester, responder, dest, wanted });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2/3 randomized: Guidelines B and C converge on arbitrary
    /// hierarchies, desires, and schedules.
    #[test]
    fn guidelines_b_and_c_always_converge(
        topo in arb_hierarchy(),
        picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..10),
        seed in any::<u64>(),
    ) {
        let desires = desires_for(&topo, &picks);
        for g in [Guideline::B, Guideline::C] {
            let mut sim = TunnelSim::new(&topo, g.config(), desires.clone());
            prop_assert!(sim.run(seed, 400).converged(), "{g:?} diverged");
        }
    }

    /// Theorem 4 randomized: Guideline E converges, and its stable state
    /// is unique across schedules.
    #[test]
    fn guideline_e_converges_uniquely(
        topo in arb_hierarchy(),
        picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..10),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let desires = desires_for(&topo, &picks);
        let mut a = TunnelSim::new(&topo, Guideline::E.config(), desires.clone());
        let mut b = TunnelSim::new(&topo, Guideline::E.config(), desires.clone());
        prop_assert!(a.run(s1, 400).converged());
        prop_assert!(b.run(s2, 400).converged());
        for i in 0..desires.len() {
            prop_assert_eq!(a.is_established(i), b.is_established(i));
        }
    }

    /// Lemma 8 randomized: Guideline D with an arbitrary per-requester
    /// total order converges.
    #[test]
    fn guideline_d_converges_with_any_total_order(
        topo in arb_hierarchy(),
        picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..10),
        perm_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let desires = desires_for(&topo, &picks);
        let mut orders: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for d in &desires {
            orders.entry(d.requester).or_insert_with(|| {
                let mut v: Vec<NodeId> = topo.nodes().collect();
                // Cheap deterministic permutation from the seed.
                let k = (perm_seed % v.len().max(1) as u64) as usize;
                v.rotate_left(k);
                v
            });
        }
        let config = Guideline::config_with_order(orders);
        let mut sim = TunnelSim::new(&topo, config, desires);
        prop_assert!(sim.run(seed, 400).converged());
    }

    /// The partial-order gate is irreflexive and antisymmetric, as a
    /// strict partial order must be.
    #[test]
    fn partial_order_gate_is_strict(order in proptest::collection::vec(0u32..20, 1..10)) {
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let mut orders = HashMap::new();
        orders.insert(0u32, dedup.clone());
        let cfg = Guideline::config_with_order(orders);
        let PreferenceGate::PartialOrder(_) = &cfg.gate else {
            return Err(TestCaseError::fail("expected partial order gate"));
        };
        for &a in &dedup {
            prop_assert!(!cfg.gate.admits(0, a, a), "irreflexive");
            for &b in &dedup {
                prop_assert!(
                    !(cfg.gate.admits(0, a, b) && cfg.gate.admits(0, b, a)),
                    "antisymmetric"
                );
            }
        }
    }

    /// Converged states never hold a cyclically-stacked tunnel set: every
    /// established tunnel's transport chain grounds out (checked
    /// indirectly — a cyclic stack would keep the run changing, so a
    /// converged unrestricted run must also be acyclic; we assert
    /// convergence implies a stable pass changes nothing).
    #[test]
    fn converged_runs_are_fixed_points(
        topo in arb_hierarchy(),
        picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..8),
        seed in any::<u64>(),
    ) {
        let desires = desires_for(&topo, &picks);
        let mut sim = TunnelSim::new(&topo, Guideline::E.config(), desires.clone());
        if sim.run(seed, 400).converged() {
            let before: Vec<bool> = (0..desires.len()).map(|i| sim.is_established(i)).collect();
            // One more full round must change nothing.
            for x in topo.nodes() {
                prop_assert!(!sim.activate(x), "converged state re-activated");
            }
            let after: Vec<bool> = (0..desires.len()).map(|i| sim.is_established(i)).collect();
            prop_assert_eq!(before, after);
        }
    }
}
