//! The replay engine: drive a churn trace through the control plane.
//!
//! Two replay targets share a trace:
//!
//! * [`replay_delta`] — the offline solver's persistent delta path
//!   ([`miro_bgp::solver::multi::MultiFailState`]), in serial mode (one
//!   `apply` per event, what `with_failed_link` callers effectively do
//!   today) or batched mode (one `apply` per co-temporal batch, one cone
//!   recomputation per affected subtree). Both modes end with the exact
//!   same routing tables — the equivalence contract proptested in
//!   `miro_bgp::solver::multi` — so their [`DeltaReplayReport::table_fnv`]
//!   must match and the events/sec ratio is pure batching win. A tunnel
//!   layer rides along: MIRO tunnels established over the pre-churn paths
//!   are swept against the failed-link set after every batch
//!   ([`TunnelManager::sweep_failed_links`]) and re-negotiated when the
//!   owner still has a route, yielding the teardown/re-negotiation rates
//!   the evaluation reports.
//! * [`replay_sim`] — the message-level simulator ([`miro_bgp::sim`]),
//!   which also honors origin announce/withdraw events for its
//!   destination. Its per-batch activation counts are the *convergence
//!   lag* distribution: how many speaker activations the network needs to
//!   quiesce after each batch lands.
//!
//! Origin events are skipped (and counted) on the delta path — the
//! solver's table is per-destination and a withdrawn origin is simply an
//! unreachable one; the simulator models them faithfully.

use crate::trace::{EventKind, Trace, TraceError};
use miro_bgp::sim::{GaoRexford, Outcome, Sim};
use miro_bgp::solver::multi::{LinkEvent, MultiFailState};
use miro_bgp::solver::{DeltaScratch, SolveScratch};
use miro_core::tunnel::TunnelManager;
use miro_topology::{AsId, NodeId, Topology};
use std::time::Instant;

/// How the delta replay groups events into `apply` calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchMode {
    /// One event per `apply` — the one-at-a-time baseline.
    Serial,
    /// One `apply` per co-temporal batch — coalesced cone recomputation.
    Batched,
}

impl BatchMode {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BatchMode::Serial => "serial",
            BatchMode::Batched => "batched",
        }
    }
}

/// Replay failures.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace itself was unusable.
    Trace(TraceError),
    /// The embedded topology has no nodes to route between.
    EmptyTopology,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "{e}"),
            ReplayError::EmptyTopology => write!(f, "trace topology has no nodes"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

/// Nearest-rank percentile of an (unsorted) sample; 0 for an empty one.
pub fn percentile(samples: &[u64], p: u32) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = (v.len() as u64 * p as u64).div_ceil(100).clamp(1, v.len() as u64);
    v[rank as usize - 1]
}

/// What [`replay_delta`] measured.
#[derive(Clone, Debug)]
pub struct DeltaReplayReport {
    /// Serial or batched.
    pub mode: BatchMode,
    /// Tracked destination ASNs (highest-degree nodes of the topology).
    pub dests: Vec<u32>,
    /// Total events in the trace.
    pub events: usize,
    /// Link events applied to each engine.
    pub link_events: usize,
    /// Origin announce/withdraw events (counted, not applied here).
    pub origin_events: usize,
    /// Events naming ASes absent from the topology.
    pub unknown_events: usize,
    /// Co-temporal batches replayed.
    pub batches: usize,
    /// Wall-clock nanoseconds spent inside the apply loop.
    pub elapsed_ns: u64,
    /// `events * dests / elapsed` — per-engine event application rate.
    pub events_per_sec: f64,
    /// Combined FNV-1a over all engines' final tables. Serial and batched
    /// replays of the same trace must agree on this.
    pub table_fnv: u64,
    /// Net link failures applied (summed over engines).
    pub downs: usize,
    /// Net link restorations applied.
    pub ups: usize,
    /// Events that netted out (flap pairs, redundant toggles).
    pub cancelled: usize,
    /// Degenerate events the engine ignored.
    pub ignored: usize,
    /// Table entries rewritten across the whole replay.
    pub recomputed: usize,
    /// Batches that forced a full masked re-solve (restoration shifted an
    /// endpoint's selection).
    pub full_resolves: usize,
    /// Per-batch recomputed-entry counts: p50.
    pub recompute_p50: u64,
    /// Per-batch recomputed-entry counts: p95.
    pub recompute_p95: u64,
    /// Per-batch recomputed-entry counts: max.
    pub recompute_max: u64,
    /// MIRO tunnels torn down because churn cut their negotiated path.
    pub tunnel_teardowns: usize,
    /// Torn-down tunnels successfully re-negotiated over a fresh path.
    pub tunnel_renegotiations: usize,
}

/// Tunnel fleet riding on one delta engine: each (owner, manager) pair
/// holds the tunnels that owner bought toward the engine's destination.
struct TunnelFleet {
    fleet: Vec<(NodeId, TunnelManager)>,
    teardowns: usize,
    renegotiations: usize,
}

/// Tunnels per destination engine. Enough owners to make teardown rates
/// statistically meaningful, few enough to stay out of the timed loop's
/// way.
const TUNNEL_OWNERS: usize = 8;

impl TunnelFleet {
    /// Sell a tunnel to the first `TUNNEL_OWNERS` routed non-destination
    /// nodes, along their current best path.
    fn establish(engine: &MultiFailState<'_>) -> TunnelFleet {
        let mut fleet = Vec::with_capacity(TUNNEL_OWNERS);
        for x in engine.topology().nodes() {
            if fleet.len() >= TUNNEL_OWNERS {
                break;
            }
            if x == engine.dest() {
                continue;
            }
            let Some(path) = engine.path(x) else { continue };
            let mut mgr = TunnelManager::new();
            mgr.establish(engine.dest(), engine.dest(), path, 100, 0);
            fleet.push((x, mgr));
        }
        TunnelFleet { fleet, teardowns: 0, renegotiations: 0 }
    }

    /// After a batch: sweep every owner's tunnels against the failed-link
    /// set and against route changes, then re-negotiate where the owner
    /// still has a route.
    fn sweep(&mut self, engine: &MultiFailState<'_>, now: u64) {
        for (owner, mgr) in &mut self.fleet {
            let cut = mgr.sweep_failed_links(*owner, |a, b| engine.is_failed(a, b));
            let current = engine.path(*owner);
            let shifted = mgr.on_route_change(engine.dest(), current.as_deref());
            self.teardowns += cut.len() + shifted.len();
            if !cut.is_empty() || !shifted.is_empty() {
                if let Some(path) = current {
                    mgr.establish(engine.dest(), engine.dest(), path, 100, now);
                    self.renegotiations += 1;
                }
            }
        }
    }
}

/// Pick the `count` highest-degree nodes (ties broken by lowest ASN) as
/// tracked destinations — the "popular prefixes" of the workload.
fn pick_dests(topo: &Topology, count: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = topo.nodes().collect();
    nodes.sort_by_key(|&x| (std::cmp::Reverse(topo.degree(x)), topo.asn(x).0));
    nodes.truncate(count.max(1));
    nodes
}

/// Replay `trace` through the solver's delta path for the `dests`
/// highest-degree destinations. See the module docs for semantics.
pub fn replay_delta(
    trace: &Trace,
    mode: BatchMode,
    dests: usize,
) -> Result<DeltaReplayReport, ReplayError> {
    let topo = trace.topology()?;
    if topo.num_nodes() == 0 {
        return Err(ReplayError::EmptyTopology);
    }
    let dest_nodes = pick_dests(&topo, dests);

    // Translate the whole trace up front so the timed loop measures the
    // engine, not ASN lookups. Per batch: the link events plus the counts
    // of origin/unknown events it carried.
    let mut link_events = 0usize;
    let mut origin_events = 0usize;
    let mut unknown_events = 0usize;
    let mut batches: Vec<Vec<LinkEvent>> = Vec::new();
    let mut times: Vec<u64> = Vec::new();
    for batch in trace.batches() {
        let mut evs = Vec::with_capacity(batch.len());
        for e in batch {
            match e.kind {
                EventKind::LinkDown(a, b) | EventKind::LinkUp(a, b) => {
                    match (topo.node(AsId(a)), topo.node(AsId(b))) {
                        (Some(x), Some(y)) => {
                            link_events += 1;
                            evs.push(match e.kind {
                                EventKind::LinkDown(..) => LinkEvent::Down(x, y),
                                _ => LinkEvent::Up(x, y),
                            });
                        }
                        _ => unknown_events += 1,
                    }
                }
                EventKind::Withdraw(_) | EventKind::Announce(_) => origin_events += 1,
            }
        }
        times.push(batch[0].at_ms);
        batches.push(evs);
    }

    let mut solve = SolveScratch::new();
    let mut engines: Vec<MultiFailState<'_>> =
        dest_nodes.iter().map(|&d| MultiFailState::solve(&topo, d, &mut solve)).collect();
    let mut fleets: Vec<TunnelFleet> = engines.iter().map(TunnelFleet::establish).collect();
    let mut scratch = DeltaScratch::new();

    let mut downs = 0usize;
    let mut ups = 0usize;
    let mut cancelled = 0usize;
    let mut ignored = 0usize;
    let mut recomputed = 0usize;
    let mut full_resolves = 0usize;
    let mut per_batch_recompute: Vec<u64> = Vec::with_capacity(batches.len());

    let start = Instant::now();
    for (bi, evs) in batches.iter().enumerate() {
        let mut batch_recompute = 0u64;
        for (engine, fleet) in engines.iter_mut().zip(&mut fleets) {
            match mode {
                BatchMode::Batched => {
                    let s = engine.apply(evs, &mut scratch);
                    downs += s.downs;
                    ups += s.ups;
                    cancelled += s.cancelled;
                    ignored += s.ignored;
                    recomputed += s.recomputed;
                    full_resolves += s.full_resolve as usize;
                    batch_recompute += s.recomputed as u64;
                }
                BatchMode::Serial => {
                    for &ev in evs {
                        let s = engine.apply(std::slice::from_ref(&ev), &mut scratch);
                        downs += s.downs;
                        ups += s.ups;
                        cancelled += s.cancelled;
                        ignored += s.ignored;
                        recomputed += s.recomputed;
                        full_resolves += s.full_resolve as usize;
                        batch_recompute += s.recomputed as u64;
                    }
                }
            }
            fleet.sweep(engine, times[bi]);
        }
        per_batch_recompute.push(batch_recompute);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let mut table_fnv = 0xcbf2_9ce4_8422_2325u64;
    for engine in &engines {
        table_fnv ^= engine.table_fnv();
        table_fnv = table_fnv.wrapping_mul(0x0000_0100_0000_01b3);
    }

    let applied = (link_events + origin_events + unknown_events) * engines.len();
    Ok(DeltaReplayReport {
        mode,
        dests: dest_nodes.iter().map(|&d| topo.asn(d).0).collect(),
        events: trace.events.len(),
        link_events,
        origin_events,
        unknown_events,
        batches: batches.len(),
        elapsed_ns,
        events_per_sec: applied as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        table_fnv,
        downs,
        ups,
        cancelled,
        ignored,
        recomputed,
        full_resolves,
        recompute_p50: percentile(&per_batch_recompute, 50),
        recompute_p95: percentile(&per_batch_recompute, 95),
        recompute_max: per_batch_recompute.iter().copied().max().unwrap_or(0),
        tunnel_teardowns: fleets.iter().map(|f| f.teardowns).sum(),
        tunnel_renegotiations: fleets.iter().map(|f| f.renegotiations).sum(),
    })
}

/// What [`replay_sim`] measured.
#[derive(Clone, Debug)]
pub struct SimReplayReport {
    /// The simulated destination's ASN.
    pub dest: u32,
    /// Total events in the trace.
    pub events: usize,
    /// Events the simulator acted on (link toggles + this destination's
    /// origin churn).
    pub applied_events: usize,
    /// Events skipped (other origins, unknown ASes, non-links).
    pub skipped_events: usize,
    /// Co-temporal batches replayed.
    pub batches: usize,
    /// Batches that reconverged within the step budget.
    pub converged_batches: usize,
    /// Batches still flapping when the budget ran out.
    pub diverged_batches: usize,
    /// Activations to quiesce after a batch: p50.
    pub lag_p50: u64,
    /// Activations to quiesce after a batch: p95.
    pub lag_p95: u64,
    /// Activations to quiesce after a batch: max.
    pub lag_max: u64,
    /// Wall-clock nanoseconds in the replay loop.
    pub elapsed_ns: u64,
    /// Trace events per second of replay.
    pub events_per_sec: f64,
    /// Nodes with a route when the dust settled.
    pub reachable: usize,
}

/// Replay `trace` through the message-level simulator for the topology's
/// highest-degree destination. `seed` drives the activation scheduler;
/// `step_budget` bounds activations per batch.
pub fn replay_sim(
    trace: &Trace,
    seed: u64,
    step_budget: usize,
) -> Result<SimReplayReport, ReplayError> {
    let topo = trace.topology()?;
    if topo.num_nodes() == 0 {
        return Err(ReplayError::EmptyTopology);
    }
    let dest = pick_dests(&topo, 1)[0];
    let dest_asn = topo.asn(dest).0;

    let mut sim = Sim::new(&topo, GaoRexford, dest);
    // Cold-start convergence is setup, not churn.
    sim.run(seed, step_budget.max(topo.num_nodes() * 64));

    let mut applied = 0usize;
    let mut skipped = 0usize;
    let mut lags: Vec<u64> = Vec::new();
    let mut converged = 0usize;
    let mut diverged = 0usize;
    let mut batches = 0usize;

    let start = Instant::now();
    for (bi, batch) in trace.batches().enumerate() {
        batches += 1;
        for e in batch {
            match e.kind {
                EventKind::LinkDown(a, b) | EventKind::LinkUp(a, b) => {
                    match (topo.node(AsId(a)), topo.node(AsId(b))) {
                        (Some(x), Some(y)) if topo.rel(x, y).is_some() => {
                            applied += 1;
                            if matches!(e.kind, EventKind::LinkDown(..)) {
                                sim.fail_link(x, y);
                            } else {
                                sim.restore_link(x, y);
                            }
                        }
                        _ => skipped += 1,
                    }
                }
                EventKind::Withdraw(a) if a == dest_asn => {
                    applied += 1;
                    sim.withdraw_origin();
                }
                EventKind::Announce(a) if a == dest_asn => {
                    applied += 1;
                    sim.announce_origin();
                }
                _ => skipped += 1,
            }
        }
        match sim.run(seed.wrapping_add(bi as u64), step_budget) {
            Outcome::Converged { steps } => {
                converged += 1;
                lags.push(steps as u64);
            }
            Outcome::Diverged { steps } => {
                diverged += 1;
                lags.push(steps as u64);
            }
        }
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let reachable = topo.nodes().filter(|&x| sim.selected(x).is_some()).count();
    Ok(SimReplayReport {
        dest: dest_asn,
        events: trace.events.len(),
        applied_events: applied,
        skipped_events: skipped,
        batches,
        converged_batches: converged,
        diverged_batches: diverged,
        lag_p50: percentile(&lags, 50),
        lag_p95: percentile(&lags, 95),
        lag_max: lags.iter().copied().max().unwrap_or(0),
        elapsed_ns,
        events_per_sec: trace.events.len() as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        reachable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use miro_topology::gen as topo_gen;

    fn small_trace(events: usize, seed: u64) -> Trace {
        let topo = topo_gen::GenParams::tiny(7).generate();
        generate(&topo, &GenConfig { seed, events, ..GenConfig::default() })
    }

    #[test]
    fn serial_and_batched_replays_agree_on_the_table() {
        let trace = small_trace(2_000, 11);
        let serial = replay_delta(&trace, BatchMode::Serial, 2).unwrap();
        let batched = replay_delta(&trace, BatchMode::Batched, 2).unwrap();
        assert_eq!(serial.table_fnv, batched.table_fnv, "equivalence contract broken");
        assert_eq!(serial.dests, batched.dests);
        assert_eq!(serial.link_events, batched.link_events);
        // Batching can only save work, never add it.
        assert!(batched.recomputed <= serial.recomputed);
    }

    #[test]
    fn batched_replay_coalesces_flaps() {
        let trace = small_trace(3_000, 5);
        let batched = replay_delta(&trace, BatchMode::Batched, 1).unwrap();
        assert!(batched.batches < trace.events.len(), "bursts must share batches");
        assert!(batched.downs + batched.ups + batched.cancelled > 0);
        assert!(batched.events_per_sec > 0.0);
    }

    #[test]
    fn tunnel_churn_is_observed() {
        let trace = small_trace(4_000, 23);
        let r = replay_delta(&trace, BatchMode::Batched, 2).unwrap();
        assert!(r.tunnel_teardowns > 0, "sustained churn must cut some tunnel");
        assert!(r.tunnel_renegotiations <= r.tunnel_teardowns);
    }

    #[test]
    fn sim_replay_reconverges_and_counts_lag() {
        let trace = small_trace(300, 3);
        let r = replay_sim(&trace, 99, 200_000).unwrap();
        assert_eq!(r.batches, trace.batches().count());
        assert_eq!(r.converged_batches + r.diverged_batches, r.batches);
        assert_eq!(r.diverged_batches, 0, "tiny topologies must reconverge");
        assert!(r.lag_max >= r.lag_p95 && r.lag_p95 >= r.lag_p50);
        assert!(r.applied_events + r.skipped_events == trace.events.len());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 95), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 100), 100);
    }
}
