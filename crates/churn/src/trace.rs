//! The `MCT1` churn trace format.
//!
//! A trace file is:
//!
//! ```text
//! magic "MCT1"                                  (4 raw bytes)
//! header frame:  u8 version | u64 LE event count | topology text (UTF-8)
//! chunk frame*:  u32 LE count | count * event
//! event:         varint delta-time-ms | u8 kind | varint asn [| varint asn]
//! ```
//!
//! Every frame after the magic uses the shard codec's checksummed raw
//! framing (`u32 len | payload | u64 FNV-1a`), so a flipped byte anywhere
//! is caught by the checksum and truncation mid-frame is caught by the
//! length prefix. Truncation at a *frame boundary* — the one cut framing
//! alone cannot see — is caught by the header's total event count: decode
//! fails unless the chunks sum to exactly that many events and the stream
//! then ends cleanly.
//!
//! The embedded topology uses [`miro_topology::io::to_text`]'s line
//! format, which both the strict parser and the lenient streaming ingest
//! path (`topology::io::stream`) read — a trace is a self-contained
//! workload, and `miro ingest` can sniff the magic and load the topology
//! straight out of a `.mct` file.
//!
//! Events are stored with varint *delta* times, so timestamps are
//! monotone by construction on decode and co-temporal bursts (delta 0)
//! cost one byte. Kinds: `0` link down, `1` link up, `2` origin withdraw,
//! `3` origin announce. Link kinds carry two ASN varints, origin kinds
//! one. ASNs are not validated against the embedded topology here — the
//! replay engine counts events naming unknown ASes as ignored, mirroring
//! how a real feed carries prefixes you have no route to.

use miro_shard::protocol::{encode_raw_frame, read_raw_frame, FrameError};
use miro_topology::{io as topo_io, Topology};
use std::io::Read;

/// File magic: `MCT1` ("MIRO churn trace, version family 1").
pub const MAGIC: [u8; 4] = *b"MCT1";

/// Current format version carried inside the header frame.
pub const VERSION: u8 = 1;

/// Events per chunk frame. Small enough that a corrupt chunk loses
/// little, large enough that framing overhead is noise.
pub const CHUNK_EVENTS: usize = 4096;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// The session between the two ASes dropped.
    LinkDown(u32, u32),
    /// The session between the two ASes came back.
    LinkUp(u32, u32),
    /// The AS withdrew its prefix.
    Withdraw(u32),
    /// The AS (re-)announced its prefix.
    Announce(u32),
}

impl EventKind {
    fn code(self) -> u8 {
        match self {
            EventKind::LinkDown(..) => 0,
            EventKind::LinkUp(..) => 1,
            EventKind::Withdraw(_) => 2,
            EventKind::Announce(_) => 3,
        }
    }
}

/// One timestamped event. Times are absolute milliseconds from the start
/// of the trace; equal times mean "co-temporal" and are what the batched
/// replay coalesces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Milliseconds since trace start.
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Decode errors. Every malformed input must land in one of these —
/// never a panic — which is what the fuzz suite pins.
#[derive(Debug)]
pub enum TraceError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// A frame failed the shard codec (checksum, length, truncation).
    Frame(FrameError),
    /// A frame payload was malformed (short header, bad varint, unknown
    /// event kind, trailing bytes, oversized chunk...).
    Malformed(&'static str),
    /// The stream ended before the header's event count was reached.
    Truncated {
        /// Events promised by the header.
        expected: u64,
        /// Events actually decoded.
        got: u64,
    },
    /// Bytes (or whole frames) follow the final chunk.
    TrailingData,
    /// The embedded topology text failed to parse.
    BadTopology(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a churn trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Frame(e) => write!(f, "frame error: {e}"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
            TraceError::Truncated { expected, got } => {
                write!(f, "truncated trace: header promised {expected} events, found {got}")
            }
            TraceError::TrailingData => write!(f, "trailing data after final chunk"),
            TraceError::BadTopology(e) => write!(f, "embedded topology: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<FrameError> for TraceError {
    fn from(e: FrameError) -> Self {
        TraceError::Frame(e)
    }
}

/// A churn trace: the topology it was recorded over (in the ingest text
/// format) plus a time-sorted event stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// The topology, serialized with [`miro_topology::io::to_text`].
    pub topo_text: String,
    /// Events, non-decreasing in `at_ms`.
    pub events: Vec<Event>,
}

impl Trace {
    /// Parse the embedded topology (strict parser — traces are generated
    /// artifacts and deserve hard errors).
    pub fn topology(&self) -> Result<Topology, TraceError> {
        topo_io::from_text(&self.topo_text).map_err(|e| TraceError::BadTopology(e.to_string()))
    }

    /// Iterate co-temporal batches: maximal runs of equal `at_ms`.
    pub fn batches(&self) -> impl Iterator<Item = &[Event]> {
        self.events.chunk_by(|a, b| a.at_ms == b.at_ms)
    }

    /// Total duration covered, in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ms)
    }

    /// Per-kind counts: `(downs, ups, withdraws, announces)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for e in &self.events {
            match e.kind {
                EventKind::LinkDown(..) => c.0 += 1,
                EventKind::LinkUp(..) => c.1 += 1,
                EventKind::Withdraw(_) => c.2 += 1,
                EventKind::Announce(_) => c.3 += 1,
            }
        }
        c
    }

    /// Serialize. Events must be sorted by time (the generator's output
    /// always is); returns `Malformed` if not, since delta encoding
    /// cannot represent time running backwards.
    pub fn encode(&self) -> Result<Vec<u8>, TraceError> {
        let mut out = Vec::with_capacity(64 + self.topo_text.len() + self.events.len() * 4);
        out.extend_from_slice(&MAGIC);

        let mut header = Vec::with_capacity(9 + self.topo_text.len());
        header.push(VERSION);
        header.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        header.extend_from_slice(self.topo_text.as_bytes());
        out.extend_from_slice(&encode_raw_frame(&header));

        let mut prev = 0u64;
        for chunk in self.events.chunks(CHUNK_EVENTS) {
            let mut payload = Vec::with_capacity(4 + chunk.len() * 6);
            payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            for ev in chunk {
                let dt = ev
                    .at_ms
                    .checked_sub(prev)
                    .ok_or(TraceError::Malformed("events not sorted by time"))?;
                prev = ev.at_ms;
                put_varint(&mut payload, dt);
                payload.push(ev.kind.code());
                match ev.kind {
                    EventKind::LinkDown(a, b) | EventKind::LinkUp(a, b) => {
                        put_varint(&mut payload, a as u64);
                        put_varint(&mut payload, b as u64);
                    }
                    EventKind::Withdraw(a) | EventKind::Announce(a) => {
                        put_varint(&mut payload, a as u64);
                    }
                }
            }
            out.extend_from_slice(&encode_raw_frame(&payload));
        }
        Ok(out)
    }

    /// Decode from a byte slice. See the module docs for the validation
    /// performed; the embedded topology is parsed (and discarded) so a
    /// successful decode guarantees a replayable trace.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut r = bytes;
        let t = Trace::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(TraceError::TrailingData);
        }
        Ok(t)
    }

    /// Decode from a reader. Stops exactly at the end of the final chunk
    /// frame (trailing bytes in the stream are the caller's business;
    /// [`Trace::decode`] rejects them).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|_| TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }

        let header = read_raw_frame(r)?;
        if header.len() < 9 {
            return Err(TraceError::Malformed("header frame too short"));
        }
        if header[0] != VERSION {
            return Err(TraceError::BadVersion(header[0]));
        }
        let total = u64::from_le_bytes(header[1..9].try_into().unwrap());
        let topo_text = String::from_utf8(header[9..].to_vec())
            .map_err(|_| TraceError::Malformed("topology text is not UTF-8"))?;

        let mut events = Vec::with_capacity(total.min(1 << 20) as usize);
        let mut now = 0u64;
        while (events.len() as u64) < total {
            let chunk = match read_raw_frame(r) {
                Ok(c) => c,
                Err(FrameError::Eof) => {
                    return Err(TraceError::Truncated { expected: total, got: events.len() as u64 })
                }
                Err(e) => return Err(e.into()),
            };
            let mut p = &chunk[..];
            let count = take_u32(&mut p)? as usize;
            if count == 0 || count > CHUNK_EVENTS {
                return Err(TraceError::Malformed("bad chunk event count"));
            }
            if events.len() as u64 + count as u64 > total {
                return Err(TraceError::Malformed("chunks overflow header event count"));
            }
            for _ in 0..count {
                let dt = take_varint(&mut p)?;
                now = now
                    .checked_add(dt)
                    .ok_or(TraceError::Malformed("timestamp overflow"))?;
                let kind = take_u8(&mut p)?;
                let kind = match kind {
                    0 | 1 => {
                        let a = take_asn(&mut p)?;
                        let b = take_asn(&mut p)?;
                        if kind == 0 {
                            EventKind::LinkDown(a, b)
                        } else {
                            EventKind::LinkUp(a, b)
                        }
                    }
                    2 => EventKind::Withdraw(take_asn(&mut p)?),
                    3 => EventKind::Announce(take_asn(&mut p)?),
                    _ => return Err(TraceError::Malformed("unknown event kind")),
                };
                events.push(Event { at_ms: now, kind });
            }
            if !p.is_empty() {
                return Err(TraceError::Malformed("trailing bytes in chunk"));
            }
        }

        let t = Trace { topo_text, events };
        t.topology()?;
        Ok(t)
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn take_u8(p: &mut &[u8]) -> Result<u8, TraceError> {
    let (&b, rest) = p.split_first().ok_or(TraceError::Malformed("chunk ends mid-event"))?;
    *p = rest;
    Ok(b)
}

fn take_u32(p: &mut &[u8]) -> Result<u32, TraceError> {
    if p.len() < 4 {
        return Err(TraceError::Malformed("chunk ends mid-event"));
    }
    let v = u32::from_le_bytes(p[..4].try_into().unwrap());
    *p = &p[4..];
    Ok(v)
}

fn take_varint(p: &mut &[u8]) -> Result<u64, TraceError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = take_u8(p)?;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            // Reject non-canonical encodings (a continuation into bits
            // past 63, or a redundant trailing zero byte) so every value
            // has exactly one byte representation.
            if shift > 0 && b == 0 {
                return Err(TraceError::Malformed("overlong varint"));
            }
            if shift == 63 && b > 1 {
                return Err(TraceError::Malformed("varint overflows u64"));
            }
            return Ok(v);
        }
    }
    Err(TraceError::Malformed("varint overflows u64"))
}

fn take_asn(p: &mut &[u8]) -> Result<u32, TraceError> {
    let v = take_varint(p)?;
    u32::try_from(v).map_err(|_| TraceError::Malformed("ASN overflows u32"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen as topo_gen;
    use miro_topology::io::to_text;

    fn sample() -> Trace {
        let (topo, _) = topo_gen::figure_1_1();
        Trace {
            topo_text: to_text(&topo),
            events: vec![
                Event { at_ms: 0, kind: EventKind::LinkDown(2, 5) },
                Event { at_ms: 0, kind: EventKind::Withdraw(6) },
                Event { at_ms: 17, kind: EventKind::Announce(6) },
                Event { at_ms: 17, kind: EventKind::LinkUp(2, 5) },
                Event { at_ms: 4000, kind: EventKind::LinkDown(3, 6) },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let t = sample();
        let bytes = t.encode().unwrap();
        assert_eq!(&bytes[..4], &MAGIC);
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.duration_ms(), 4000);
        assert_eq!(back.kind_counts(), (2, 1, 1, 1));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace { topo_text: to_text(&topo_gen::figure_1_1().0), events: Vec::new() };
        let back = Trace::decode(&t.encode().unwrap()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.batches().count(), 0);
    }

    #[test]
    fn batches_group_equal_timestamps() {
        let t = sample();
        let sizes: Vec<usize> = t.batches().map(|b| b.len()).collect();
        assert_eq!(sizes, [2, 2, 1]);
    }

    #[test]
    fn chunking_covers_multi_frame_traces() {
        let (topo, _) = topo_gen::figure_1_1();
        let events: Vec<Event> = (0..(CHUNK_EVENTS as u64 * 2 + 7))
            .map(|i| Event {
                at_ms: i / 3,
                kind: if i % 2 == 0 {
                    EventKind::LinkDown(2, 5)
                } else {
                    EventKind::LinkUp(2, 5)
                },
            })
            .collect();
        let t = Trace { topo_text: to_text(&topo), events };
        let back = Trace::decode(&t.encode().unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn unsorted_events_refuse_to_encode() {
        let mut t = sample();
        t.events.swap(2, 4);
        assert!(matches!(t.encode(), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn frame_boundary_truncation_is_detected() {
        let t = sample();
        let bytes = t.encode().unwrap();
        // Cut right after the header frame: framing alone cannot see this,
        // the header event count must.
        let header_end = 4 + 4 + (bytes[4..8].try_into().map(u32::from_le_bytes).unwrap() as usize) + 8;
        match Trace::decode(&bytes[..header_end]) {
            Err(TraceError::Truncated { expected: 5, got: 0 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_frames_are_rejected() {
        let t = sample();
        let mut bytes = t.encode().unwrap();
        bytes.extend_from_slice(&encode_raw_frame(b"extra"));
        assert!(matches!(Trace::decode(&bytes), Err(TraceError::TrailingData)));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let t = sample();
        let mut bytes = t.encode().unwrap();
        bytes[0] ^= 0x20;
        assert!(matches!(Trace::decode(&bytes), Err(TraceError::BadMagic)));

        // Flip the version byte *and* refresh the frame so only the
        // version check can object.
        let mut header = vec![9u8];
        header.extend_from_slice(&0u64.to_le_bytes());
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_raw_frame(&header));
        assert!(matches!(Trace::decode(&bytes), Err(TraceError::BadVersion(9))));
    }

    #[test]
    fn garbage_topology_is_rejected() {
        let mut header = vec![VERSION];
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(b"1 1 c\n");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_raw_frame(&header));
        assert!(matches!(Trace::decode(&bytes), Err(TraceError::BadTopology(_))));
    }
}
