//! Seeded churn generation.
//!
//! The generator reproduces the three statistical signatures of a real
//! RouteViews UPDATE feed that matter to a control plane:
//!
//! * **Heavy-tailed inter-arrival times.** Gaps between events are drawn
//!   from a Pareto distribution (shape 1.5), so most events arrive in
//!   rapid clusters punctuated by long quiet stretches. On top of that, a
//!   configurable fraction of events are *co-temporal* (delta 0 ms) —
//!   these are what the batched delta engine coalesces into one cone
//!   recomputation.
//! * **Flapping links.** A small set of dedicated flapper links supplies
//!   a disproportionate share of session up/down events, mirroring the
//!   classic observation that a handful of unstable sessions dominate
//!   update volume. Toggles are state-consistent: a link only goes down
//!   while up and vice versa, so flap pairs that cancel inside one batch
//!   arise naturally rather than by construction.
//! * **Skewed origin churn.** Announce/withdraw events pick their origin
//!   AS from a Zipf-like distribution over the node list, so a few
//!   "popular prefixes" churn constantly while the tail barely moves.
//!
//! Everything is driven by one [`rand::rngs::StdRng`]; equal seeds give
//! byte-identical traces, which the golden fixture under `data/` pins.

use crate::trace::{Event, EventKind, Trace};
use miro_topology::{io as topo_io, Topology};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use std::collections::HashMap;

/// Knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Total events to emit.
    pub events: usize,
    /// Mean gap between non-burst events, in milliseconds.
    pub mean_gap_ms: u64,
    /// Fraction of events that are co-temporal with their predecessor
    /// (delta 0 ms) — the batching opportunity.
    pub burst_fraction: f64,
    /// Number of dedicated flapping links.
    pub flappers: usize,
    /// Fraction of *link* events aimed at a flapper link.
    pub flap_fraction: f64,
    /// Fraction of events that are origin announce/withdraw churn.
    pub origin_fraction: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            events: 10_000,
            mean_gap_ms: 80,
            burst_fraction: 0.35,
            flappers: 4,
            flap_fraction: 0.5,
            origin_fraction: 0.15,
        }
    }
}

/// Uniform f64 in `[0, 1)` with 53 mantissa bits (the shim's `gen_bool`
/// construction, exposed for the Pareto/Zipf draws).
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generate a churn trace over `topo`. Deterministic in `cfg.seed`.
pub fn generate(topo: &Topology, cfg: &GenConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // All links as normalized ASN pairs, in deterministic (sorted) order.
    let mut links: Vec<(u32, u32)> = Vec::with_capacity(topo.num_edges());
    for x in topo.nodes() {
        for &(y, _) in topo.neighbors(x) {
            let (a, b) = (topo.asn(x).0, topo.asn(y).0);
            if a < b {
                links.push((a, b));
            }
        }
    }
    links.sort_unstable();

    // Flapper set: a seeded sample of the link list.
    let mut pool = links.clone();
    let mut flappers: Vec<(u32, u32)> = Vec::with_capacity(cfg.flappers.min(pool.len()));
    while flappers.len() < cfg.flappers && !pool.is_empty() {
        flappers.push(pool.swap_remove(rng.gen_range(0..pool.len())));
    }

    // Origin candidates, highest degree first, so the Zipf head lands on
    // well-connected ASes ("popular prefixes").
    let mut origins: Vec<u32> = topo.nodes().map(|x| topo.asn(x).0).collect();
    origins.sort_by_key(|&a| {
        let x = topo.node(miro_topology::AsId(a)).unwrap();
        (std::cmp::Reverse(topo.degree(x)), a)
    });

    let mut link_down: HashMap<(u32, u32), bool> = HashMap::new();
    let mut origin_down: HashMap<u32, bool> = HashMap::new();

    let mut events = Vec::with_capacity(cfg.events);
    let mut now = 0u64;
    for i in 0..cfg.events {
        if i > 0 && !rng.gen_bool(cfg.burst_fraction.clamp(0.0, 1.0)) {
            // Pareto(shape 1.5) gap, normalized so the mean of the
            // non-burst gaps is `mean_gap_ms` (E[u^-1/a - 1] = 2 at
            // a = 1.5), capped to keep a single draw from eating the
            // whole timeline.
            let u = unit(&mut rng).max(1e-9);
            let gap = (cfg.mean_gap_ms as f64 / 2.0) * (u.powf(-1.0 / 1.5) - 1.0);
            now += (gap as u64).min(cfg.mean_gap_ms.saturating_mul(1000)).max(1);
        }

        let kind = if !origins.is_empty() && rng.gen_bool(cfg.origin_fraction.clamp(0.0, 1.0)) {
            // Zipf-ish rank: floor(N * u^3) concentrates on rank 0.
            let rank = ((origins.len() as f64) * unit(&mut rng).powi(3)) as usize;
            let asn = origins[rank.min(origins.len() - 1)];
            let down = origin_down.entry(asn).or_insert(false);
            *down = !*down;
            if *down {
                EventKind::Withdraw(asn)
            } else {
                EventKind::Announce(asn)
            }
        } else if !links.is_empty() {
            let link = if !flappers.is_empty()
                && rng.gen_bool(cfg.flap_fraction.clamp(0.0, 1.0))
            {
                flappers[rng.gen_range(0..flappers.len())]
            } else {
                links[rng.gen_range(0..links.len())]
            };
            let down = link_down.entry(link).or_insert(false);
            *down = !*down;
            if *down {
                EventKind::LinkDown(link.0, link.1)
            } else {
                EventKind::LinkUp(link.0, link.1)
            }
        } else {
            // Degenerate topology with no links at all: nothing but
            // origin churn is possible; flip the first AS.
            let asn = origins[0];
            let down = origin_down.entry(asn).or_insert(false);
            *down = !*down;
            if *down {
                EventKind::Withdraw(asn)
            } else {
                EventKind::Announce(asn)
            }
        };

        events.push(Event { at_ms: now, kind });
    }

    Trace { topo_text: topo_io::to_text(topo), events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen as topo_gen;

    fn medium_topo() -> Topology {
        topo_gen::GenParams::tiny(7).generate()
    }

    #[test]
    fn equal_seeds_give_identical_traces() {
        let topo = medium_topo();
        let cfg = GenConfig { events: 2_000, ..GenConfig::default() };
        let a = generate(&topo, &cfg);
        let b = generate(&topo, &cfg);
        assert_eq!(a, b);
        let c = generate(&topo, &GenConfig { seed: 43, ..cfg });
        assert_ne!(a.events, c.events, "different seeds must differ");
    }

    #[test]
    fn traces_round_trip_and_stay_sorted() {
        let topo = medium_topo();
        let t = generate(&topo, &GenConfig { events: 3_000, ..GenConfig::default() });
        assert_eq!(t.events.len(), 3_000);
        assert!(t.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let back = Trace::decode(&t.encode().unwrap()).unwrap();
        assert_eq!(back, t);
        back.topology().unwrap();
    }

    #[test]
    fn bursts_produce_cotemporal_batches() {
        let topo = medium_topo();
        let t = generate(
            &topo,
            &GenConfig { events: 4_000, burst_fraction: 0.5, ..GenConfig::default() },
        );
        let batches = t.batches().count();
        assert!(
            batches < t.events.len() * 4 / 5,
            "expected multi-event batches, got {batches} batches for {} events",
            t.events.len()
        );
        let biggest = t.batches().map(|b| b.len()).max().unwrap();
        assert!(biggest >= 3, "burst fraction 0.5 should chain, got max {biggest}");
    }

    #[test]
    fn link_toggles_are_state_consistent() {
        let topo = medium_topo();
        let t = generate(&topo, &GenConfig { events: 5_000, ..GenConfig::default() });
        let mut down = std::collections::HashMap::new();
        for e in &t.events {
            match e.kind {
                EventKind::LinkDown(a, b) => {
                    assert!(!down.insert((a, b), true).unwrap_or(false), "double down {a}-{b}");
                }
                EventKind::LinkUp(a, b) => {
                    assert!(down.insert((a, b), false).unwrap_or(false), "up of live {a}-{b}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mix_respects_fractions_roughly() {
        let topo = medium_topo();
        let t = generate(
            &topo,
            &GenConfig { events: 10_000, origin_fraction: 0.3, ..GenConfig::default() },
        );
        let (downs, ups, withdraws, announces) = t.kind_counts();
        let origin = withdraws + announces;
        let link = downs + ups;
        assert!(origin > 2_000 && origin < 4_000, "origin mix off: {origin}");
        assert_eq!(origin + link, 10_000);
    }
}
