//! Churn replay: a RouteViews-style UPDATE firehose for the MIRO control
//! plane.
//!
//! BGP's background radiation is churn — a sustained stream of announce,
//! withdraw, and session up/down events whose inter-arrival times are
//! heavy-tailed and whose targets are heavily skewed (a few flapping links
//! and popular prefixes account for most of the volume). MIRO's deployment
//! story assumes the control plane keeps up with that stream while tunnels
//! are negotiated and torn down underneath it, so this crate provides the
//! three pieces the evaluation needs:
//!
//! * [`trace`] — a compact, versioned, corruption-detecting on-disk format
//!   for churn traces (`MCT1`). A trace embeds the topology it was recorded
//!   over in the same text format the streaming ingest path parses, so one
//!   file is a self-contained replayable workload.
//! * [`gen`] — a seeded generator producing heavy-tailed inter-arrival
//!   times, dedicated flapping links, and a Zipf-skewed origin
//!   announce/withdraw mix. Equal seeds give byte-identical traces.
//! * [`replay`] — the replay engine. It drives a trace through the
//!   event-level simulator ([`miro_bgp::sim`]) and through the solver's
//!   delta path ([`miro_bgp::solver::multi`]) in serial or batched mode,
//!   measuring events/sec, convergence lag distributions, and MIRO tunnel
//!   teardown/re-negotiation rates.
//!
//! The replay contract that makes the batched path trustworthy — any
//! grouping of the same event sequence into co-temporal batches yields a
//! byte-identical routing table — is pinned by proptests in
//! `miro_bgp::solver::multi` and re-checked end-to-end here.

pub mod gen;
pub mod replay;
pub mod trace;

pub use gen::{generate, GenConfig};
pub use replay::{
    percentile, replay_delta, replay_sim, BatchMode, DeltaReplayReport, ReplayError,
    SimReplayReport,
};
pub use trace::{Event, EventKind, Trace, TraceError, MAGIC};
