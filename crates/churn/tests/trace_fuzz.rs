//! Fuzz the `MCT1` churn trace codec the same way the shard codec is
//! fuzzed: arbitrary byte soup, single-byte flips, and truncation at
//! every cut must surface as clean [`TraceError`]s — never a panic,
//! never a fabricated trace — and every well-formed trace must
//! round-trip byte-exactly.

use miro_churn::gen::{generate, GenConfig};
use miro_churn::trace::{Event, EventKind, Trace, TraceError};
use miro_topology::gen as topo_gen;
use proptest::prelude::*;

fn fixture(events: usize, seed: u64) -> Trace {
    let (topo, _) = topo_gen::figure_1_1();
    generate(
        &topo,
        &GenConfig { seed, events, flappers: 2, ..GenConfig::default() },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte soup into the decoder: a clean error or — for the rare soup
    /// that happens to be a valid trace — a value that re-encodes to the
    /// exact input. Never a panic.
    #[test]
    fn byte_soup_decodes_or_fails_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(t) = Trace::decode(&bytes) {
            prop_assert_eq!(t.encode().unwrap(), bytes);
        }
    }

    /// Byte soup behind a valid magic exercises the frame and payload
    /// parsers; same contract.
    #[test]
    fn magic_prefixed_soup_fails_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut input = miro_churn::MAGIC.to_vec();
        input.extend_from_slice(&bytes);
        match Trace::decode(&input) {
            Ok(t) => prop_assert_eq!(t.encode().unwrap(), input),
            Err(TraceError::BadMagic) => prop_assert!(false, "magic was valid"),
            Err(_) => {}
        }
    }

    /// One flipped byte anywhere in an encoded trace is caught — by the
    /// magic check, the FNV frame checksums, or the payload validators —
    /// or, if it decodes at all, decodes to something that re-encodes to
    /// the flipped bytes (the flip landed on a don't-care it cannot,
    /// since the format has no padding; assert it anyway).
    #[test]
    fn single_byte_flip_is_always_caught(
        events in 1usize..40,
        seed in any::<u64>(),
        pick in any::<u32>(),
        flip in 0u8..255,
    ) {
        let flip = flip.wrapping_add(1); // 1..=255: never a no-op
        let bytes = fixture(events, seed).encode().unwrap();
        let mut bad = bytes.clone();
        let at = pick as usize % bad.len();
        bad[at] ^= flip;
        if let Ok(t) = Trace::decode(&bad) {
            prop_assert_eq!(t.encode().unwrap(), bad, "flip at {} survived", at);
        }
    }

    /// Generated traces of any size round-trip byte-exactly.
    #[test]
    fn generated_traces_round_trip(events in 0usize..200, seed in any::<u64>()) {
        let t = fixture(events, seed);
        let bytes = t.encode().unwrap();
        let back = Trace::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.encode().unwrap(), bytes);
    }
}

#[test]
fn truncation_at_every_cut_errors_cleanly() {
    let mut t = fixture(25, 7);
    // Ensure a multi-chunk layout is NOT in play here (25 events fit one
    // chunk); the multi-chunk boundary case is covered below.
    let bytes = t.encode().unwrap();
    for cut in 0..bytes.len() {
        if let Ok(got) = Trace::decode(&bytes[..cut]) {
            panic!("cut {cut}: decoded {} events from a truncated trace", got.events.len());
        }
    }

    // Truncation exactly at a chunk-frame boundary: framing sees a clean
    // Eof, so only the header's event count can (and must) object.
    t.events = (0..(miro_churn::trace::CHUNK_EVENTS as u64 + 10))
        .map(|i| Event {
            at_ms: i,
            kind: if i % 2 == 0 { EventKind::LinkDown(2, 5) } else { EventKind::LinkUp(2, 5) },
        })
        .collect();
    let bytes = t.encode().unwrap();
    // Walk frames to find the end of the first chunk.
    let header_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let first_chunk_start = 4 + 4 + header_len + 8;
    let chunk_len =
        u32::from_le_bytes(bytes[first_chunk_start..first_chunk_start + 4].try_into().unwrap())
            as usize;
    let boundary = first_chunk_start + 4 + chunk_len + 8;
    assert!(boundary < bytes.len(), "fixture must have a second chunk");
    match Trace::decode(&bytes[..boundary]) {
        Err(TraceError::Truncated { expected, got }) => {
            assert_eq!(expected, t.events.len() as u64);
            assert_eq!(got, miro_churn::trace::CHUNK_EVENTS as u64);
        }
        other => panic!("frame-boundary cut: unexpected {other:?}"),
    }
}

#[test]
fn empty_input_is_bad_magic() {
    assert!(matches!(Trace::decode(&[]), Err(TraceError::BadMagic)));
    assert!(matches!(Trace::decode(b"MCT"), Err(TraceError::BadMagic)));
    assert!(matches!(Trace::decode(b"MCT2____"), Err(TraceError::BadMagic)));
}
