//! Minimal IPv4 header codec over `bytes` buffers.
//!
//! Parse/emit in the smoltcp idiom: a plain struct, explicit field
//! offsets, a real ones-complement checksum, and hard errors on malformed
//! input. Only what MIRO's tunnels need: no options, no fragmentation.

use bytes::{BufMut, Bytes, BytesMut};

/// IP protocol number for IP-in-IP (RFC 2003) — the encapsulation of
/// section 4.2.
pub const PROTO_IPIP: u8 = 4;
/// Locally-chosen protocol number for the MIRO shim header (from the
/// 253/254 experimentation range of RFC 3692).
pub const PROTO_MIRO: u8 = 253;

/// An IPv4 address as 4 bytes (module-local; keeps the crate free of
/// `std::net` conversions on hot paths).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr4(pub [u8; 4]);

impl Ipv4Addr4 {
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr4([a, b, c, d])
    }

    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    pub fn from_u32(v: u32) -> Self {
        Ipv4Addr4(v.to_be_bytes())
    }
}

impl std::fmt::Debug for Ipv4Addr4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl std::fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Decode/encode errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ipv4Error {
    /// Fewer than 20 bytes available.
    Truncated,
    /// Version field is not 4.
    BadVersion,
    /// IHL below 5 or beyond the buffer.
    BadHeaderLen,
    /// Header checksum does not verify.
    BadChecksum,
    /// Total length field disagrees with the buffer.
    BadTotalLen,
}

impl std::fmt::Display for Ipv4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ipv4Error::Truncated => "truncated header",
            Ipv4Error::BadVersion => "version is not 4",
            Ipv4Error::BadHeaderLen => "bad header length",
            Ipv4Error::BadChecksum => "checksum mismatch",
            Ipv4Error::BadTotalLen => "total length mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Ipv4Error {}

/// A parsed IPv4 header (no options).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    pub dscp_ecn: u8,
    pub identification: u16,
    pub ttl: u8,
    pub protocol: u8,
    pub src: Ipv4Addr4,
    pub dst: Ipv4Addr4,
    /// Payload length in bytes (total length minus the 20-byte header).
    pub payload_len: u16,
}

impl Ipv4Header {
    pub const LEN: usize = 20;

    /// A fresh header with common defaults (TTL 64, as smoltcp uses).
    pub fn new(src: Ipv4Addr4, dst: Ipv4Addr4, protocol: u8, payload_len: u16) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            identification: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            payload_len,
        }
    }

    /// Emit the 20-byte header (checksum computed) into `buf`.
    pub fn emit(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp_ecn);
        buf.put_u16(Self::LEN as u16 + self.payload_len);
        buf.put_u16(self.identification);
        buf.put_u16(0); // flags + fragment offset: never fragmented here
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.0);
        buf.put_slice(&self.dst.0);
        let cksum = checksum(&buf[start..start + Self::LEN]);
        buf[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
    }

    /// Emit header followed by `payload` and return the frozen packet.
    pub fn emit_with_payload(&self, payload: &[u8]) -> Bytes {
        debug_assert_eq!(payload.len(), self.payload_len as usize);
        let mut buf = BytesMut::with_capacity(Self::LEN + payload.len());
        self.emit(&mut buf);
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Parse and validate a header; returns the header and the payload
    /// bytes that follow it.
    pub fn parse(data: Bytes) -> Result<(Ipv4Header, Bytes), Ipv4Error> {
        let (header, payload) = Self::parse_slice(&data)?;
        let start = Self::LEN;
        let payload = data.slice(start..start + payload.len());
        Ok((header, payload))
    }

    /// Zero-copy parse: validate a header in place and return it together
    /// with a borrowed payload view. This is the burst engine's preparse
    /// primitive — no `Bytes` refcount traffic, no allocation.
    pub fn parse_slice(data: &[u8]) -> Result<(Ipv4Header, &[u8]), Ipv4Error> {
        if data.len() < Self::LEN {
            return Err(Ipv4Error::Truncated);
        }
        if checksum(&data[..Self::LEN]) != 0 {
            return Err(Ipv4Error::BadChecksum);
        }
        let vihl = data[0];
        if vihl >> 4 != 4 {
            return Err(Ipv4Error::BadVersion);
        }
        if vihl & 0x0f != 5 {
            return Err(Ipv4Error::BadHeaderLen);
        }
        let total = u16::from_be_bytes([data[2], data[3]]);
        let rest = data.len() - Self::LEN;
        if (total as usize) < Self::LEN || (total as usize) - Self::LEN > rest {
            return Err(Ipv4Error::BadTotalLen);
        }
        let payload_len = total - Self::LEN as u16;
        let header = Ipv4Header {
            dscp_ecn: data[1],
            identification: u16::from_be_bytes([data[4], data[5]]),
            ttl: data[8],
            protocol: data[9],
            src: Ipv4Addr4([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr4([data[16], data[17], data[18], data[19]]),
            payload_len,
        };
        Ok((header, &data[Self::LEN..Self::LEN + payload_len as usize]))
    }
}

/// Decrement the TTL of a valid 20-byte header in place and recompute its
/// checksum (the per-hop rewrite of the forwarding fast path). The caller
/// has already rejected `ttl <= 1` packets; a full 10-word recompute keeps
/// the bytes identical to a fresh [`Ipv4Header::emit`] of the same fields.
pub fn decrement_ttl_in_place(header: &mut [u8]) {
    debug_assert!(header.len() >= Ipv4Header::LEN);
    header[8] -= 1;
    header[10] = 0;
    header[11] = 0;
    let cksum = checksum(&header[..Ipv4Header::LEN]);
    header[10..12].copy_from_slice(&cksum.to_be_bytes());
}

/// RFC 1071 ones-complement checksum over `data` (zero over a buffer that
/// includes a correct checksum field).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(12, 34, 56, 78),
            PROTO_IPIP,
            4,
        )
    }

    #[test]
    fn round_trip() {
        let h = hdr();
        let pkt = h.emit_with_payload(b"abcd");
        assert_eq!(pkt.len(), 24);
        let (parsed, payload) = Ipv4Header::parse(pkt).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(&payload[..], b"abcd");
    }

    #[test]
    fn checksum_validates_and_detects_corruption() {
        let h = hdr();
        let pkt = h.emit_with_payload(b"abcd");
        // Emitted checksum verifies.
        assert_eq!(checksum(&pkt[..20]), 0);
        // Flip a bit anywhere in the header: parse must fail.
        for i in [0usize, 8, 12, 16, 19] {
            let mut bad = BytesMut::from(&pkt[..]);
            bad[i] ^= 0x40;
            assert_eq!(
                Ipv4Header::parse(bad.freeze()).unwrap_err(),
                Ipv4Error::BadChecksum,
                "corruption at byte {i} must be caught"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let h = hdr();
        let pkt = h.emit_with_payload(b"abcd");
        assert_eq!(
            Ipv4Header::parse(pkt.slice(..10)).unwrap_err(),
            Ipv4Error::Truncated
        );
    }

    #[test]
    fn total_len_mismatch_rejected() {
        let h = Ipv4Header::new(
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            6,
            100, // claims 100 payload bytes
        );
        let mut buf = BytesMut::new();
        h.emit(&mut buf);
        buf.put_slice(b"short"); // only 5 present
        assert_eq!(
            Ipv4Header::parse(buf.freeze()).unwrap_err(),
            Ipv4Error::BadTotalLen
        );
    }

    #[test]
    fn addr_conversions() {
        let a = Ipv4Addr4::new(192, 168, 1, 2);
        assert_eq!(Ipv4Addr4::from_u32(a.to_u32()), a);
        assert_eq!(format!("{a}"), "192.168.1.2");
    }

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 worked example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn extra_trailing_bytes_are_ignored() {
        // A link may pad frames; parse uses total length.
        let h = hdr();
        let mut buf = BytesMut::from(&h.emit_with_payload(b"abcd")[..]);
        buf.put_slice(&[0u8; 6]); // padding
        let (parsed, payload) = Ipv4Header::parse(buf.freeze()).unwrap();
        assert_eq!(parsed.payload_len, 4);
        assert_eq!(&payload[..], b"abcd");
    }
}
