//! Self-contained pcapng writer (no dependencies), so tunnel traffic —
//! outer IPv4 plus the MIRO shim — can be captured from the bench and
//! inspected in Wireshark when debugging encapsulation.
//!
//! Writes the minimal conforming file: one Section Header Block, one
//! Interface Description Block with `LINKTYPE_RAW` (packets begin at the
//! IPv4 header, no link-layer framing), then one Enhanced Packet Block
//! per packet. Little-endian; the byte-order magic tells readers.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// LINKTYPE_RAW: packet data starts directly at the IP header.
const LINKTYPE_RAW: u16 = 101;

const SHB_TYPE: u32 = 0x0A0D_0D0A;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
const IDB_TYPE: u32 = 0x0000_0001;
const EPB_TYPE: u32 = 0x0000_0006;

/// A pcapng stream over any writer. Construction emits the section and
/// interface headers; each [`write_packet`](Self::write_packet) appends
/// one Enhanced Packet Block.
pub struct PcapngWriter<W: Write> {
    w: W,
    packets: u64,
}

impl<W: Write> PcapngWriter<W> {
    pub fn new(mut w: W) -> io::Result<PcapngWriter<W>> {
        // Section Header Block: 28 bytes total.
        w.write_all(&SHB_TYPE.to_le_bytes())?;
        w.write_all(&28u32.to_le_bytes())?;
        w.write_all(&BYTE_ORDER_MAGIC.to_le_bytes())?;
        w.write_all(&1u16.to_le_bytes())?; // major version
        w.write_all(&0u16.to_le_bytes())?; // minor version
        w.write_all(&u64::MAX.to_le_bytes())?; // section length: unknown
        w.write_all(&28u32.to_le_bytes())?;
        // Interface Description Block: 20 bytes total.
        w.write_all(&IDB_TYPE.to_le_bytes())?;
        w.write_all(&20u32.to_le_bytes())?;
        w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?; // reserved
        w.write_all(&0u32.to_le_bytes())?; // snaplen: unlimited
        w.write_all(&20u32.to_le_bytes())?;
        Ok(PcapngWriter { w, packets: 0 })
    }

    /// Append one packet with a microsecond timestamp (the IDB's default
    /// 10^-6 resolution).
    pub fn write_packet(&mut self, ts_us: u64, data: &[u8]) -> io::Result<()> {
        let caplen = data.len() as u32;
        let pad = (4 - (data.len() % 4)) % 4;
        let total = 32 + data.len() as u32 + pad as u32;
        self.w.write_all(&EPB_TYPE.to_le_bytes())?;
        self.w.write_all(&total.to_le_bytes())?;
        self.w.write_all(&0u32.to_le_bytes())?; // interface id
        self.w.write_all(&((ts_us >> 32) as u32).to_le_bytes())?;
        self.w.write_all(&(ts_us as u32).to_le_bytes())?;
        self.w.write_all(&caplen.to_le_bytes())?;
        self.w.write_all(&caplen.to_le_bytes())?; // original length
        self.w.write_all(data)?;
        self.w.write_all(&[0u8; 3][..pad])?;
        self.w.write_all(&total.to_le_bytes())?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Open `path` for writing and emit the pcapng preamble.
pub fn create<P: AsRef<Path>>(path: P) -> io::Result<PcapngWriter<BufWriter<File>>> {
    PcapngWriter::new(BufWriter::new(File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le32(b: &[u8]) -> u32 {
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    #[test]
    fn preamble_is_pinned() {
        let w = PcapngWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 48, "SHB (28) + IDB (20)");
        assert_eq!(le32(&bytes[0..]), SHB_TYPE);
        assert_eq!(le32(&bytes[4..]), 28);
        assert_eq!(le32(&bytes[8..]), BYTE_ORDER_MAGIC);
        assert_eq!(&bytes[12..14], &1u16.to_le_bytes());
        assert_eq!(le32(&bytes[24..]), 28, "SHB trailing length");
        assert_eq!(le32(&bytes[28..]), IDB_TYPE);
        assert_eq!(le32(&bytes[32..]), 20);
        assert_eq!(&bytes[36..38], &LINKTYPE_RAW.to_le_bytes());
        assert_eq!(le32(&bytes[44..]), 20, "IDB trailing length");
    }

    #[test]
    fn packet_blocks_pad_to_four_and_match_lengths() {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.write_packet(7, &[0xAA; 5]).unwrap(); // 5 bytes -> 3 pad
        w.write_packet(u64::from(u32::MAX) + 9, &[0xBB; 8]).unwrap(); // no pad
        assert_eq!(w.packets(), 2);
        let bytes = w.finish().unwrap();
        let epb1 = &bytes[48..];
        assert_eq!(le32(&epb1[0..]), EPB_TYPE);
        let total1 = le32(&epb1[4..]);
        assert_eq!(total1, 32 + 5 + 3);
        assert_eq!(le32(&epb1[12..]), 0, "ts high");
        assert_eq!(le32(&epb1[16..]), 7, "ts low");
        assert_eq!(le32(&epb1[20..]), 5, "captured len");
        assert_eq!(le32(&epb1[24..]), 5, "original len");
        assert_eq!(&epb1[28..33], &[0xAA; 5]);
        assert_eq!(&epb1[33..36], &[0; 3], "padding");
        assert_eq!(le32(&epb1[36..]), total1, "trailing length");
        let epb2 = &epb1[total1 as usize..];
        let total2 = le32(&epb2[4..]);
        assert_eq!(total2, 32 + 8);
        assert_eq!(le32(&epb2[12..]), 1, "ts high carries bit 32");
        assert_eq!(le32(&epb2[16..]), 8, "ts low wraps");
        assert_eq!(le32(&epb2[total2 as usize - 4..]), total2);
        assert_eq!(bytes.len(), 48 + total1 as usize + total2 as usize);
    }
}
