//! Longest-prefix-match forwarding table (binary trie).
//!
//! BGP's destination-based forwarding (section 2.1.1) performs a
//! longest-prefix match on the destination address: `12.34.56.78` matches
//! `12.34.0.0/16` unless a more specific `12.34.56.0/24` exists. This is
//! also how multi-homed stubs today hack inbound control by announcing
//! smaller subnets (section 1.2 footnote), so the experiments comparing
//! MIRO against that practice need a real LPM.

use crate::ipv4::Ipv4Addr4;

/// A prefix: address plus mask length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    pub addr: Ipv4Addr4,
    pub len: u8,
}

impl Prefix {
    /// Construct, canonicalizing host bits to zero. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length out of range");
        let raw = addr.to_u32();
        let masked = if len == 0 { 0 } else { raw & (!0u32 << (32 - len)) };
        Prefix { addr: Ipv4Addr4::from_u32(masked), len }
    }

    /// Does this prefix cover `addr`?
    pub fn covers(&self, addr: Ipv4Addr4) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = !0u32 << (32 - self.len);
        (addr.to_u32() & mask) == self.addr.to_u32()
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

#[derive(Default)]
struct Node<T> {
    children: [Option<Box<Node<T>>>; 2],
    value: Option<T>,
}

/// Counters from one [`PrefixTrie::lookup_batch`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Full trie descents performed.
    pub descents: usize,
    /// Lookups answered by reusing the previous walk.
    pub reused: usize,
}

/// Reusable scratch for the batched lookups. Holds the packed
/// `(address << 32) | input-index` sort keys and the radix scatter
/// buffer; reusing one scratch across bursts keeps the hot path
/// allocation-free.
#[derive(Default)]
pub struct LookupScratch {
    packed: Vec<u64>,
    tmp: Vec<u64>,
}

impl LookupScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Batches at or above this size are sorted with the byte-wise radix
/// sort; below it, `sort_unstable` on the packed keys wins.
const RADIX_MIN: usize = 128;

/// State a sorted batch walk carries from one address to the next:
/// `(address bits, bits consumed, stopped at a childless leaf, best match)`.
type PrevWalk<'a, T> = (u32, u8, bool, Option<(u8, &'a T)>);

/// LSD radix sort of packed `(address << 32) | index` words by the
/// address bits only (passes over the index half would be wasted work —
/// equal addresses need no particular order).
///
/// Two tricks keep the per-packet cost low enough to beat `sort_unstable`
/// on burst-sized inputs. First, `varying` (an OR/AND prescan the caller
/// computes while packing — address half, pre-shifted) gives the span of
/// address bits that differ at all, and the byte passes are aligned to
/// that span — route tables cover a sliver of the 32-bit space, so bursts
/// typically need two or three passes instead of four. Second, each
/// pass's histogram is built inside the *previous* pass's scatter loop
/// (LSD counts are order-independent), so after the first histogram every
/// sweep over the data does scatter work.
fn radix_sort_by_addr(data: &mut Vec<u64>, tmp: &mut Vec<u64>, varying: u64) {
    if varying == 0 {
        return; // every address in the batch is identical
    }
    let lo = varying.trailing_zeros();
    let hi = 63 - varying.leading_zeros();
    let span = (hi - lo + 1) as usize;
    tmp.clear();
    tmp.resize(data.len(), 0);
    // Narrow spans — the normal case once host bits below the deepest
    // prefix are masked off — sort in a single counting pass: one
    // histogram sweep, one scatter sweep, done.
    if span <= 11 {
        let shift = 32 + lo;
        let buckets = 1usize << span;
        let mask = (buckets - 1) as u64;
        let mut counts = [0u32; 2048];
        for &v in data.iter() {
            counts[((v >> shift) & mask) as usize] += 1;
        }
        let mut acc = 0u32;
        for c in counts[..buckets].iter_mut() {
            let start = acc;
            acc += *c;
            *c = start;
        }
        for &v in data.iter() {
            let b = ((v >> shift) & mask) as usize;
            tmp[counts[b] as usize] = v;
            counts[b] += 1;
        }
        std::mem::swap(data, tmp);
        return;
    }
    let passes = span.div_ceil(8);
    let mut hist = [[0u32; 256]; 2];
    for &v in data.iter() {
        hist[0][((v >> (32 + lo)) & 0xff) as usize] += 1;
    }
    let mut src_is_data = true;
    for p in 0..passes {
        let shift = 32 + lo + 8 * p as u32;
        let more = p + 1 < passes;
        // Prefix sums of this pass's (pre-built) histogram.
        let mut offs = [0u32; 256];
        let mut acc = 0u32;
        for b in 0..256 {
            offs[b] = acc;
            acc += hist[p & 1][b];
        }
        hist[(p + 1) & 1] = [0u32; 256];
        let next_hist = &mut hist[(p + 1) & 1];
        let (src, dst): (&Vec<u64>, &mut Vec<u64>) =
            if src_is_data { (data, tmp) } else { (tmp, data) };
        for &v in src.iter() {
            if more {
                next_hist[((v >> (shift + 8)) & 0xff) as usize] += 1;
            }
            let b = ((v >> shift) & 0xff) as usize;
            dst[offs[b] as usize] = v;
            offs[b] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        std::mem::swap(data, tmp);
    }
}

/// A binary trie keyed by IPv4 prefixes.
///
/// ```
/// use miro_dataplane::ipv4::Ipv4Addr4;
/// use miro_dataplane::lpm::{Prefix, PrefixTrie};
///
/// // The Table 1.1 situation: a /24 shadows the /16 it sits inside.
/// let mut t = PrefixTrie::new();
/// t.insert(Prefix::new(Ipv4Addr4::new(128, 112, 0, 0), 16), "via 10466");
/// t.insert(Prefix::new(Ipv4Addr4::new(128, 113, 11, 0), 24), "via 3754");
/// let (p, next) = t.lookup(Ipv4Addr4::new(128, 113, 11, 9)).unwrap();
/// assert_eq!(*next, "via 3754");
/// assert_eq!(p.len, 24);
/// ```
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
    /// Longest prefix length ever inserted — an upper bound on walk
    /// depth (removals leave it alone; it is a perf heuristic for the
    /// batched lookups, never a correctness input).
    max_len: u8,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie {
            root: Node { children: [None, None], value: None },
            len: 0,
            max_len: 0,
        }
    }
}

impl<T> PrefixTrie<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the entry for `prefix`. Returns the previous
    /// value if the prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let bits = prefix.addr.to_u32();
        self.max_len = self.max_len.max(prefix.len);
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b]
                .get_or_insert_with(|| Box::new(Node { children: [None, None], value: None }));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the entry for exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let bits = prefix.addr.to_u32();
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the most specific entry covering `addr`.
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<(Prefix, &T)> {
        let bits = addr.to_u32();
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = ((bits >> (31 - i)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(addr, len), v))
    }

    /// Batched longest-prefix match over `addrs`, equivalent to calling
    /// [`lookup`](Self::lookup) per address but amortizing trie work:
    /// indices are sorted by destination so equal and near-equal addresses
    /// become adjacent, and a walk is reused whenever the previous walk's
    /// outcome provably applies — the two addresses share every bit the
    /// previous descent consumed *including* the branch bit it stopped on,
    /// so the trie would visit the identical node sequence. On a
    /// Zipf-skewed burst most packets hit the reuse path and the trie is
    /// descended once per distinct destination run.
    ///
    /// `scratch` is caller scratch (reused across bursts); `out[i]`
    /// receives the result for `addrs[i]`. Returns descent/reuse counters
    /// so benches can report the amortization.
    pub fn lookup_batch<'a>(
        &'a self,
        addrs: &[Ipv4Addr4],
        scratch: &mut LookupScratch,
        out: &mut Vec<Option<(Prefix, &'a T)>>,
    ) -> BatchStats {
        out.clear();
        out.resize(addrs.len(), None);
        self.batch_walk(addrs, scratch, |i, addr, best| {
            out[i] = best.map(|(len, v)| (Prefix::new(addr, len), v));
        })
    }

    /// Shared core of the batched lookups: packs each address with its
    /// input index into one `u64` (the address is computed once, not per
    /// comparison), sorts the packed words — radix sort for large batches,
    /// `sort_unstable` below [`RADIX_MIN`] — then walks in sorted order
    /// with walk reuse, handing each result to `sink` in input index
    /// order (of delivery — not of iteration).
    fn batch_walk<'a>(
        &'a self,
        addrs: &[Ipv4Addr4],
        scratch: &mut LookupScratch,
        mut sink: impl FnMut(usize, Ipv4Addr4, Option<(u8, &'a T)>),
    ) -> BatchStats {
        let packed = &mut scratch.packed;
        packed.clear();
        packed.reserve(addrs.len());
        // Pack each address with its input index; the OR/AND prescan the
        // radix sort needs rides along in the same sweep.
        let mut all_or = 0u64;
        let mut all_and = !0u64;
        for (i, a) in addrs.iter().enumerate() {
            let word = (u64::from(a.to_u32()) << 32) | i as u64;
            all_or |= word;
            all_and &= word;
            packed.push(word);
        }
        if packed.len() >= RADIX_MIN {
            // Bits below the deepest stored prefix can never influence a
            // walk, so grouping by them is wasted sort work — reuse
            // soundness is re-checked against the full addresses anyway.
            let depth_mask = if self.max_len == 0 {
                0
            } else {
                u64::from(!0u32 << (32 - self.max_len))
            };
            let varying = ((all_or & !all_and) >> 32) & depth_mask;
            radix_sort_by_addr(packed, &mut scratch.tmp, varying);
        } else {
            packed.sort_unstable();
        }

        let mut stats = BatchStats { descents: 0, reused: 0 };
        // The previous walk: its address bits, how many bits the descent
        // consumed before stopping, whether it stopped at a childless
        // leaf, and the best (len, value) it found.
        let mut prev: Option<PrevWalk<'a, T>> = None;
        for &word in packed.iter() {
            let i = word as u32;
            let bits = (word >> 32) as u32;
            // The packed word already holds the address — rebuilding it
            // beats a random-access load of `addrs[i]` per packet.
            let addr = Ipv4Addr4::from_u32(bits);
            let best = match prev {
                // Reuse is sound when the addresses agree on every bit the
                // walk consumed plus the branch bit it stopped on (a
                // differing bit at 'depth' could find a child the old walk
                // never probed). When the walk ended at a *childless* node
                // no branch bit was consulted at all, so agreement on the
                // consumed bits alone is enough — on tables of uniform
                // leaf prefixes this makes every same-prefix packet a
                // reuse, not a coin flip on the next bit. A full 32-bit
                // walk reuses only on equality.
                Some((pbits, pdepth, pleaf, pbest))
                    if {
                        let shared = (pbits ^ bits).leading_zeros() as u8;
                        shared == 32
                            || shared > pdepth
                            || (pleaf && shared == pdepth)
                    } =>
                {
                    stats.reused += 1;
                    pbest
                }
                _ => {
                    stats.descents += 1;
                    let mut node = &self.root;
                    let mut best: Option<(u8, &T)> =
                        node.value.as_ref().map(|v| (0, v));
                    let mut depth = 0u8;
                    while depth < 32 {
                        let b = ((bits >> (31 - depth)) & 1) as usize;
                        match node.children[b].as_deref() {
                            Some(next) => {
                                node = next;
                                depth += 1;
                                if let Some(v) = node.value.as_ref() {
                                    best = Some((depth, v));
                                }
                            }
                            None => break,
                        }
                    }
                    let leaf = node.children[0].is_none() && node.children[1].is_none();
                    prev = Some((bits, depth, leaf, best));
                    best
                }
            };
            sink(i as usize, addr, best);
        }
        stats
    }

    /// [`lookup_batch`](Self::lookup_batch) for `Copy` values: matched
    /// values are copied out instead of borrowed, so results can live in
    /// long-lived scratch (the burst engine's forward lane) without tying
    /// it to the trie's lifetime.
    pub fn lookup_batch_copied(
        &self,
        addrs: &[Ipv4Addr4],
        scratch: &mut LookupScratch,
        out: &mut Vec<Option<T>>,
    ) -> BatchStats
    where
        T: Copy,
    {
        out.clear();
        out.resize(addrs.len(), None);
        self.batch_walk(addrs, scratch, |i, _addr, best| {
            out[i] = best.map(|(_, &v)| v);
        })
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let bits = prefix.addr.to_u32();
        let mut node = &self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::new(Ipv4Addr4::new(a, b, c, d), len)
    }

    #[test]
    fn longest_match_wins() {
        // The Table 1.1 / section 2.1.1 example: a /24 shadows the /16.
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 0, 0, 16), "via-16");
        t.insert(p(12, 34, 56, 0, 24), "via-24");
        let hit = t.lookup(Ipv4Addr4::new(12, 34, 56, 78)).unwrap();
        assert_eq!(*hit.1, "via-24");
        assert_eq!(hit.0, p(12, 34, 56, 0, 24));
        let hit = t.lookup(Ipv4Addr4::new(12, 34, 99, 1)).unwrap();
        assert_eq!(*hit.1, "via-16");
        assert!(t.lookup(Ipv4Addr4::new(99, 0, 0, 1)).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p(0, 0, 0, 0, 0), "default");
        t.insert(p(10, 0, 0, 0, 8), "ten");
        assert_eq!(*t.lookup(Ipv4Addr4::new(1, 2, 3, 4)).unwrap().1, "default");
        assert_eq!(*t.lookup(Ipv4Addr4::new(10, 2, 3, 4)).unwrap().1, "ten");
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p(10, 0, 0, 0, 8), 1), None);
        assert_eq!(t.insert(p(10, 0, 0, 0, 8), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p(10, 0, 0, 0, 8)), Some(&2));
        assert_eq!(t.remove(p(10, 0, 0, 0, 8)), Some(2));
        assert_eq!(t.remove(p(10, 0, 0, 0, 8)), None);
        assert!(t.is_empty());
        assert!(t.lookup(Ipv4Addr4::new(10, 1, 1, 1)).is_none());
    }

    #[test]
    fn host_bits_canonicalized() {
        assert_eq!(p(12, 34, 56, 78, 16), p(12, 34, 0, 0, 16));
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 56, 78, 16), "x");
        assert_eq!(t.get(p(12, 34, 0, 0, 16)), Some(&"x"));
    }

    #[test]
    fn covers() {
        assert!(p(128, 112, 0, 0, 16).covers(Ipv4Addr4::new(128, 112, 7, 7)));
        assert!(!p(128, 112, 0, 0, 16).covers(Ipv4Addr4::new(128, 113, 7, 7)));
        assert!(p(0, 0, 0, 0, 0).covers(Ipv4Addr4::new(255, 255, 255, 255)));
    }

    #[test]
    fn removing_specific_falls_back_to_general() {
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 0, 0, 16), "general");
        t.insert(p(12, 34, 56, 0, 24), "specific");
        t.remove(p(12, 34, 56, 0, 24));
        assert_eq!(*t.lookup(Ipv4Addr4::new(12, 34, 56, 78)).unwrap().1, "general");
    }

    #[test]
    fn batch_lookup_agrees_with_single_lookups() {
        let mut t = PrefixTrie::new();
        for i in 0u32..200 {
            let pr = Prefix::new(Ipv4Addr4::from_u32(i << 22), (8 + (i % 17)) as u8);
            t.insert(pr, i);
        }
        // Probes deliberately mix duplicates, near-neighbors (exercising
        // the shared-walk reuse), and scattered addresses.
        let mut probes = Vec::new();
        for probe in (0u32..=u32::MAX).step_by(0x0123_4567) {
            probes.push(Ipv4Addr4::from_u32(probe));
            probes.push(Ipv4Addr4::from_u32(probe)); // exact duplicate
            probes.push(Ipv4Addr4::from_u32(probe ^ 1)); // near-neighbor
            probes.push(Ipv4Addr4::from_u32(probe.wrapping_add(0x8000_0000)));
        }
        let mut scratch = LookupScratch::new();
        let mut out = Vec::new();
        let stats = t.lookup_batch(&probes, &mut scratch, &mut out);
        assert_eq!(out.len(), probes.len());
        assert!(stats.reused > 0, "duplicate-heavy batch must reuse walks");
        assert_eq!(stats.descents + stats.reused, probes.len());
        for (i, &a) in probes.iter().enumerate() {
            assert_eq!(
                out[i].map(|(p, &v)| (p, v)),
                t.lookup(a).map(|(p, &v)| (p, v)),
                "batch diverged at probe {a}"
            );
        }
    }

    #[test]
    fn batch_lookup_empty_and_single() {
        let mut t = PrefixTrie::new();
        t.insert(p(10, 0, 0, 0, 8), "ten");
        let mut scratch = LookupScratch::new();
        let mut out = Vec::new();
        let stats = t.lookup_batch(&[], &mut scratch, &mut out);
        assert_eq!(out.len(), 0);
        assert_eq!(stats, BatchStats::default());
        let one = [Ipv4Addr4::new(10, 1, 2, 3)];
        let stats = t.lookup_batch(&one, &mut scratch, &mut out);
        assert_eq!(stats.descents, 1);
        assert_eq!(out[0].map(|(_, &v)| v), Some("ten"));
    }

    #[test]
    fn dense_insertion_lookup_agrees_with_linear_scan() {
        let mut t = PrefixTrie::new();
        let mut table = Vec::new();
        for i in 0u32..200 {
            let pr = Prefix::new(Ipv4Addr4::from_u32(i << 22), (8 + (i % 17)) as u8);
            t.insert(pr, i);
            table.push((pr, i));
        }
        for probe in (0u32..=u32::MAX).step_by(0x0123_4567) {
            let addr = Ipv4Addr4::from_u32(probe);
            let expect = table
                .iter()
                .filter(|(pr, _)| pr.covers(addr))
                .max_by_key(|(pr, _)| pr.len)
                .map(|&(_, v)| v);
            assert_eq!(t.lookup(addr).map(|(_, &v)| v), expect, "addr {addr}");
        }
    }
}
