//! Longest-prefix-match forwarding table (binary trie).
//!
//! BGP's destination-based forwarding (section 2.1.1) performs a
//! longest-prefix match on the destination address: `12.34.56.78` matches
//! `12.34.0.0/16` unless a more specific `12.34.56.0/24` exists. This is
//! also how multi-homed stubs today hack inbound control by announcing
//! smaller subnets (section 1.2 footnote), so the experiments comparing
//! MIRO against that practice need a real LPM.

use crate::ipv4::Ipv4Addr4;

/// A prefix: address plus mask length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    pub addr: Ipv4Addr4,
    pub len: u8,
}

impl Prefix {
    /// Construct, canonicalizing host bits to zero. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length out of range");
        let raw = addr.to_u32();
        let masked = if len == 0 { 0 } else { raw & (!0u32 << (32 - len)) };
        Prefix { addr: Ipv4Addr4::from_u32(masked), len }
    }

    /// Does this prefix cover `addr`?
    pub fn covers(&self, addr: Ipv4Addr4) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = !0u32 << (32 - self.len);
        (addr.to_u32() & mask) == self.addr.to_u32()
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

#[derive(Default)]
struct Node<T> {
    children: [Option<Box<Node<T>>>; 2],
    value: Option<T>,
}

/// A binary trie keyed by IPv4 prefixes.
///
/// ```
/// use miro_dataplane::ipv4::Ipv4Addr4;
/// use miro_dataplane::lpm::{Prefix, PrefixTrie};
///
/// // The Table 1.1 situation: a /24 shadows the /16 it sits inside.
/// let mut t = PrefixTrie::new();
/// t.insert(Prefix::new(Ipv4Addr4::new(128, 112, 0, 0), 16), "via 10466");
/// t.insert(Prefix::new(Ipv4Addr4::new(128, 113, 11, 0), 24), "via 3754");
/// let (p, next) = t.lookup(Ipv4Addr4::new(128, 113, 11, 9)).unwrap();
/// assert_eq!(*next, "via 3754");
/// assert_eq!(p.len, 24);
/// ```
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie { root: Node { children: [None, None], value: None }, len: 0 }
    }
}

impl<T> PrefixTrie<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the entry for `prefix`. Returns the previous
    /// value if the prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let bits = prefix.addr.to_u32();
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b]
                .get_or_insert_with(|| Box::new(Node { children: [None, None], value: None }));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the entry for exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let bits = prefix.addr.to_u32();
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the most specific entry covering `addr`.
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<(Prefix, &T)> {
        let bits = addr.to_u32();
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = ((bits >> (31 - i)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(addr, len), v))
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let bits = prefix.addr.to_u32();
        let mut node = &self.root;
        for i in 0..prefix.len {
            let b = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::new(Ipv4Addr4::new(a, b, c, d), len)
    }

    #[test]
    fn longest_match_wins() {
        // The Table 1.1 / section 2.1.1 example: a /24 shadows the /16.
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 0, 0, 16), "via-16");
        t.insert(p(12, 34, 56, 0, 24), "via-24");
        let hit = t.lookup(Ipv4Addr4::new(12, 34, 56, 78)).unwrap();
        assert_eq!(*hit.1, "via-24");
        assert_eq!(hit.0, p(12, 34, 56, 0, 24));
        let hit = t.lookup(Ipv4Addr4::new(12, 34, 99, 1)).unwrap();
        assert_eq!(*hit.1, "via-16");
        assert!(t.lookup(Ipv4Addr4::new(99, 0, 0, 1)).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p(0, 0, 0, 0, 0), "default");
        t.insert(p(10, 0, 0, 0, 8), "ten");
        assert_eq!(*t.lookup(Ipv4Addr4::new(1, 2, 3, 4)).unwrap().1, "default");
        assert_eq!(*t.lookup(Ipv4Addr4::new(10, 2, 3, 4)).unwrap().1, "ten");
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p(10, 0, 0, 0, 8), 1), None);
        assert_eq!(t.insert(p(10, 0, 0, 0, 8), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p(10, 0, 0, 0, 8)), Some(&2));
        assert_eq!(t.remove(p(10, 0, 0, 0, 8)), Some(2));
        assert_eq!(t.remove(p(10, 0, 0, 0, 8)), None);
        assert!(t.is_empty());
        assert!(t.lookup(Ipv4Addr4::new(10, 1, 1, 1)).is_none());
    }

    #[test]
    fn host_bits_canonicalized() {
        assert_eq!(p(12, 34, 56, 78, 16), p(12, 34, 0, 0, 16));
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 56, 78, 16), "x");
        assert_eq!(t.get(p(12, 34, 0, 0, 16)), Some(&"x"));
    }

    #[test]
    fn covers() {
        assert!(p(128, 112, 0, 0, 16).covers(Ipv4Addr4::new(128, 112, 7, 7)));
        assert!(!p(128, 112, 0, 0, 16).covers(Ipv4Addr4::new(128, 113, 7, 7)));
        assert!(p(0, 0, 0, 0, 0).covers(Ipv4Addr4::new(255, 255, 255, 255)));
    }

    #[test]
    fn removing_specific_falls_back_to_general() {
        let mut t = PrefixTrie::new();
        t.insert(p(12, 34, 0, 0, 16), "general");
        t.insert(p(12, 34, 56, 0, 24), "specific");
        t.remove(p(12, 34, 56, 0, 24));
        assert_eq!(*t.lookup(Ipv4Addr4::new(12, 34, 56, 78)).unwrap().1, "general");
    }

    #[test]
    fn dense_insertion_lookup_agrees_with_linear_scan() {
        let mut t = PrefixTrie::new();
        let mut table = Vec::new();
        for i in 0u32..200 {
            let pr = Prefix::new(Ipv4Addr4::from_u32(i << 22), (8 + (i % 17)) as u8);
            t.insert(pr, i);
            table.push((pr, i));
        }
        for probe in (0u32..=u32::MAX).step_by(0x0123_4567) {
            let addr = Ipv4Addr4::from_u32(probe);
            let expect = table
                .iter()
                .filter(|(pr, _)| pr.covers(addr))
                .max_by_key(|(pr, _)| pr.len)
                .map(|&(_, v)| v);
            assert_eq!(t.lookup(addr).map(|(_, &v)| v), expect, "addr {addr}");
        }
    }
}
