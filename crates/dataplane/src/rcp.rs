//! A Routing Control Platform (RCP)-style controller for one AS
//! (section 4.1's second implementation option, plus the section 4.3
//! tunnel-health server).
//!
//! Instead of router-by-router iBGP coordination, "a separate service,
//! such as the Routing Control Platform, can manage the interdomain
//! routing information on behalf of the routers ... computes BGP paths on
//! behalf of the routers ... handles the requests from the customer's
//! routing control platform for alternate routes ... can also install the
//! data-plane state, such as tunneling tables or packet classifiers".
//! And for soft state: "these keep-alive messages can be directed to a
//! specialized central server in each AS; that server will monitor the
//! health for all tunnels and actively tear down unused ones".
//!
//! [`Rcp`] wraps an [`AsFabric`], centralizes route computation, answers
//! alternate-route queries, installs directed-forwarding state, and runs
//! the tunnel-health monitor on a virtual clock.

use crate::intra::AsFabric;
use crate::lpm::Prefix;
use std::collections::HashMap;

/// A tunnel registered with the controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RcpTunnel {
    pub tunnel_id: u32,
    /// The AS path sold.
    pub as_path: Vec<u32>,
    /// Egress router index and exit link installed for it.
    pub egress_router: usize,
    pub exit_link: u32,
    /// Last heartbeat (virtual time).
    pub last_heartbeat: u64,
}

/// Controller-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcpError {
    /// No edge router holds the requested AS path for the prefix.
    NoSuchPath,
    /// Unknown tunnel id.
    UnknownTunnel,
}

/// The per-AS routing control platform.
pub struct Rcp {
    fabric: AsFabric,
    tunnels: HashMap<u32, RcpTunnel>,
    next_id: u32,
    /// Tunnels reaped by the health monitor (id, expiry time).
    pub reaped: Vec<(u32, u64)>,
    /// Optional packet tracer (the smoltcp-style `--pcap` affordance);
    /// records every packet entering the fabric through the controller.
    pub tracer: Option<crate::trace::Tracer>,
    clock: std::cell::Cell<u64>,
}

impl Rcp {
    /// Take over a fabric: runs the centralized route computation
    /// immediately (the RCP "computes BGP paths on behalf of the
    /// routers").
    pub fn new(mut fabric: AsFabric) -> Rcp {
        fabric.run_ibgp();
        Rcp {
            fabric,
            tunnels: HashMap::new(),
            next_id: 1,
            reaped: Vec::new(),
            tracer: None,
            clock: std::cell::Cell::new(0),
        }
    }

    /// Read-only access to the managed fabric.
    pub fn fabric(&self) -> &AsFabric {
        &self.fabric
    }

    /// The MIRO alternate-route query (the RCP "handles the requests from
    /// the customer's routing control platform for alternate routes"):
    /// every valid AS path for the prefix present at any edge router,
    /// regardless of per-router best-path selection.
    pub fn alternates(&self, prefix: Prefix) -> Vec<Vec<u32>> {
        self.fabric.valid_as_paths(prefix)
    }

    /// Grant a tunnel on `as_path` for `prefix`: allocates the id, finds
    /// the edge router owning the path, and installs the directed-
    /// forwarding entry (the RCP "install\[s\] the data-plane state ... in
    /// the routers to direct traffic along the chosen paths").
    pub fn grant_tunnel(
        &mut self,
        prefix: Prefix,
        as_path: &[u32],
        now: u64,
    ) -> Result<u32, RcpError> {
        // Locate an edge router holding this exact path.
        let mut found: Option<(usize, u32)> = None;
        for r in 0..self.fabric.num_routers() {
            if let Some(e) = self
                .fabric
                .router(r)
                .ebgp
                .iter()
                .find(|e| e.prefix == prefix && e.as_path == as_path)
            {
                found = Some((r, e.exit_link));
                break;
            }
        }
        let (egress_router, exit_link) = found.ok_or(RcpError::NoSuchPath)?;
        let tunnel_id = self.next_id;
        self.next_id += 1;
        self.fabric
            .router_mut(egress_router)
            .tunnel_table
            .insert(tunnel_id, exit_link);
        self.tunnels.insert(
            tunnel_id,
            RcpTunnel {
                tunnel_id,
                as_path: as_path.to_vec(),
                egress_router,
                exit_link,
                last_heartbeat: now,
            },
        );
        Ok(tunnel_id)
    }

    /// Record an upstream keepalive for a tunnel (section 4.3's central
    /// health server).
    pub fn keepalive(&mut self, tunnel_id: u32, now: u64) -> Result<(), RcpError> {
        let t = self.tunnels.get_mut(&tunnel_id).ok_or(RcpError::UnknownTunnel)?;
        t.last_heartbeat = now;
        Ok(())
    }

    /// Health sweep: tear down (and uninstall from the routers) every
    /// tunnel whose heartbeat is older than `timeout`. Returns reaped ids.
    pub fn health_sweep(&mut self, now: u64, timeout: u64) -> Vec<u32> {
        let dead: Vec<u32> = self
            .tunnels
            .values()
            .filter(|t| now.saturating_sub(t.last_heartbeat) > timeout)
            .map(|t| t.tunnel_id)
            .collect();
        let mut dead = dead;
        dead.sort_unstable();
        for &id in &dead {
            let t = self.tunnels.remove(&id).expect("present");
            self.fabric.router_mut(t.egress_router).tunnel_table.remove(&id);
            self.reaped.push((id, now));
        }
        dead
    }

    /// Explicit teardown (active, e.g. on a route change observed by the
    /// controller).
    pub fn teardown(&mut self, tunnel_id: u32) -> Result<(), RcpError> {
        let t = self.tunnels.remove(&tunnel_id).ok_or(RcpError::UnknownTunnel)?;
        self.fabric.router_mut(t.egress_router).tunnel_table.remove(&tunnel_id);
        Ok(())
    }

    /// A registered tunnel.
    pub fn tunnel(&self, id: u32) -> Option<&RcpTunnel> {
        self.tunnels.get(&id)
    }

    /// Live tunnel count.
    pub fn live_tunnels(&self) -> usize {
        self.tunnels.len()
    }

    /// Packet entry point: forwarding is delegated to the fabric, whose
    /// tables this controller manages.
    pub fn forward(&self, ingress: usize, packet: bytes::Bytes) -> crate::intra::Forwarded {
        self.fabric.forward(ingress, packet)
    }

    /// Traced variant: records the packet (rx) and, when it leaves the AS,
    /// the transmitted bytes (tx) in [`Rcp::tracer`].
    pub fn forward_traced(
        &mut self,
        ingress: usize,
        packet: bytes::Bytes,
        now: u64,
    ) -> crate::intra::Forwarded {
        self.clock.set(now);
        if let Some(tr) = &mut self.tracer {
            tr.record(now, crate::trace::Dir::Rx, packet.clone());
        }
        let out = self.fabric.forward(ingress, packet);
        if let Some(tr) = &mut self.tracer {
            match &out {
                crate::intra::Forwarded::Exit { packet, .. } => {
                    tr.record(now, crate::trace::Dir::Tx, packet.clone())
                }
                crate::intra::Forwarded::TunnelExit { inner, .. } => {
                    tr.record(now, crate::trace::Dir::Tx, inner.clone())
                }
                crate::intra::Forwarded::NoRoute => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encap;
    use crate::intra::{figure_4_1, Forwarded};
    use crate::ipv4::{Ipv4Addr4, Ipv4Header};

    fn u_prefix() -> Prefix {
        Prefix::new(Ipv4Addr4::new(60, 0, 0, 0), 8)
    }

    fn rcp() -> Rcp {
        Rcp::new(figure_4_1(u_prefix()))
    }

    #[test]
    fn controller_answers_alternate_queries() {
        let r = rcp();
        let alts = r.alternates(u_prefix());
        assert_eq!(alts.len(), 2);
        assert!(alts.contains(&vec![500, 600]));
        assert!(alts.contains(&vec![700, 600]));
        assert!(r.alternates(Prefix::new(Ipv4Addr4::new(99, 0, 0, 0), 8)).is_empty());
    }

    #[test]
    fn grant_installs_directed_forwarding_end_to_end() {
        let mut r = rcp();
        let tid = r.grant_tunnel(u_prefix(), &[500, 600], 0).expect("path exists");
        let t = r.tunnel(tid).expect("registered");
        assert_eq!(t.egress_router, 1, "VU lives at R2");
        assert_eq!(t.exit_link, 20);
        // A packet through the granted tunnel takes the V exit.
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            0,
        )
        .emit_with_payload(b"");
        let endpoint = r.fabric().router(1).addr;
        let wire =
            encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), endpoint, tid).expect("fits");
        match r.forward(0, wire) {
            Forwarded::TunnelExit { link, .. } => assert_eq!(link, 20),
            other => panic!("expected tunnel exit, got {other:?}"),
        }
    }

    #[test]
    fn grant_refuses_unknown_paths() {
        let mut r = rcp();
        assert_eq!(
            r.grant_tunnel(u_prefix(), &[999, 600], 0),
            Err(RcpError::NoSuchPath)
        );
        assert_eq!(r.live_tunnels(), 0);
    }

    #[test]
    fn health_monitor_reaps_silent_tunnels_and_uninstalls_state() {
        let mut r = rcp();
        let a = r.grant_tunnel(u_prefix(), &[500, 600], 0).expect("ok");
        let b = r.grant_tunnel(u_prefix(), &[700, 600], 0).expect("ok");
        r.keepalive(a, 50).expect("known");
        let dead = r.health_sweep(60, 30);
        assert_eq!(dead, vec![b], "only the silent tunnel dies");
        assert_eq!(r.live_tunnels(), 1);
        assert_eq!(r.reaped, vec![(b, 60)]);
        // The router state for b is gone: packets on it are dropped.
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            0,
        )
        .emit_with_payload(b"");
        let egress = r.tunnel(a).expect("alive").egress_router;
        let _ = egress;
        let dead_endpoint = r.fabric().router(1).addr;
        let wire = encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), dead_endpoint, b)
            .expect("fits");
        assert_eq!(r.forward(0, wire), Forwarded::NoRoute);
    }

    #[test]
    fn explicit_teardown_and_unknown_ids() {
        let mut r = rcp();
        let a = r.grant_tunnel(u_prefix(), &[700, 600], 0).expect("ok");
        assert_eq!(r.teardown(a), Ok(()));
        assert_eq!(r.teardown(a), Err(RcpError::UnknownTunnel));
        assert_eq!(r.keepalive(a, 1), Err(RcpError::UnknownTunnel));
    }

    #[test]
    fn tunnel_ids_are_unique_and_monotone() {
        let mut r = rcp();
        let a = r.grant_tunnel(u_prefix(), &[500, 600], 0).expect("ok");
        let b = r.grant_tunnel(u_prefix(), &[500, 600], 0).expect("ok");
        assert!(b > a, "ids never reused even for the same path");
        assert_eq!(r.live_tunnels(), 2);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::encap;
    use crate::intra::figure_4_1;
    use crate::ipv4::{Ipv4Addr4, Ipv4Header};
    use crate::lpm::Prefix;
    use crate::trace::Tracer;

    #[test]
    fn traced_forwarding_records_rx_and_tx() {
        let u_prefix = Prefix::new(Ipv4Addr4::new(60, 0, 0, 0), 8);
        let mut r = Rcp::new(figure_4_1(u_prefix));
        r.tracer = Some(Tracer::new(16));
        let tid = r.grant_tunnel(u_prefix, &[500, 600], 0).expect("ok");
        let endpoint = r.fabric().router(1).addr;
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            0,
        )
        .emit_with_payload(b"");
        let wire =
            encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), endpoint, tid).expect("fits");
        let _ = r.forward_traced(0, wire, 42);
        let tracer = r.tracer.as_ref().expect("installed");
        assert_eq!(tracer.seen, 2, "rx + tx recorded");
        let text = tracer.render();
        assert!(text.contains("rx MIRO tunnel 1"), "{text}");
        assert!(text.contains("tx 9.9.9.9 -> 60.1.2.3"), "{text}");
        assert!(text.contains("[    42]"), "{text}");
    }
}
