//! The intra-AS architecture of section 4.1 (Figure 4.1).
//!
//! A real AS has many routers; edge routers learn routes over eBGP and
//! redistribute them over iBGP, and each router runs the full Table 2.1
//! decision process independently — so two edge routers can stand by
//! *different* AS paths (each prefers its own eBGP route at step 5), and
//! an internal router picks between them by IGP distance (step 6). MIRO
//! exploits exactly this: any valid AS path present at any edge router can
//! be sold as an alternate, with the tunnel ending at that edge router and
//! *directed forwarding* (tunnel id -> exit link) pushing decapsulated
//! packets out the non-default link.

use crate::encap;
use crate::ipv4::Ipv4Addr4;
use crate::lpm::{Prefix, PrefixTrie};
use bytes::Bytes;
use miro_bgp::decision::{select_best, Origin, RouteAttrs};
use std::collections::HashMap;

/// A route learned over an eBGP session at some edge router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EbgpRoute {
    pub prefix: Prefix,
    /// AS-level path as received (neighbor AS first).
    pub as_path: Vec<u32>,
    pub local_pref: u32,
    pub med: u32,
    /// The neighboring AS it came from.
    pub neighbor_as: u32,
    /// Address of the advertising interface (decision step 8).
    pub peer_addr: Ipv4Addr4,
    /// The exit link this route forwards onto.
    pub exit_link: u32,
}

/// A router's converged choice for one prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selected {
    pub as_path: Vec<u32>,
    /// The edge router owning the eBGP session (egress point).
    pub egress_router: usize,
    pub exit_link: u32,
    /// Whether this router learned it over eBGP itself.
    pub ebgp: bool,
}

/// One router.
pub struct Router {
    /// Loopback address (tunnel endpoint under the per-router scheme).
    pub addr: Ipv4Addr4,
    /// Routes learned over this router's own eBGP sessions.
    pub ebgp: Vec<EbgpRoute>,
    /// Directed forwarding state: tunnel id -> exit link (section 4.1's
    /// footnote: "this functionality ... is already implemented in some
    /// routers").
    pub tunnel_table: HashMap<u32, u32>,
    /// Converged selections, one per prefix.
    pub selected: Vec<(Prefix, Selected)>,
}

/// What happened to a packet injected into the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Forwarded {
    /// Left the AS on this exit link (with the packet as transmitted).
    Exit { link: u32, packet: Bytes, via_routers: Vec<usize> },
    /// Decapsulated at a tunnel endpoint and then directed out a link.
    TunnelExit { link: u32, inner: Bytes, endpoint_router: usize },
    /// No route (dropped).
    NoRoute,
}

/// An AS's internal fabric: routers, IGP costs, and the iBGP fixpoint.
pub struct AsFabric {
    pub asn: u32,
    routers: Vec<Router>,
    /// All-pairs IGP distances.
    igp: Vec<Vec<u32>>,
    /// BGP ADD-PATH capability (section 4.1: "The recently proposed BGP
    /// ADD-PATH capability can also be used to expose the additional
    /// paths to another BGP speaker"): when enabled, iBGP carries *every*
    /// eBGP route, not just each router's best, so any router can answer
    /// a MIRO alternate query locally.
    add_path: bool,
    /// Optional single-reserved-address tunnel endpoint scheme
    /// (section 4.2): ingress routers rewrite the reserved destination to
    /// a concrete egress router per tunnel id.
    endpoint_scheme: Option<crate::encap::EndpointScheme>,
}

impl AsFabric {
    /// Build from routers and internal links `(a, b, igp_cost)`; distances
    /// come from Floyd-Warshall. Panics on out-of-range router indices.
    pub fn new(asn: u32, routers: Vec<Router>, links: &[(usize, usize, u32)]) -> AsFabric {
        let n = routers.len();
        const INF: u32 = u32::MAX / 4;
        let mut igp = vec![vec![INF; n]; n];
        for (i, row) in igp.iter_mut().enumerate() {
            row[i] = 0;
        }
        for &(a, b, c) in links {
            igp[a][b] = igp[a][b].min(c);
            igp[b][a] = igp[b][a].min(c);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = igp[i][k].saturating_add(igp[k][j]);
                    if via < igp[i][j] {
                        igp[i][j] = via;
                    }
                }
            }
        }
        AsFabric { asn, routers, igp, add_path: false, endpoint_scheme: None }
    }

    /// Negotiate the ADD-PATH capability on the iBGP mesh.
    pub fn enable_add_path(&mut self) {
        self.add_path = true;
    }

    /// Install the single-reserved-address endpoint scheme (section 4.2's
    /// third option); `None` reverts to per-router loopback endpoints.
    pub fn set_endpoint_scheme(&mut self, scheme: Option<crate::encap::EndpointScheme>) {
        self.endpoint_scheme = scheme;
    }

    /// The alternate AS paths *visible at one router* for MIRO queries:
    /// with ADD-PATH every eBGP route anywhere in the fabric is visible
    /// everywhere; without it a router only sees its own eBGP routes plus
    /// each other router's single best (the classic iBGP restriction the
    /// first option of section 4.1 works around with explicit requests).
    pub fn candidates_at(&self, router: usize, prefix: Prefix) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = if self.add_path {
            self.valid_as_paths(prefix)
        } else {
            let mut v: Vec<Vec<u32>> = self.routers[router]
                .ebgp
                .iter()
                .filter(|e| e.prefix == prefix)
                .map(|e| e.as_path.clone())
                .collect();
            for (r, other) in self.routers.iter().enumerate() {
                if r == router {
                    continue;
                }
                // The other router's best own-eBGP route, as iBGP carries.
                let cands: Vec<&EbgpRoute> =
                    other.ebgp.iter().filter(|e| e.prefix == prefix).collect();
                let attrs: Vec<RouteAttrs> =
                    cands.iter().map(|e| attrs_of(e, true, 0, 0)).collect();
                if let Some(i) = select_best(&attrs) {
                    v.push(cands[i].as_path.clone());
                }
            }
            v.sort();
            v.dedup();
            v
        };
        out.sort();
        out
    }

    /// IGP distance between two routers.
    pub fn igp_dist(&self, a: usize, b: usize) -> u32 {
        self.igp[a][b]
    }

    pub fn router(&self, i: usize) -> &Router {
        &self.routers[i]
    }

    pub fn router_mut(&mut self, i: usize) -> &mut Router {
        &mut self.routers[i]
    }

    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Run iBGP (full mesh) to a fixpoint: each router selects among its
    /// own eBGP routes and every other router's *eBGP-selected* route
    /// (standard full-mesh iBGP does not re-reflect iBGP-learned routes).
    pub fn run_ibgp(&mut self) {
        // Collect the prefix universe.
        let mut prefixes: Vec<Prefix> = self
            .routers
            .iter()
            .flat_map(|r| r.ebgp.iter().map(|e| e.prefix))
            .collect();
        prefixes.sort_by_key(|p| (p.addr.to_u32(), p.len));
        prefixes.dedup();

        for &prefix in &prefixes {
            // Step 1: each edge router picks its best own-eBGP route.
            let own_best: Vec<Option<EbgpRoute>> = self
                .routers
                .iter()
                .map(|r| {
                    let cands: Vec<&EbgpRoute> =
                        r.ebgp.iter().filter(|e| e.prefix == prefix).collect();
                    let attrs: Vec<RouteAttrs> =
                        cands.iter().map(|e| attrs_of(e, true, 0, 0)).collect();
                    select_best(&attrs).map(|i| cands[i].clone())
                })
                .collect();
            // Step 2: every router selects among its own eBGP best and the
            // other routers' eBGP bests (seen over iBGP with its own IGP
            // distance). One pass suffices in a full mesh: the candidate
            // set of every router is fixed by `own_best`.
            for r in 0..self.routers.len() {
                let mut attrs = Vec::new();
                let mut meta = Vec::new();
                for (egress, ob) in own_best.iter().enumerate() {
                    let Some(e) = ob else { continue };
                    let ebgp = egress == r;
                    let dist = if ebgp { 0 } else { self.igp[r][egress] };
                    attrs.push(attrs_of(e, ebgp, dist, egress as u32));
                    meta.push((egress, e));
                }
                let sel = select_best(&attrs).map(|i| {
                    let (egress, e) = meta[i];
                    Selected {
                        as_path: e.as_path.clone(),
                        egress_router: egress,
                        exit_link: e.exit_link,
                        ebgp: egress == r,
                    }
                });
                let router = &mut self.routers[r];
                router.selected.retain(|(p, _)| *p != prefix);
                if let Some(s) = sel {
                    router.selected.push((prefix, s));
                }
            }
        }
    }

    /// Every distinct AS path present at any edge router for `prefix` —
    /// the alternates MIRO can sell beyond the per-router defaults
    /// (section 4.1: "an AS is allowed to advertise any valid AS paths on
    /// any of its edge routers").
    pub fn valid_as_paths(&self, prefix: Prefix) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = self
            .routers
            .iter()
            .flat_map(|r| r.ebgp.iter())
            .filter(|e| e.prefix == prefix)
            .map(|e| e.as_path.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Forward a packet injected at `ingress`. Tunnel endpoints are the
    /// router loopbacks (the per-egress-router scheme); anything else is
    /// destination-based LPM over the router's converged selections.
    pub fn forward(&self, ingress: usize, packet: Bytes) -> Forwarded {
        let Ok((hdr, _payload)) = crate::ipv4::Ipv4Header::parse(packet.clone()) else {
            return Forwarded::NoRoute;
        };
        // Single-reserved-address scheme (section 4.2's third option):
        // the ingress router rewrites the reserved destination to the
        // chosen egress router before anything else looks at the packet.
        if let Some(scheme) = &self.endpoint_scheme {
            if let Ok((_, shim, _)) = encap::decapsulate(packet.clone()) {
                if let Some(rewritten) = scheme.ingress_rewrite(hdr.dst, shim.tunnel_id) {
                    if rewritten != hdr.dst {
                        // Rebuild the outer header with the concrete
                        // egress address; the inner packet is untouched.
                        let (outer, mut payload_and_rest) =
                            crate::ipv4::Ipv4Header::parse(packet.clone())
                                .expect("parsed above");
                        let mut new_outer = outer.clone();
                        new_outer.dst = rewritten;
                        let mut rest = Vec::with_capacity(payload_and_rest.len());
                        use bytes::Buf as _;
                        while payload_and_rest.has_remaining() {
                            rest.push(payload_and_rest.get_u8());
                        }
                        let rewritten_packet = new_outer.emit_with_payload(&rest);
                        return self.forward(ingress, rewritten_packet);
                    }
                }
            }
        }
        // Tunnel endpoint?
        if let Some(endpoint) =
            self.routers.iter().position(|r| r.addr == hdr.dst)
        {
            if let Ok((_, shim, inner)) = encap::decapsulate(packet.clone()) {
                if let Some(&link) =
                    self.routers[endpoint].tunnel_table.get(&shim.tunnel_id)
                {
                    // Directed forwarding: the tunnel id names the exit
                    // link, overriding the default route.
                    return Forwarded::TunnelExit { link, inner, endpoint_router: endpoint };
                }
            }
            return Forwarded::NoRoute;
        }
        // Ordinary destination-based forwarding: LPM at the ingress
        // router, then ride the IGP to the egress.
        let mut trie: PrefixTrie<&Selected> = PrefixTrie::new();
        for (p, s) in &self.routers[ingress].selected {
            trie.insert(*p, s);
        }
        match trie.lookup(hdr.dst) {
            Some((_, sel)) => Forwarded::Exit {
                link: sel.exit_link,
                packet,
                via_routers: vec![ingress, sel.egress_router],
            },
            None => Forwarded::NoRoute,
        }
    }
}

fn attrs_of(e: &EbgpRoute, ebgp: bool, igp_dist: u32, router_id: u32) -> RouteAttrs {
    RouteAttrs {
        local_pref: e.local_pref,
        as_path_len: e.as_path.len() as u32,
        origin: Origin::Igp,
        med: e.med,
        neighbor_as: e.neighbor_as,
        ebgp,
        igp_dist,
        router_id,
        peer_addr: e.peer_addr.to_u32(),
    }
}

/// Build the Figure 4.1 fabric: AS X with internal router R1 and edge
/// routers R2 (sessions to V and W) and R3 (session to W), learning paths
/// VU and WU toward prefix `u_prefix`. Returns the fabric; exit links are
/// 20 (X->V at R2), 21 (X->W at R2), 22 (X->W at R3).
pub fn figure_4_1(u_prefix: Prefix) -> AsFabric {
    let vu = |peer: Ipv4Addr4, link| EbgpRoute {
        prefix: u_prefix,
        as_path: vec![500, 600], // V, U
        local_pref: 100,
        med: 0,
        neighbor_as: 500,
        peer_addr: peer,
        exit_link: link,
    };
    let wu = |peer: Ipv4Addr4, link| EbgpRoute {
        prefix: u_prefix,
        as_path: vec![700, 600], // W, U
        local_pref: 100,
        med: 0,
        neighbor_as: 700,
        peer_addr: peer,
        exit_link: link,
    };
    let r1 = Router {
        addr: Ipv4Addr4::new(12, 34, 56, 1),
        ebgp: vec![],
        tunnel_table: HashMap::new(),
        selected: vec![],
    };
    let r2 = Router {
        addr: Ipv4Addr4::new(12, 34, 56, 2),
        // V's interface has the lower address, so step 8 picks VU at R2.
        ebgp: vec![vu(Ipv4Addr4::new(10, 0, 0, 1), 20), wu(Ipv4Addr4::new(10, 0, 0, 9), 21)],
        tunnel_table: HashMap::new(),
        selected: vec![],
    };
    let r3 = Router {
        addr: Ipv4Addr4::new(12, 34, 56, 3),
        ebgp: vec![wu(Ipv4Addr4::new(10, 0, 1, 9), 22)],
        tunnel_table: HashMap::new(),
        selected: vec![],
    };
    // R1 is closer to R2 than to R3.
    let mut fabric = AsFabric::new(100, vec![r1, r2, r3], &[(0, 1, 5), (0, 2, 8), (1, 2, 10)]);
    fabric.run_ibgp();
    fabric
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Header;

    fn u_prefix() -> Prefix {
        Prefix::new(Ipv4Addr4::new(60, 0, 0, 0), 8)
    }

    fn fabric() -> AsFabric {
        figure_4_1(u_prefix())
    }

    fn sel(f: &AsFabric, r: usize) -> &Selected {
        &f.router(r).selected.iter().find(|(p, _)| *p == u_prefix()).unwrap().1
    }

    #[test]
    fn r2_and_r3_stand_by_different_paths() {
        // The section 4.1 walkthrough: R2 picks VU (its own eBGP, step 8
        // tie-break); R3 sticks to WU (its own eBGP beats R2's iBGP at
        // step 5) — two different AS paths live in one AS.
        let f = fabric();
        assert_eq!(sel(&f, 1).as_path, vec![500, 600], "R2 selects VU");
        assert!(sel(&f, 1).ebgp);
        assert_eq!(sel(&f, 2).as_path, vec![700, 600], "R3 selects WU");
        assert!(sel(&f, 2).ebgp);
    }

    #[test]
    fn r1_breaks_the_tie_by_igp_distance() {
        let f = fabric();
        // R1 hears (VU via R2, dist 5) and (WU via R3, dist 8): step 6.
        let s = sel(&f, 0);
        assert_eq!(s.as_path, vec![500, 600]);
        assert_eq!(s.egress_router, 1);
        assert!(!s.ebgp);
    }

    #[test]
    fn fabric_exposes_all_valid_paths_for_miro() {
        let f = fabric();
        let paths = f.valid_as_paths(u_prefix());
        assert_eq!(paths.len(), 2, "both VU and WU are sellable alternates");
        assert!(paths.contains(&vec![500, 600]));
        assert!(paths.contains(&vec![700, 600]));
    }

    #[test]
    fn default_forwarding_uses_lpm_and_egress() {
        let f = fabric();
        let pkt = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            0,
        )
        .emit_with_payload(b"");
        match f.forward(0, pkt) {
            Forwarded::Exit { link, via_routers, .. } => {
                assert_eq!(link, 20, "R1's choice exits via R2's link to V");
                assert_eq!(via_routers, vec![0, 1]);
            }
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn directed_forwarding_overrides_the_default() {
        // The MIRO scenario: both R2/R3 would default via W, but tunnel 7
        // ends at R2 and is pinned to the V link — decapsulated packets
        // exit via XV regardless of the default (section 4.1).
        let mut f = fabric();
        f.router_mut(1).tunnel_table.insert(7, 20);
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            4,
        )
        .emit_with_payload(b"data");
        let endpoint = f.router(1).addr;
        let pkt = encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), endpoint, 7).unwrap();
        match f.forward(0, pkt) {
            Forwarded::TunnelExit { link, inner: got, endpoint_router } => {
                assert_eq!(link, 20);
                assert_eq!(endpoint_router, 1);
                assert_eq!(got, inner, "original packet intact after decap");
            }
            other => panic!("expected tunnel exit, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tunnel_id_is_dropped() {
        let f = fabric();
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            0,
        )
        .emit_with_payload(b"");
        let pkt =
            encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), f.router(1).addr, 99).unwrap();
        assert_eq!(f.forward(0, pkt), Forwarded::NoRoute);
    }

    #[test]
    fn no_route_is_reported() {
        let f = fabric();
        let pkt = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(200, 0, 0, 1),
            6,
            0,
        )
        .emit_with_payload(b"");
        assert_eq!(f.forward(0, pkt), Forwarded::NoRoute);
    }

    #[test]
    fn med_prefers_lower_within_same_neighbor() {
        // Two sessions to the same neighbor AS with different MEDs: the
        // lower MED wins at step 4 even with a higher peer address.
        let mk = |med, peer, link| EbgpRoute {
            prefix: u_prefix(),
            as_path: vec![700, 600],
            local_pref: 100,
            med,
            neighbor_as: 700,
            peer_addr: Ipv4Addr4::new(10, 0, 0, peer),
            exit_link: link,
        };
        let r = Router {
            addr: Ipv4Addr4::new(1, 1, 1, 1),
            ebgp: vec![mk(20, 1, 30), mk(10, 9, 31)],
            tunnel_table: HashMap::new(),
            selected: vec![],
        };
        let mut f = AsFabric::new(100, vec![r], &[]);
        f.run_ibgp();
        assert_eq!(sel(&f, 0).exit_link, 31, "lower MED wins");
    }

    #[test]
    fn single_address_scheme_rewrites_then_directed_forwards() {
        // Section 4.2's third option, at forwarding level: the upstream
        // addresses packets to one reserved address; the ingress router
        // rewrites to the tunnel's egress router; directed forwarding
        // then picks the exit link. No internal topology was revealed.
        let mut f = fabric();
        let reserved = Ipv4Addr4::new(12, 34, 56, 100);
        f.router_mut(1).tunnel_table.insert(7, 20);
        f.set_endpoint_scheme(Some(crate::encap::EndpointScheme::SingleAddress {
            address: reserved,
            egress_map: vec![(7, vec![f.router(1).addr])],
        }));
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(9, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            6,
            4,
        )
        .emit_with_payload(b"data");
        // The upstream only ever learned the reserved address.
        let pkt = encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), reserved, 7).unwrap();
        match f.forward(0, pkt) {
            Forwarded::TunnelExit { link, inner: got, endpoint_router } => {
                assert_eq!(link, 20);
                assert_eq!(endpoint_router, 1);
                assert_eq!(got, inner, "inner packet survives the rewrite");
            }
            other => panic!("expected tunnel exit, got {other:?}"),
        }
        // A tunnel id the map does not know keeps the reserved address
        // unrewritten and the packet goes nowhere.
        let pkt = encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), reserved, 99).unwrap();
        assert_eq!(f.forward(0, pkt), Forwarded::NoRoute);
        // Without the scheme, the reserved address means nothing.
        f.set_endpoint_scheme(None);
        let pkt = encap::encapsulate(&inner, Ipv4Addr4::new(8, 8, 8, 8), reserved, 7).unwrap();
        assert_eq!(f.forward(0, pkt), Forwarded::NoRoute);
    }

    #[test]
    fn add_path_widens_visibility_at_every_router() {
        // Without ADD-PATH, R3 sees its own WU plus R2's single best (VU):
        // R2's second route (WU via R2) stays invisible over classic iBGP.
        // Enable ADD-PATH and every route is visible everywhere.
        let mut f = fabric();
        // Classic: R1 (no eBGP) sees each edge router's best only.
        let classic_r1 = f.candidates_at(0, u_prefix());
        assert_eq!(classic_r1.len(), 2); // VU (R2's best) + WU (R3's best)
        // R2 sees both its own routes plus R3's best = still {VU, WU}.
        let classic_r2 = f.candidates_at(1, u_prefix());
        assert_eq!(classic_r2.len(), 2);
        f.enable_add_path();
        for r in 0..f.num_routers() {
            assert_eq!(
                f.candidates_at(r, u_prefix()),
                f.valid_as_paths(u_prefix()),
                "ADD-PATH exposes the full path set at router {r}"
            );
        }
    }

    #[test]
    fn igp_distances_are_shortest_paths() {
        let f = fabric();
        assert_eq!(f.igp_dist(0, 1), 5);
        assert_eq!(f.igp_dist(0, 2), 8);
        assert_eq!(f.igp_dist(1, 2), 10);
        assert_eq!(f.igp_dist(2, 2), 0);
    }
}
