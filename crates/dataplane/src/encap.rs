//! IP-in-IP encapsulation with the MIRO shim, and the three
//! tunnel-endpoint addressing schemes of section 4.2.
//!
//! On tunnel entry the upstream AS wraps the original packet in a new
//! outer IPv4 header addressed to the downstream AS's tunnel endpoint;
//! between the two sits an 8-byte MIRO shim carrying the tunnel
//! identifier (needed because an egress router may serve many tunnels and
//! must pick the right exit link — "directed forwarding"). On exit, shim
//! and outer header are stripped to reveal the original packet, possibly
//! itself another tunnel ("a tunnel inside another tunnel").

use crate::ipv4::{Ipv4Addr4, Ipv4Error, Ipv4Header, PROTO_MIRO};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors from tunnel encapsulation/decapsulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncapError {
    /// Outer or inner IPv4 header failed to parse.
    Ip(Ipv4Error),
    /// The outer protocol is not the MIRO shim.
    NotMiro,
    /// Shim truncated or bad magic.
    BadShim,
    /// Inner packet exceeds what the 16-bit total-length field can carry.
    TooLarge,
}

impl From<Ipv4Error> for EncapError {
    fn from(e: Ipv4Error) -> Self {
        EncapError::Ip(e)
    }
}

impl std::fmt::Display for EncapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncapError::Ip(e) => write!(f, "ip: {e}"),
            EncapError::NotMiro => write!(f, "outer protocol is not MIRO"),
            EncapError::BadShim => write!(f, "malformed MIRO shim"),
            EncapError::TooLarge => write!(f, "inner packet too large"),
        }
    }
}

impl std::error::Error for EncapError {}

/// The 8-byte MIRO shim: magic, version, flags, tunnel id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MiroShim {
    pub tunnel_id: u32,
    pub flags: u8,
}

impl MiroShim {
    pub const LEN: usize = 8;
    const MAGIC: u8 = 0x4d; // 'M'
    const VERSION: u8 = 1;

    pub fn emit(&self, buf: &mut BytesMut) {
        buf.put_u8(Self::MAGIC);
        buf.put_u8(Self::VERSION);
        buf.put_u8(self.flags);
        buf.put_u8(0); // reserved
        buf.put_u32(self.tunnel_id);
    }

    pub fn parse(data: &mut Bytes) -> Result<MiroShim, EncapError> {
        let shim = Self::parse_slice(data)?;
        data.advance(Self::LEN);
        Ok(shim)
    }

    /// Zero-copy parse of the shim at the head of `data` (no cursor).
    pub fn parse_slice(data: &[u8]) -> Result<MiroShim, EncapError> {
        if data.len() < Self::LEN {
            return Err(EncapError::BadShim);
        }
        if data[0] != Self::MAGIC || data[1] != Self::VERSION {
            return Err(EncapError::BadShim);
        }
        Ok(MiroShim {
            tunnel_id: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            flags: data[2],
        })
    }
}

/// Wrap `inner` (a complete IPv4 packet) for tunnel `tunnel_id` toward
/// `endpoint`, sourced from `ingress`.
///
/// Allocates a fresh buffer per call; hot paths should hold a scratch
/// `BytesMut` and use [`encapsulate_into`] instead.
pub fn encapsulate(
    inner: &Bytes,
    ingress: Ipv4Addr4,
    endpoint: Ipv4Addr4,
    tunnel_id: u32,
) -> Result<Bytes, EncapError> {
    let mut buf = BytesMut::with_capacity(Ipv4Header::LEN + MiroShim::LEN + inner.len());
    encapsulate_into(inner, ingress, endpoint, tunnel_id, &mut buf)?;
    Ok(buf.freeze())
}

/// [`encapsulate`] into caller-owned scratch: appends the encapsulated
/// packet (outer header, shim, inner bytes) to `out` without allocating.
/// `out` is not cleared — the burst engine packs many packets into one
/// arena and slices them back out by offset.
pub fn encapsulate_into(
    inner: &[u8],
    ingress: Ipv4Addr4,
    endpoint: Ipv4Addr4,
    tunnel_id: u32,
    out: &mut BytesMut,
) -> Result<(), EncapError> {
    let payload_len = MiroShim::LEN + inner.len();
    if payload_len > (u16::MAX as usize) - Ipv4Header::LEN {
        return Err(EncapError::TooLarge);
    }
    let outer = Ipv4Header::new(ingress, endpoint, PROTO_MIRO, payload_len as u16);
    outer.emit(out);
    MiroShim { tunnel_id, flags: 0 }.emit(out);
    out.put_slice(inner);
    Ok(())
}

/// Strip the outer header and shim; returns (outer header, shim, inner
/// packet bytes).
pub fn decapsulate(packet: Bytes) -> Result<(Ipv4Header, MiroShim, Bytes), EncapError> {
    let (outer, shim, inner) = decapsulate_slice(&packet)?;
    let start = Ipv4Header::LEN + MiroShim::LEN;
    let inner = packet.slice(start..start + inner.len());
    Ok((outer, shim, inner))
}

/// Zero-copy [`decapsulate`]: validates in place and returns the inner
/// packet as a borrowed view, so a batch can decapsulate without touching
/// a refcount or allocating.
pub fn decapsulate_slice(packet: &[u8]) -> Result<(Ipv4Header, MiroShim, &[u8]), EncapError> {
    let (outer, payload) = Ipv4Header::parse_slice(packet)?;
    if outer.protocol != PROTO_MIRO {
        return Err(EncapError::NotMiro);
    }
    let shim = MiroShim::parse_slice(payload)?;
    Ok((outer, shim, &payload[MiroShim::LEN..]))
}

/// The three ways a downstream AS can name its tunnel endpoint
/// (section 4.2), with the trade-offs the paper discusses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EndpointScheme {
    /// One reserved address per **exit link**: the exit is encoded in the
    /// destination address itself; the egress router needs no shim lookup
    /// but internal topology is exposed and addresses are consumed per
    /// link.
    PerExitLink {
        /// (exit link id, address) pairs.
        links: Vec<(u32, Ipv4Addr4)>,
    },
    /// One address per **egress router**: fewer addresses, but the egress
    /// router must map tunnel id -> exit link (directed forwarding).
    PerEgressRouter {
        /// (router id, address) pairs.
        routers: Vec<(u32, Ipv4Addr4)>,
    },
    /// One reserved address for **all tunnels**: nothing internal is
    /// revealed, the AS can re-home tunnels freely, but every ingress
    /// router must rewrite the destination to the chosen egress — a
    /// data-plane modification at all ingresses.
    SingleAddress {
        address: Ipv4Addr4,
        /// tunnel id -> candidate egress router addresses; the ingress
        /// picks the IGP-closest (here: the first).
        egress_map: Vec<(u32, Vec<Ipv4Addr4>)>,
    },
}

impl EndpointScheme {
    /// The address the downstream AS advertises for `tunnel_id` (what the
    /// upstream puts in the outer header).
    pub fn advertised_endpoint(&self, tunnel_id: u32, exit_link: u32) -> Option<Ipv4Addr4> {
        match self {
            EndpointScheme::PerExitLink { links } => links
                .iter()
                .find(|&&(l, _)| l == exit_link)
                .map(|&(_, a)| a),
            EndpointScheme::PerEgressRouter { routers } => {
                // The egress router owning the exit link; caller passes the
                // router id in `exit_link`'s upper bits by convention — we
                // model it as router id == exit_link / 16.
                let router = exit_link / 16;
                routers.iter().find(|&&(r, _)| r == router).map(|&(_, a)| a)
            }
            EndpointScheme::SingleAddress { address, egress_map } => {
                egress_map.iter().find(|&&(t, _)| t == tunnel_id)?;
                Some(*address)
            }
        }
    }

    /// Ingress-side rewriting (only the single-address scheme does any):
    /// returns the concrete egress address for a packet to `dst` with
    /// `tunnel_id`, or `dst` unchanged.
    pub fn ingress_rewrite(&self, dst: Ipv4Addr4, tunnel_id: u32) -> Option<Ipv4Addr4> {
        match self {
            EndpointScheme::SingleAddress { address, egress_map } if dst == *address => {
                egress_map
                    .iter()
                    .find(|&&(t, _)| t == tunnel_id)
                    .and_then(|(_, routers)| routers.first().copied())
            }
            _ => Some(dst),
        }
    }

    /// Does this scheme expose internal structure to the upstream AS?
    /// (The section 4.2 trade-off the ablation bench measures alongside
    /// per-packet cost.)
    pub fn exposes_internal_topology(&self) -> bool {
        !matches!(self, EndpointScheme::SingleAddress { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::PROTO_IPIP;

    fn inner_packet() -> Bytes {
        Ipv4Header::new(
            Ipv4Addr4::new(10, 1, 1, 1),
            Ipv4Addr4::new(12, 34, 56, 78),
            6,
            5,
        )
        .emit_with_payload(b"hello")
    }

    #[test]
    fn encap_decap_round_trip() {
        let inner = inner_packet();
        let pkt = encapsulate(
            &inner,
            Ipv4Addr4::new(10, 9, 9, 9),
            Ipv4Addr4::new(12, 34, 56, 102),
            7,
        )
        .unwrap();
        let (outer, shim, got) = decapsulate(pkt).unwrap();
        assert_eq!(outer.dst, Ipv4Addr4::new(12, 34, 56, 102));
        assert_eq!(outer.protocol, PROTO_MIRO);
        assert_eq!(shim.tunnel_id, 7);
        assert_eq!(got, inner);
        // The revealed inner packet parses as the original.
        let (ih, payload) = Ipv4Header::parse(got).unwrap();
        assert_eq!(ih.dst, Ipv4Addr4::new(12, 34, 56, 78));
        assert_eq!(&payload[..], b"hello");
    }

    #[test]
    fn nested_tunnels() {
        // "a tunnel inside another tunnel" (section 4.2).
        let inner = inner_packet();
        let t1 = encapsulate(&inner, Ipv4Addr4::new(1, 1, 1, 1), Ipv4Addr4::new(2, 2, 2, 2), 7)
            .unwrap();
        let t2 =
            encapsulate(&t1, Ipv4Addr4::new(3, 3, 3, 3), Ipv4Addr4::new(4, 4, 4, 4), 9).unwrap();
        let (_, shim2, peeled) = decapsulate(t2).unwrap();
        assert_eq!(shim2.tunnel_id, 9);
        let (_, shim1, orig) = decapsulate(peeled).unwrap();
        assert_eq!(shim1.tunnel_id, 7);
        assert_eq!(orig, inner);
    }

    #[test]
    fn non_miro_outer_rejected() {
        let inner = inner_packet();
        let outer = Ipv4Header::new(
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            PROTO_IPIP,
            inner.len() as u16,
        );
        let pkt = outer.emit_with_payload(&inner);
        assert_eq!(decapsulate(pkt).unwrap_err(), EncapError::NotMiro);
    }

    #[test]
    fn corrupt_shim_rejected() {
        let inner = inner_packet();
        let pkt = encapsulate(&inner, Ipv4Addr4::new(1, 1, 1, 1), Ipv4Addr4::new(2, 2, 2, 2), 7)
            .unwrap();
        let mut bad = BytesMut::from(&pkt[..]);
        bad[Ipv4Header::LEN] = 0x00; // clobber the magic
        assert_eq!(decapsulate(bad.freeze()).unwrap_err(), EncapError::BadShim);
    }

    #[test]
    fn per_exit_link_scheme() {
        let s = EndpointScheme::PerExitLink {
            links: vec![
                (1, Ipv4Addr4::new(12, 34, 56, 101)),
                (2, Ipv4Addr4::new(12, 34, 56, 102)),
            ],
        };
        assert_eq!(
            s.advertised_endpoint(7, 2),
            Some(Ipv4Addr4::new(12, 34, 56, 102))
        );
        assert_eq!(s.advertised_endpoint(7, 9), None);
        assert!(s.exposes_internal_topology());
        // No rewriting.
        let d = Ipv4Addr4::new(12, 34, 56, 101);
        assert_eq!(s.ingress_rewrite(d, 7), Some(d));
    }

    #[test]
    fn single_address_scheme_rewrites_at_ingress() {
        let reserved = Ipv4Addr4::new(12, 34, 56, 100);
        let s = EndpointScheme::SingleAddress {
            address: reserved,
            egress_map: vec![(7, vec![Ipv4Addr4::new(12, 34, 56, 2), Ipv4Addr4::new(12, 34, 56, 3)])],
        };
        assert_eq!(s.advertised_endpoint(7, 0), Some(reserved));
        assert_eq!(s.advertised_endpoint(8, 0), None, "unknown tunnel");
        assert_eq!(
            s.ingress_rewrite(reserved, 7),
            Some(Ipv4Addr4::new(12, 34, 56, 2)),
            "ingress replaces the reserved address (the R1 example)"
        );
        assert!(!s.exposes_internal_topology());
        // Other destinations pass through untouched.
        let other = Ipv4Addr4::new(9, 9, 9, 9);
        assert_eq!(s.ingress_rewrite(other, 7), Some(other));
    }

    #[test]
    fn per_egress_router_scheme() {
        let s = EndpointScheme::PerEgressRouter {
            routers: vec![(0, Ipv4Addr4::new(12, 34, 56, 2)), (1, Ipv4Addr4::new(12, 34, 56, 3))],
        };
        // Exit link 17 belongs to router 1 under the /16 convention.
        assert_eq!(s.advertised_endpoint(7, 17), Some(Ipv4Addr4::new(12, 34, 56, 3)));
        assert!(s.exposes_internal_topology());
    }

    #[test]
    fn oversized_inner_rejected() {
        let big = Bytes::from(vec![0u8; u16::MAX as usize]);
        assert_eq!(
            encapsulate(&big, Ipv4Addr4::new(1, 1, 1, 1), Ipv4Addr4::new(2, 2, 2, 2), 1)
                .unwrap_err(),
            EncapError::TooLarge
        );
    }
}
