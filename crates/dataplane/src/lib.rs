//! Data plane for MIRO (sections 3.5, 4.1, 4.2).
//!
//! MIRO binds negotiated routes to tunnels; this crate is the packet-level
//! machinery that makes those tunnels real, in the smoltcp style of
//! explicit wire formats parsed and emitted over byte buffers:
//!
//! * [`ipv4`] - an IPv4 header codec (checksum included) built on `bytes`;
//! * [`encap`] - IP-in-IP encapsulation plus the MIRO shim header carrying
//!   the tunnel identifier, and the three tunnel-endpoint addressing
//!   schemes of section 4.2 (per-exit-link addresses, per-egress-router
//!   addresses, one reserved address with ingress rewriting);
//! * [`lpm`] - a longest-prefix-match binary trie (the forwarding-table
//!   primitive of section 2.1.1's destination-based forwarding);
//! * [`classifier`] - the traffic-splitting policies of section 3.5:
//!   header-field classifiers directing a subset of traffic into tunnels,
//!   and hash-based flow splitting across paths;
//! * [`burst`] - the burst-mode forwarding engine: batched preparse,
//!   key-sorted LPM amortization, per-unique-flow tunnel/split decisions,
//!   and arena-packed encap output — the Mpps-scale fast path over the
//!   modules above, proptest-pinned byte-identical to them;
//! * [`pcapng`] - a dependency-free pcapng writer so tunnel traffic can
//!   be inspected in Wireshark;
//! * [`intra`] - the intra-AS architecture of section 4.1: ASes with
//!   multiple edge routers, iBGP dissemination, IGP distances driving
//!   steps 5-7 of the decision process, directed forwarding at egress
//!   routers, and end-to-end forwarding walks across a router-level
//!   network that follow negotiated AS paths.
//!
//! Omitted deliberately: fragmentation, TTL/ICMP error generation, and
//! IPv6 - none are load-bearing for the paper's claims. Packets here are
//! exercised in-memory (encode -> forward -> decapsulate) which drives the
//! same code paths a TUN/TAP deployment would.

pub mod burst;
pub mod classifier;
pub mod fault;
pub mod encap;
pub mod intra;
pub mod ipv4;
pub mod lpm;
pub mod pcapng;
pub mod rcp;
pub mod trace;

pub use burst::{BurstScratch, Engine, TunnelSpec, Verdict};
pub use encap::{EncapError, EndpointScheme, MiroShim};
pub use ipv4::{Ipv4Addr4, Ipv4Header, PROTO_IPIP, PROTO_MIRO};
pub use lpm::PrefixTrie;
