//! Burst-mode forwarding engine: batched parse / lookup / classify /
//! encap at packets-per-second scale.
//!
//! The single-packet primitives in [`ipv4`](crate::ipv4),
//! [`lpm`](crate::lpm), [`classifier`](crate::classifier) and
//! [`encap`](crate::encap) are correct but pay their full cost per packet:
//! a trie descent per destination, a rule scan plus split hash per packet,
//! and a fresh `BytesMut` per encapsulation. MIRO's deployment story
//! (section 4.2 encapsulation, section 3.5 traffic splitting) pays these
//! costs on every forwarded packet, so the [`Engine`] amortizes them over
//! a *burst* of raw frames:
//!
//! 1. **preparse** — one pass turning each frame into a [`FlowKey`] plus
//!    header facts via the zero-copy slice parsers (no `Bytes` refcounts);
//! 2. **lookup** — destinations gathered and answered by
//!    [`PrefixTrie::lookup_batch`]: indices sorted by address, one trie
//!    descent per distinct run, walk reuse across near-neighbors;
//! 3. **decide** — tunnel/split decisions resolved once per *unique flow*
//!    in the burst (a per-burst flow cache), not once per packet;
//! 4. **emit** — output packets packed into one reusable arena; tunnel
//!    encapsulation stamps a precomputed per-tunnel 28-byte header+shim
//!    template and patches only total-length and checksum.
//!
//! [`Engine::forward_one`] is the packet-at-a-time reference path built on
//! the original allocating primitives. It is both the bench baseline and
//! the equivalence oracle: the proptests pin that the burst pipeline
//! produces byte-identical output packets and identical verdicts.

use crate::classifier::{Action, Classifier, FlowKey, HashSplitter};
use crate::encap;
use crate::ipv4::{self, Ipv4Addr4, Ipv4Error, Ipv4Header, PROTO_MIRO};
use crate::lpm::{BatchStats, LookupScratch, Prefix, PrefixTrie};
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;

/// Protocol numbers whose first four payload bytes carry ports.
const PROTO_TCP: u8 = 6;
const PROTO_UDP: u8 = 17;

/// A concrete negotiated tunnel the engine can push packets into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TunnelSpec {
    /// Tunnel identifier carried in the MIRO shim.
    pub id: u32,
    /// Outer source address (this AS's tunnel ingress).
    pub ingress: Ipv4Addr4,
    /// Outer destination: the downstream endpoint (section 4.2).
    pub endpoint: Ipv4Addr4,
}

/// Why a packet could not be processed. Errors are surfaced per packet;
/// the rest of the burst continues.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PktError {
    /// The IPv4 header failed to parse or validate.
    Ip(Ipv4Error),
    /// Addressed to the local tunnel endpoint but the MIRO shim is bad.
    Shim,
    /// The classifier (or a split group) chose a tunnel id with no
    /// installed [`TunnelSpec`].
    UnknownTunnel(u32),
    /// Inner packet too large to encapsulate.
    TooLarge,
}

/// A byte range in the burst's output arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PktRange {
    pub start: u32,
    pub len: u32,
}

/// Per-packet outcome of a burst. Output ranges index the arena returned
/// by [`BurstScratch::out_bytes`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Forwarded natively: TTL decremented, header checksum rewritten.
    Forward { next_hop: u32, out: PktRange },
    /// Entered a tunnel: TTL-decremented inner wrapped toward the
    /// tunnel's endpoint, next hop looked up for that endpoint.
    Encap { tunnel: u32, next_hop: u32, out: PktRange },
    /// Arrived on the local tunnel endpoint: outer header and shim
    /// stripped, inner packet revealed.
    Decap { tunnel: u32, out: PktRange },
    /// Classifier policy drop (section 1.1 header-granularity filtering).
    Drop,
    /// No LPM route for the destination (or the tunnel endpoint).
    NoRoute,
    /// TTL would reach zero; dropped (ICMP generation is out of scope).
    TtlExpired,
    /// Malformed frame, skipped; the batch continues.
    Malformed(PktError),
}

/// The packet-at-a-time result: same shape as [`Verdict`] but the output
/// packet is an owned `Bytes` (this path allocates per packet — that is
/// the point of comparison).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OneVerdict {
    Forward { next_hop: u32, packet: Bytes },
    Encap { tunnel: u32, next_hop: u32, packet: Bytes },
    Decap { tunnel: u32, packet: Bytes },
    Drop,
    NoRoute,
    TtlExpired,
    Malformed(PktError),
}

/// Per-tunnel reusable encap state: the outer header + shim emitted once
/// at engine build into a 28-byte template, re-stamped per packet with
/// only the total length and checksum. The endpoint's next hop is
/// resolved once, not per packet.
struct TunnelState {
    spec: TunnelSpec,
    template: [u8; Ipv4Header::LEN + encap::MiroShim::LEN],
    /// Unfolded ones-complement sum of the template's outer header with a
    /// zeroed total-length field.
    base_sum: u32,
    /// LPM next hop for the endpoint (None: endpoint unroutable).
    next_hop: Option<u32>,
}

impl TunnelState {
    fn build(spec: TunnelSpec, lpm: &PrefixTrie<u32>) -> TunnelState {
        let mut buf = BytesMut::with_capacity(Ipv4Header::LEN + encap::MiroShim::LEN);
        // Emit with zero payload length, then blank the checksum: the
        // per-packet stamp recomputes both.
        Ipv4Header::new(spec.ingress, spec.endpoint, PROTO_MIRO, 0).emit(&mut buf);
        encap::MiroShim { tunnel_id: spec.id, flags: 0 }.emit(&mut buf);
        let mut template = [0u8; Ipv4Header::LEN + encap::MiroShim::LEN];
        template.copy_from_slice(&buf);
        template[2] = 0;
        template[3] = 0;
        template[10] = 0;
        template[11] = 0;
        let mut base_sum = 0u32;
        for c in template[..Ipv4Header::LEN].chunks_exact(2) {
            base_sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        let next_hop = lpm.lookup(spec.endpoint).map(|(_, &nh)| nh);
        TunnelState { spec, template, base_sum, next_hop }
    }

    /// Append the encapsulation of `inner` to `arena` — byte-identical to
    /// [`encap::encapsulate`] with the same fields.
    fn stamp(&self, inner_len: usize, arena: &mut BytesMut) -> Result<usize, PktError> {
        let payload_len = encap::MiroShim::LEN + inner_len;
        if payload_len > (u16::MAX as usize) - Ipv4Header::LEN {
            return Err(PktError::TooLarge);
        }
        let start = arena.len();
        arena.extend_from_slice(&self.template);
        let total = (Ipv4Header::LEN + payload_len) as u16;
        let mut sum = self.base_sum + u32::from(total);
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        let cksum = !(sum as u16);
        arena[start + 2..start + 4].copy_from_slice(&total.to_be_bytes());
        arena[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
        Ok(start)
    }
}

/// What the classifier + split groups resolved for one flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlowDecision {
    Default,
    /// Index into `Engine::tunnels`.
    Tunnel(u32),
    UnknownTunnel(u32),
    Drop,
}

/// What preparse concluded about one frame.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// Needs lookup + classification; `slot` indexes the forward-lane
    /// arrays filled by the lookup and decide stages.
    Fwd { slot: u32 },
    /// Terminates here: outer+shim validated, inner at this frame range.
    Decap { tunnel: u32, inner_off: u32, inner_len: u32 },
    Ttl,
    Err(PktError),
}

/// Reusable burst state: every vector and the output arena survive across
/// bursts, so a steady-state burst performs no allocation.
#[derive(Default)]
pub struct BurstScratch {
    kinds: Vec<Kind>,
    /// Forward-lane parallel arrays (indexed by `Kind::Fwd::slot`).
    fwd_pkt: Vec<u32>,
    fwd_key: Vec<FlowKey>,
    fwd_dst: Vec<Ipv4Addr4>,
    fwd_end: Vec<u32>,
    fwd_nh: Vec<Option<u32>>,
    fwd_decision: Vec<FlowDecision>,
    /// Per-unique-flow decision cache, cleared (capacity kept) per burst.
    flows: HashMap<FlowKey, FlowDecision>,
    /// `lookup_batch` sort scratch.
    order: LookupScratch,
    verdicts: Vec<Verdict>,
    arena: BytesMut,
    /// Batch-lookup amortization counters for the last burst.
    pub lookup_stats: BatchStats,
    /// Unique flows the decide stage resolved in the last burst.
    pub unique_flows: usize,
    /// Stage progress guard (0 = idle, 4 = emitted).
    stage: u8,
}

impl BurstScratch {
    pub fn new() -> BurstScratch {
        BurstScratch::default()
    }

    /// Verdicts of the last burst, in input order.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Resolve an output range into the arena.
    pub fn out_bytes(&self, r: PktRange) -> &[u8] {
        &self.arena[r.start as usize..(r.start + r.len) as usize]
    }
}

/// Extract the 5-tuple-plus-TOS key the classifier sees. Ports come from
/// the first four payload bytes for TCP/UDP, zero otherwise.
pub fn flow_key(header: &Ipv4Header, payload: &[u8]) -> FlowKey {
    let (src_port, dst_port) = if (header.protocol == PROTO_TCP
        || header.protocol == PROTO_UDP)
        && payload.len() >= 4
    {
        (
            u16::from_be_bytes([payload[0], payload[1]]),
            u16::from_be_bytes([payload[2], payload[3]]),
        )
    } else {
        (0, 0)
    };
    FlowKey {
        src: header.src,
        dst: header.dst,
        src_port,
        dst_port,
        protocol: header.protocol,
        tos: header.dscp_ecn,
    }
}

/// The forwarding engine: LPM table, classifier, split groups, tunnels,
/// and the local tunnel-endpoint address. Build once, forward many.
pub struct Engine {
    lpm: PrefixTrie<u32>,
    classifier: Classifier,
    /// (virtual tunnel id, splitter over concrete tunnel ids): a
    /// classifier action naming a group id fans out across the group's
    /// weighted paths by flow hash (section 3.5).
    split_groups: Vec<(u32, HashSplitter)>,
    /// Sorted by id for binary-search resolution.
    tunnels: Vec<TunnelState>,
    local: Ipv4Addr4,
}

impl Engine {
    /// Build an engine. Tunnel templates and endpoint next hops are
    /// precomputed here. Panics on duplicate tunnel ids.
    pub fn new(
        local: Ipv4Addr4,
        lpm: PrefixTrie<u32>,
        classifier: Classifier,
        mut tunnels: Vec<TunnelSpec>,
        split_groups: Vec<(u32, HashSplitter)>,
    ) -> Engine {
        tunnels.sort_by_key(|t| t.id);
        for w in tunnels.windows(2) {
            assert!(w[0].id != w[1].id, "duplicate tunnel id {}", w[0].id);
        }
        let tunnels = tunnels
            .into_iter()
            .map(|spec| TunnelState::build(spec, &lpm))
            .collect();
        Engine { lpm, classifier, split_groups, tunnels, local }
    }

    /// This engine's local tunnel-endpoint address.
    pub fn local(&self) -> Ipv4Addr4 {
        self.local
    }

    /// Installed tunnels, ascending by id.
    pub fn tunnel_specs(&self) -> impl Iterator<Item = &TunnelSpec> {
        self.tunnels.iter().map(|t| &t.spec)
    }

    /// The LPM table (shared by both paths).
    pub fn lpm(&self) -> &PrefixTrie<u32> {
        &self.lpm
    }

    fn tunnel_index(&self, id: u32) -> Option<usize> {
        self.tunnels.binary_search_by_key(&id, |t| t.spec.id).ok()
    }

    /// Resolve classify + split for one flow.
    fn decide_flow(&self, key: &FlowKey) -> FlowDecision {
        match self.classifier.classify(key) {
            Action::Drop => FlowDecision::Drop,
            Action::Default => FlowDecision::Default,
            Action::Tunnel(t) => {
                let concrete = match self.split_groups.iter().find(|&&(g, _)| g == t) {
                    Some((_, splitter)) => splitter.path_for(key),
                    None => t,
                };
                match self.tunnel_index(concrete) {
                    Some(idx) => FlowDecision::Tunnel(idx as u32),
                    None => FlowDecision::UnknownTunnel(concrete),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Burst pipeline. The four stages must run in order on the same
    // scratch; `forward_burst` composes them, the bench times them
    // individually.
    // ------------------------------------------------------------------

    /// Stage 1: parse every frame once, splitting the burst into the
    /// forward lane (needs lookup + classification) and terminal kinds
    /// (decap, TTL expiry, malformed).
    pub fn preparse(&self, frames: &[&[u8]], scratch: &mut BurstScratch) {
        scratch.stage = 1;
        scratch.kinds.clear();
        scratch.fwd_pkt.clear();
        scratch.fwd_key.clear();
        scratch.fwd_dst.clear();
        scratch.fwd_end.clear();
        scratch.verdicts.clear();
        scratch.arena.clear();
        for (i, frame) in frames.iter().enumerate() {
            let kind = match Ipv4Header::parse_slice(frame) {
                Err(e) => Kind::Err(PktError::Ip(e)),
                Ok((header, payload)) => {
                    if header.protocol == PROTO_MIRO && header.dst == self.local {
                        match encap::MiroShim::parse_slice(payload) {
                            Err(_) => Kind::Err(PktError::Shim),
                            Ok(shim) => Kind::Decap {
                                tunnel: shim.tunnel_id,
                                inner_off: (Ipv4Header::LEN + encap::MiroShim::LEN) as u32,
                                inner_len: (payload.len() - encap::MiroShim::LEN) as u32,
                            },
                        }
                    } else if header.ttl <= 1 {
                        Kind::Ttl
                    } else {
                        let slot = scratch.fwd_pkt.len() as u32;
                        scratch.fwd_pkt.push(i as u32);
                        scratch.fwd_key.push(flow_key(&header, payload));
                        scratch.fwd_dst.push(header.dst);
                        scratch
                            .fwd_end
                            .push((Ipv4Header::LEN + header.payload_len as usize) as u32);
                        Kind::Fwd { slot }
                    }
                }
            };
            scratch.kinds.push(kind);
        }
    }

    /// Stage 2: one key-sorted batched LPM pass over the forward lane.
    pub fn lookup(&self, scratch: &mut BurstScratch) {
        debug_assert_eq!(scratch.stage, 1, "lookup needs a fresh preparse");
        scratch.stage = 2;
        let stats = {
            let BurstScratch { fwd_dst, order, fwd_nh, .. } = &mut *scratch;
            self.lpm.lookup_batch_copied(fwd_dst, order, fwd_nh)
        };
        scratch.lookup_stats = stats;
    }

    /// Stage 3: resolve tunnel/split decisions once per unique flow.
    pub fn decide(&self, scratch: &mut BurstScratch) {
        debug_assert_eq!(scratch.stage, 2, "decide needs lookup results");
        scratch.stage = 3;
        scratch.flows.clear();
        scratch.fwd_decision.clear();
        for key in &scratch.fwd_key {
            let d = *scratch
                .flows
                .entry(*key)
                .or_insert_with(|| self.decide_flow(key));
            scratch.fwd_decision.push(d);
        }
        scratch.unique_flows = scratch.flows.len();
    }

    /// Stage 4: emit every output packet into the shared arena and write
    /// the per-packet verdicts, in input order.
    pub fn emit(&self, frames: &[&[u8]], scratch: &mut BurstScratch) {
        debug_assert_eq!(scratch.stage, 3, "emit needs decisions");
        scratch.stage = 4;
        for (i, frame) in frames.iter().enumerate() {
            let verdict = match scratch.kinds[i] {
                Kind::Err(e) => Verdict::Malformed(e),
                Kind::Ttl => Verdict::TtlExpired,
                Kind::Decap { tunnel, inner_off, inner_len } => {
                    let start = scratch.arena.len() as u32;
                    scratch.arena.extend_from_slice(
                        &frame[inner_off as usize..(inner_off + inner_len) as usize],
                    );
                    Verdict::Decap { tunnel, out: PktRange { start, len: inner_len } }
                }
                Kind::Fwd { slot } => {
                    let slot = slot as usize;
                    match scratch.fwd_decision[slot] {
                        FlowDecision::Drop => Verdict::Drop,
                        FlowDecision::UnknownTunnel(t) => {
                            Verdict::Malformed(PktError::UnknownTunnel(t))
                        }
                        FlowDecision::Default => match scratch.fwd_nh[slot] {
                            None => Verdict::NoRoute,
                            Some(nh) => {
                                let end = scratch.fwd_end[slot] as usize;
                                let start = scratch.arena.len();
                                scratch.arena.extend_from_slice(&frame[..end]);
                                ipv4::decrement_ttl_in_place(&mut scratch.arena[start..]);
                                Verdict::Forward {
                                    next_hop: nh,
                                    out: PktRange {
                                        start: start as u32,
                                        len: end as u32,
                                    },
                                }
                            }
                        },
                        FlowDecision::Tunnel(idx) => {
                            let ts = &self.tunnels[idx as usize];
                            match ts.next_hop {
                                None => Verdict::NoRoute,
                                Some(nh) => {
                                    let end = scratch.fwd_end[slot] as usize;
                                    match ts.stamp(end, &mut scratch.arena) {
                                        Err(e) => Verdict::Malformed(e),
                                        Ok(start) => {
                                            let inner_start = scratch.arena.len();
                                            scratch.arena.extend_from_slice(&frame[..end]);
                                            ipv4::decrement_ttl_in_place(
                                                &mut scratch.arena[inner_start..],
                                            );
                                            Verdict::Encap {
                                                tunnel: ts.spec.id,
                                                next_hop: nh,
                                                out: PktRange {
                                                    start: start as u32,
                                                    len: (scratch.arena.len() - start)
                                                        as u32,
                                                },
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            };
            scratch.verdicts.push(verdict);
        }
    }

    /// The whole pipeline: preparse, batched lookup, per-flow decisions,
    /// arena emit. Results land in `scratch` ([`BurstScratch::verdicts`],
    /// [`BurstScratch::out_bytes`]).
    pub fn forward_burst(&self, frames: &[&[u8]], scratch: &mut BurstScratch) {
        self.preparse(frames, scratch);
        self.lookup(scratch);
        self.decide(scratch);
        self.emit(frames, scratch);
    }

    // ------------------------------------------------------------------
    // Packet-at-a-time reference path.
    // ------------------------------------------------------------------

    /// Forward one packet through the original allocating primitives:
    /// `Ipv4Header::parse` on an owned `Bytes`, a trie descent per packet,
    /// a full classify + split per packet, `encapsulate` allocating per
    /// packet. The burst pipeline must agree with this byte for byte.
    pub fn forward_one(&self, frame: &Bytes) -> OneVerdict {
        let (header, payload) = match Ipv4Header::parse(frame.clone()) {
            Err(e) => return OneVerdict::Malformed(PktError::Ip(e)),
            Ok(x) => x,
        };
        if header.protocol == PROTO_MIRO && header.dst == self.local {
            return match encap::decapsulate(frame.clone()) {
                Err(_) => OneVerdict::Malformed(PktError::Shim),
                Ok((_outer, shim, inner)) => {
                    OneVerdict::Decap { tunnel: shim.tunnel_id, packet: inner }
                }
            };
        }
        if header.ttl <= 1 {
            return OneVerdict::TtlExpired;
        }
        let key = flow_key(&header, &payload);
        match self.decide_flow(&key) {
            FlowDecision::Drop => OneVerdict::Drop,
            FlowDecision::UnknownTunnel(t) => {
                OneVerdict::Malformed(PktError::UnknownTunnel(t))
            }
            FlowDecision::Default => match self.lpm.lookup(header.dst) {
                None => OneVerdict::NoRoute,
                Some((_, &nh)) => {
                    let packet = decremented_copy(frame, &header);
                    OneVerdict::Forward { next_hop: nh, packet }
                }
            },
            FlowDecision::Tunnel(idx) => {
                let spec = self.tunnels[idx as usize].spec;
                // The baseline resolves the endpoint per packet, as the
                // pre-burst call sites did.
                match self.lpm.lookup(spec.endpoint) {
                    None => OneVerdict::NoRoute,
                    Some((_, &nh)) => {
                        let inner = decremented_copy(frame, &header);
                        match encap::encapsulate(
                            &inner,
                            spec.ingress,
                            spec.endpoint,
                            spec.id,
                        ) {
                            Err(_) => OneVerdict::Malformed(PktError::TooLarge),
                            Ok(packet) => OneVerdict::Encap {
                                tunnel: spec.id,
                                next_hop: nh,
                                packet,
                            },
                        }
                    }
                }
            }
        }
    }
}

/// A TTL-decremented copy of `frame`'s IP packet (link padding dropped).
fn decremented_copy(frame: &Bytes, header: &Ipv4Header) -> Bytes {
    let end = Ipv4Header::LEN + header.payload_len as usize;
    let mut out = BytesMut::from(&frame[..end]);
    ipv4::decrement_ttl_in_place(&mut out);
    out.freeze()
}

/// Convenience for tests and the bench: build a one-prefix-per-value LPM.
pub fn lpm_from(entries: &[(Prefix, u32)]) -> PrefixTrie<u32> {
    let mut t = PrefixTrie::new();
    for &(p, v) in entries {
        t.insert(p, v);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Match;

    fn a(x: u8, y: u8, z: u8, w: u8) -> Ipv4Addr4 {
        Ipv4Addr4::new(x, y, z, w)
    }

    fn p(x: u8, y: u8, z: u8, w: u8, len: u8) -> Prefix {
        Prefix::new(a(x, y, z, w), len)
    }

    /// A small but complete engine: two routed prefixes, a default-free
    /// hole, one direct tunnel, one 1:1 split group over two tunnels, a
    /// drop rule, and a local endpoint address.
    fn engine() -> Engine {
        let lpm = lpm_from(&[
            (p(12, 34, 0, 0, 16), 100),
            (p(12, 34, 56, 0, 24), 200),
            (p(20, 0, 0, 0, 8), 300),
            // Tunnel endpoints routable too.
            (p(99, 0, 0, 0, 8), 900),
        ]);
        let classifier = Classifier::new(vec![
            (
                Match { dst_port: Some((6000, 6999)), ..Default::default() },
                Action::Drop,
            ),
            (
                Match { tos: Some(0xb8), ..Default::default() },
                Action::Tunnel(1000), // split group
            ),
            (
                Match { dst: Some(p(20, 0, 0, 0, 8)), ..Default::default() },
                Action::Tunnel(7), // direct tunnel
            ),
        ]);
        let tunnels = vec![
            TunnelSpec { id: 7, ingress: a(10, 0, 0, 1), endpoint: a(99, 1, 1, 1) },
            TunnelSpec { id: 8, ingress: a(10, 0, 0, 1), endpoint: a(99, 2, 2, 2) },
            TunnelSpec { id: 9, ingress: a(10, 0, 0, 1), endpoint: a(99, 3, 3, 3) },
        ];
        let groups = vec![(1000, HashSplitter::new(vec![(1, 8), (1, 9)]))];
        Engine::new(a(10, 0, 0, 1), lpm, classifier, tunnels, groups)
    }

    fn tcp_packet(src: Ipv4Addr4, dst: Ipv4Addr4, dport: u16, tos: u8, ttl: u8) -> Bytes {
        let payload = {
            let mut v = 5555u16.to_be_bytes().to_vec();
            v.extend_from_slice(&dport.to_be_bytes());
            v.extend_from_slice(b"data");
            v
        };
        let mut h = Ipv4Header::new(src, dst, PROTO_TCP, payload.len() as u16);
        h.tos_set(tos);
        h.ttl = ttl;
        h.emit_with_payload(&payload)
    }

    /// Helper because `dscp_ecn` is a plain field.
    trait TosSet {
        fn tos_set(&mut self, tos: u8);
    }
    impl TosSet for Ipv4Header {
        fn tos_set(&mut self, tos: u8) {
            self.dscp_ecn = tos;
        }
    }

    /// Run both paths over `frames` and assert verdict + byte equality.
    fn assert_equivalent(eng: &Engine, frames: &[Bytes]) -> Vec<Verdict> {
        let views: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
        let mut scratch = BurstScratch::new();
        eng.forward_burst(&views, &mut scratch);
        assert_eq!(scratch.verdicts().len(), frames.len());
        for (i, frame) in frames.iter().enumerate() {
            let one = eng.forward_one(frame);
            let batched = scratch.verdicts()[i];
            match (&one, batched) {
                (OneVerdict::Forward { next_hop: n1, packet }, Verdict::Forward { next_hop, out }) => {
                    assert_eq!(*n1, next_hop, "pkt {i}");
                    assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}");
                }
                (
                    OneVerdict::Encap { tunnel: t1, next_hop: n1, packet },
                    Verdict::Encap { tunnel, next_hop, out },
                ) => {
                    assert_eq!((*t1, *n1), (tunnel, next_hop), "pkt {i}");
                    assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}");
                }
                (OneVerdict::Decap { tunnel: t1, packet }, Verdict::Decap { tunnel, out }) => {
                    assert_eq!(*t1, tunnel, "pkt {i}");
                    assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}");
                }
                (OneVerdict::Drop, Verdict::Drop)
                | (OneVerdict::NoRoute, Verdict::NoRoute)
                | (OneVerdict::TtlExpired, Verdict::TtlExpired) => {}
                (OneVerdict::Malformed(e1), Verdict::Malformed(e2)) => {
                    assert_eq!(*e1, e2, "pkt {i}");
                }
                (one, batched) => panic!("pkt {i}: single {one:?} vs batched {batched:?}"),
            }
        }
        scratch.verdicts().to_vec()
    }

    #[test]
    fn mixed_burst_matches_single_packet_path() {
        let eng = engine();
        let frames = vec![
            // Plain forward via the /16, then the shadowing /24.
            tcp_packet(a(1, 1, 1, 1), a(12, 34, 99, 9), 80, 0, 64),
            tcp_packet(a(1, 1, 1, 1), a(12, 34, 56, 9), 80, 0, 64),
            // Direct tunnel by dst prefix.
            tcp_packet(a(1, 1, 1, 2), a(20, 5, 5, 5), 80, 0, 64),
            // Split group by TOS: two flows, either side of the hash.
            tcp_packet(a(1, 1, 1, 3), a(12, 34, 1, 1), 443, 0xb8, 64),
            tcp_packet(a(2, 2, 2, 2), a(12, 34, 1, 2), 444, 0xb8, 64),
            // Policy drop by port range.
            tcp_packet(a(1, 1, 1, 4), a(12, 34, 1, 1), 6500, 0, 64),
            // No route.
            tcp_packet(a(1, 1, 1, 5), a(55, 0, 0, 1), 80, 0, 64),
            // TTL expiry inside the batch.
            tcp_packet(a(1, 1, 1, 6), a(12, 34, 1, 1), 80, 0, 1),
            // Duplicate of the first flow (exercises the flow cache).
            tcp_packet(a(1, 1, 1, 1), a(12, 34, 99, 9), 80, 0, 64),
        ];
        let verdicts = assert_equivalent(&eng, &frames);
        assert!(matches!(verdicts[0], Verdict::Forward { next_hop: 100, .. }));
        assert!(matches!(verdicts[1], Verdict::Forward { next_hop: 200, .. }));
        assert!(matches!(verdicts[2], Verdict::Encap { tunnel: 7, next_hop: 900, .. }));
        assert!(matches!(verdicts[3], Verdict::Encap { tunnel: 8 | 9, .. }));
        assert!(matches!(verdicts[4], Verdict::Encap { tunnel: 8 | 9, .. }));
        assert!(matches!(verdicts[5], Verdict::Drop));
        assert!(matches!(verdicts[6], Verdict::NoRoute));
        assert!(matches!(verdicts[7], Verdict::TtlExpired));
        assert!(matches!(verdicts[8], Verdict::Forward { next_hop: 100, .. }));
    }

    #[test]
    fn decap_at_local_endpoint() {
        let eng = engine();
        let inner = tcp_packet(a(1, 1, 1, 1), a(12, 34, 56, 9), 80, 0, 63);
        let wire =
            encap::encapsulate(&inner, a(99, 1, 1, 1), eng.local(), 7).unwrap();
        let verdicts = assert_equivalent(&eng, &[wire]);
        match verdicts[0] {
            Verdict::Decap { tunnel, .. } => assert_eq!(tunnel, 7),
            v => panic!("expected decap, got {v:?}"),
        }
    }

    #[test]
    fn malformed_frames_interleave_without_stopping_the_batch() {
        let eng = engine();
        let good = tcp_packet(a(1, 1, 1, 1), a(12, 34, 99, 9), 80, 0, 64);
        let mut corrupt = good.to_vec();
        corrupt[12] ^= 0xff; // src byte: checksum breaks
        let truncated = good.slice(..10);
        // A MIRO packet to us with a clobbered shim magic.
        let mut bad_shim = encap::encapsulate(&good, a(99, 1, 1, 1), eng.local(), 7)
            .unwrap()
            .to_vec();
        bad_shim[Ipv4Header::LEN] = 0;
        // Re-checksum is unnecessary: the shim is payload, not header.
        let frames = vec![
            good.clone(),
            Bytes::from(corrupt),
            truncated,
            Bytes::from(bad_shim),
            good.clone(),
        ];
        let verdicts = assert_equivalent(&eng, &frames);
        assert!(matches!(verdicts[0], Verdict::Forward { .. }));
        assert!(matches!(
            verdicts[1],
            Verdict::Malformed(PktError::Ip(Ipv4Error::BadChecksum))
        ));
        assert!(matches!(
            verdicts[2],
            Verdict::Malformed(PktError::Ip(Ipv4Error::Truncated))
        ));
        assert!(matches!(verdicts[3], Verdict::Malformed(PktError::Shim)));
        assert!(matches!(verdicts[4], Verdict::Forward { .. }));
    }

    #[test]
    fn batch_of_one_and_empty_batch() {
        let eng = engine();
        let one = tcp_packet(a(1, 1, 1, 1), a(12, 34, 99, 9), 80, 0, 64);
        assert_equivalent(&eng, &[one]);
        let mut scratch = BurstScratch::new();
        eng.forward_burst(&[], &mut scratch);
        assert!(scratch.verdicts().is_empty());
    }

    #[test]
    fn unknown_tunnel_is_a_per_packet_error() {
        let lpm = lpm_from(&[(p(20, 0, 0, 0, 8), 300)]);
        let classifier = Classifier::new(vec![(
            Match { dst: Some(p(20, 0, 0, 0, 8)), ..Default::default() },
            Action::Tunnel(42), // never installed
        )]);
        let eng = Engine::new(a(10, 0, 0, 1), lpm, classifier, vec![], vec![]);
        let frames = vec![tcp_packet(a(1, 1, 1, 1), a(20, 1, 1, 1), 80, 0, 64)];
        let verdicts = assert_equivalent(&eng, &frames);
        assert!(matches!(
            verdicts[0],
            Verdict::Malformed(PktError::UnknownTunnel(42))
        ));
    }

    #[test]
    fn tunnel_template_stamp_matches_allocating_encapsulate() {
        let lpm = lpm_from(&[(p(99, 0, 0, 0, 8), 900)]);
        let spec =
            TunnelSpec { id: 0xDEAD_BEEF, ingress: a(10, 0, 0, 1), endpoint: a(99, 7, 7, 7) };
        let ts = TunnelState::build(spec, &lpm);
        assert_eq!(ts.next_hop, Some(900));
        for len in [0usize, 1, 20, 99, 1400] {
            let inner: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut arena = BytesMut::new();
            let start = ts.stamp(inner.len(), &mut arena).unwrap();
            arena.extend_from_slice(&inner);
            let want = encap::encapsulate(
                &Bytes::from(inner),
                spec.ingress,
                spec.endpoint,
                spec.id,
            )
            .unwrap();
            assert_eq!(&arena[start..], &want[..], "inner len {len}");
        }
    }

    #[test]
    fn split_ratio_is_preserved_between_paths() {
        // The split group's per-flow hash must agree between paths, so a
        // large flow population lands identically on tunnels 8 and 9.
        let eng = engine();
        let mut counts = [0usize; 2];
        let mut frames = Vec::new();
        for i in 0..400u32 {
            frames.push(tcp_packet(
                Ipv4Addr4::from_u32(0x0a00_0000 + i),
                a(12, 34, 1, (i % 200) as u8),
                (1024 + i) as u16,
                0xb8,
                64,
            ));
        }
        let verdicts = assert_equivalent(&eng, &frames);
        for v in &verdicts {
            match v {
                Verdict::Encap { tunnel: 8, .. } => counts[0] += 1,
                Verdict::Encap { tunnel: 9, .. } => counts[1] += 1,
                other => panic!("expected encap, got {other:?}"),
            }
        }
        let frac = counts[0] as f64 / 400.0;
        assert!((0.4..0.6).contains(&frac), "1:1 split should be near 50%: {frac}");
    }
}
