//! Fault injection for the data plane, in the smoltcp idiom: a lossy,
//! corrupting link wrapper with seeded randomness, used to demonstrate
//! that no corrupted packet survives the codecs undetected and that
//! tunnel soft state recovers from loss.
//!
//! The richer fault model — drop + duplicate + reorder + delay on a
//! virtual clock, generic over the payload type — lives in
//! [`miro_core::chan`] (the dependency points dataplane → core) and is
//! re-exported here so data-plane users find both under one roof:
//! `FaultyChannel<Bytes>` faults raw packets exactly as it faults typed
//! control messages.

use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use miro_core::chan::{ChannelStats, Envelope, FaultConfig, FaultyChannel};

/// What the faulty link did to a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkEvent {
    /// Delivered unmodified.
    Delivered(Bytes),
    /// Dropped entirely.
    Dropped,
    /// Delivered with one corrupted byte (index reported).
    Corrupted(Bytes, usize),
}

/// A link that drops and corrupts packets with configured probabilities
/// (per-mille, so configurations are exact integers).
pub struct FaultyLink {
    rng: StdRng,
    /// Drop probability in 1/1000.
    pub drop_permille: u32,
    /// Corruption probability in 1/1000 (applied to surviving packets).
    pub corrupt_permille: u32,
    /// Counters.
    pub delivered: usize,
    pub dropped: usize,
    pub corrupted: usize,
}

impl FaultyLink {
    pub fn new(seed: u64, drop_permille: u32, corrupt_permille: u32) -> Self {
        assert!(drop_permille <= 1000 && corrupt_permille <= 1000);
        FaultyLink {
            rng: StdRng::seed_from_u64(seed),
            drop_permille,
            corrupt_permille,
            delivered: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Total packets transmitted; always `delivered + dropped + corrupted`
    /// (every packet ends in exactly one counter).
    pub fn total(&self) -> usize {
        self.delivered + self.dropped + self.corrupted
    }

    /// Transmit one packet.
    ///
    /// Contract for **empty packets**: an empty packet can be dropped but
    /// never corrupted — there is no byte to flip — so a surviving empty
    /// packet is always `Delivered` and counted as such, even at
    /// `corrupt_permille == 1000`. The corruption RNG draw is skipped
    /// entirely for empty packets (short-circuit on `is_empty`), keeping
    /// the fault schedule of non-empty traffic independent of interleaved
    /// zero-length sends.
    pub fn transmit(&mut self, packet: Bytes) -> LinkEvent {
        if self.rng.gen_range(0..1000u32) < self.drop_permille {
            self.dropped += 1;
            return LinkEvent::Dropped;
        }
        if !packet.is_empty() && self.rng.gen_range(0..1000u32) < self.corrupt_permille {
            let idx = self.rng.gen_range(0..packet.len());
            let mut buf = BytesMut::from(&packet[..]);
            // Flip a random non-zero bit pattern so the byte always changes.
            let flip = self.rng.gen_range(1..=255u8);
            buf[idx] ^= flip;
            self.corrupted += 1;
            return LinkEvent::Corrupted(buf.freeze(), idx);
        }
        self.delivered += 1;
        LinkEvent::Delivered(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encap::{decapsulate, encapsulate};
    use crate::ipv4::{Ipv4Addr4, Ipv4Header};

    fn tunnel_packet() -> Bytes {
        let inner = Ipv4Header::new(
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(12, 34, 56, 78),
            6,
            8,
        )
        .emit_with_payload(b"testdata");
        encapsulate(&inner, Ipv4Addr4::new(1, 1, 1, 1), Ipv4Addr4::new(2, 2, 2, 2), 7)
            .expect("fits")
    }

    #[test]
    fn lossless_link_delivers_everything() {
        let mut link = FaultyLink::new(1, 0, 0);
        for _ in 0..100 {
            assert!(matches!(link.transmit(tunnel_packet()), LinkEvent::Delivered(_)));
        }
        assert_eq!(link.delivered, 100);
        assert_eq!(link.dropped + link.corrupted, 0);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut link = FaultyLink::new(2, 150, 0); // 15%
        for _ in 0..2000 {
            link.transmit(tunnel_packet());
        }
        let rate = link.dropped as f64 / 2000.0;
        assert!((0.10..0.20).contains(&rate), "drop rate {rate}");
    }

    /// The paper's data plane must never act on a corrupted outer header:
    /// every corruption of the outer IPv4 header is caught by the
    /// checksum, and corruptions of the shim are caught by its magic or
    /// change the tunnel id (which the endpoint then fails to find) — we
    /// assert the strong property for the header bytes.
    #[test]
    fn corrupted_outer_headers_never_decapsulate_wrongly() {
        let mut link = FaultyLink::new(3, 0, 1000); // corrupt everything
        let mut header_hits = 0;
        for _ in 0..500 {
            match link.transmit(tunnel_packet()) {
                LinkEvent::Corrupted(pkt, idx) if idx < Ipv4Header::LEN => {
                    header_hits += 1;
                    assert!(
                        decapsulate(pkt).is_err(),
                        "corrupted outer header (byte {idx}) must be rejected"
                    );
                }
                LinkEvent::Corrupted(pkt, idx)
                    if (Ipv4Header::LEN..Ipv4Header::LEN + 2).contains(&idx) =>
                {
                    // Shim magic/version corrupted: also rejected.
                    assert!(decapsulate(pkt).is_err());
                }
                LinkEvent::Corrupted(_, _) => {} // payload corruption: the
                // inner packet's own checksum is the next line of defense.
                other => panic!("expected corruption, got {other:?}"),
            }
        }
        assert!(header_hits > 50, "enough header corruptions sampled: {header_hits}");
    }

    /// Inner-packet corruption surfaces when the revealed packet is
    /// itself parsed (defense in depth).
    #[test]
    fn corrupted_inner_packets_fail_inner_parse() {
        let mut link = FaultyLink::new(4, 0, 1000);
        let inner_hdr_range = Ipv4Header::LEN + crate::encap::MiroShim::LEN
            ..Ipv4Header::LEN + crate::encap::MiroShim::LEN + Ipv4Header::LEN;
        let mut checked = 0;
        for _ in 0..600 {
            if let LinkEvent::Corrupted(pkt, idx) = link.transmit(tunnel_packet()) {
                if inner_hdr_range.contains(&idx) {
                    if let Ok((_, _, revealed)) = decapsulate(pkt) {
                        assert!(
                            Ipv4Header::parse(revealed).is_err(),
                            "inner header corruption must be caught downstream"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 30, "enough inner-header corruptions sampled: {checked}");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = FaultyLink::new(9, 300, 300);
        let mut b = FaultyLink::new(9, 300, 300);
        for _ in 0..50 {
            assert_eq!(a.transmit(tunnel_packet()), b.transmit(tunnel_packet()));
        }
    }

    /// The documented empty-packet contract: an empty packet is never
    /// `Corrupted`, even with corruption forced to certainty — a surviving
    /// empty packet is always `Delivered` and counted.
    #[test]
    fn empty_packets_are_never_corrupted() {
        let mut link = FaultyLink::new(5, 0, 1000); // corrupt everything
        for _ in 0..200 {
            assert!(matches!(link.transmit(Bytes::new()), LinkEvent::Delivered(p) if p.is_empty()));
        }
        assert_eq!(link.delivered, 200);
        assert_eq!(link.corrupted, 0);
        assert_eq!(link.total(), 200);
    }

    /// Empty packets still face the drop roll, and the counters always
    /// partition the traffic: `total() == transmissions` whatever the mix.
    #[test]
    fn counters_partition_all_traffic() {
        let mut link = FaultyLink::new(6, 400, 700);
        for i in 0..3000 {
            // Interleave empty and real packets.
            let pkt = if i % 3 == 0 { Bytes::new() } else { tunnel_packet() };
            link.transmit(pkt);
            assert_eq!(link.total(), i + 1);
        }
        assert_eq!(link.delivered + link.dropped + link.corrupted, 3000);
        assert!(link.dropped > 0 && link.corrupted > 0, "both faults exercised");
    }

    /// The shared control/data fault model re-exported from
    /// `miro_core::chan` carries raw `Bytes` just as well as typed
    /// messages: packets come back byte-identical, and the channel stats
    /// balance.
    #[test]
    fn faulty_channel_carries_raw_packets() {
        let mut ch: FaultyChannel<Bytes> = FaultyChannel::new(7, FaultConfig::lossy(200, 100, 150));
        let pkt = tunnel_packet();
        for t in 0..500u64 {
            ch.send(t, 1, 2, pkt.clone());
        }
        let mut got = 0;
        for t in 0..520u64 {
            for env in ch.deliver_due(t) {
                assert_eq!((env.from, env.to), (1, 2));
                assert_eq!(env.msg, pkt, "payload survives the channel unmodified");
                got += 1;
            }
        }
        assert!(ch.is_idle());
        let s = ch.stats;
        assert_eq!(got, s.delivered);
        assert_eq!(s.sent + s.duplicated, s.delivered + s.dropped);
        assert!(s.dropped > 0 && s.duplicated > 0, "faults exercised");
    }
}
