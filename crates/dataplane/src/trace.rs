//! Packet tracing, smoltcp-style: every packet an instrumented hop sees is
//! recorded with a direction, a virtual timestamp, and a parsed one-line
//! summary — the "--pcap" debugging affordance of the guide's examples,
//! minus the file format (a hexdump renderer is included for sharing).

use crate::encap;
use crate::ipv4::{Ipv4Header, PROTO_MIRO};
use bytes::Bytes;
use std::fmt::Write as _;

/// Direction of a traced packet relative to the instrumented hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    Rx,
    Tx,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub time: u64,
    pub dir: Dir,
    pub bytes: Bytes,
}

impl TraceRecord {
    /// One-line human summary: outer header, MIRO shim if present, inner
    /// header if the packet is a MIRO tunnel packet.
    pub fn summary(&self) -> String {
        let dir = match self.dir {
            Dir::Rx => "rx",
            Dir::Tx => "tx",
        };
        match Ipv4Header::parse(self.bytes.clone()) {
            Err(e) => format!("[{:>6}] {dir} <unparseable: {e}> ({} bytes)", self.time, self.bytes.len()),
            Ok((h, _)) if h.protocol == PROTO_MIRO => {
                match encap::decapsulate(self.bytes.clone()) {
                    Ok((outer, shim, inner)) => {
                        let inner_desc = match Ipv4Header::parse(inner) {
                            Ok((ih, _)) => {
                                format!("{} -> {} proto {}", ih.src, ih.dst, ih.protocol)
                            }
                            Err(_) => "<bad inner>".to_string(),
                        };
                        format!(
                            "[{:>6}] {dir} MIRO tunnel {}: {} -> {} [{inner_desc}]",
                            self.time, shim.tunnel_id, outer.src, outer.dst
                        )
                    }
                    Err(e) => format!("[{:>6}] {dir} MIRO <bad shim: {e}>", self.time),
                }
            }
            Ok((h, _)) => format!(
                "[{:>6}] {dir} {} -> {} proto {} len {}",
                self.time,
                h.src,
                h.dst,
                h.protocol,
                h.payload_len
            ),
        }
    }

    /// Classic 16-byte-per-row hexdump.
    pub fn hexdump(&self) -> String {
        let mut out = String::new();
        for (i, chunk) in self.bytes.chunks(16).enumerate() {
            let _ = write!(out, "{:04x}  ", i * 16);
            for b in chunk {
                let _ = write!(out, "{b:02x} ");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// A bounded ring of trace records.
pub struct Tracer {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    /// Total packets seen (including ones evicted from the ring).
    pub seen: usize,
}

impl Tracer {
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            records: std::collections::VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            seen: 0,
        }
    }

    /// Record one packet.
    pub fn record(&mut self, time: u64, dir: Dir, bytes: Bytes) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { time, dir, bytes });
        self.seen += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// All retained summaries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{}", r.summary());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr4;

    fn plain() -> Bytes {
        Ipv4Header::new(Ipv4Addr4::new(10, 0, 0, 1), Ipv4Addr4::new(12, 34, 56, 78), 6, 3)
            .emit_with_payload(b"abc")
    }

    fn tunneled() -> Bytes {
        encap::encapsulate(
            &plain(),
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            7,
        )
        .expect("fits")
    }

    #[test]
    fn summaries_decode_plain_and_tunneled() {
        let mut t = Tracer::new(8);
        t.record(5, Dir::Rx, plain());
        t.record(6, Dir::Tx, tunneled());
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("rx 10.0.0.1 -> 12.34.56.78 proto 6"), "{text}");
        assert!(lines[1].contains("tx MIRO tunnel 7: 1.1.1.1 -> 2.2.2.2"), "{text}");
        assert!(lines[1].contains("[10.0.0.1 -> 12.34.56.78 proto 6]"), "{text}");
    }

    #[test]
    fn ring_evicts_oldest_but_counts_everything() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.record(i, Dir::Rx, plain());
        }
        assert_eq!(t.seen, 5);
        let times: Vec<u64> = t.records().map(|r| r.time).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn garbage_is_summarized_not_panicked() {
        let mut t = Tracer::new(2);
        t.record(0, Dir::Rx, Bytes::from_static(&[1, 2, 3]));
        assert!(t.render().contains("unparseable"));
    }

    #[test]
    fn hexdump_shape() {
        let mut t = Tracer::new(1);
        t.record(0, Dir::Tx, plain());
        let dump = t.records().next().unwrap().hexdump();
        assert!(dump.starts_with("0000  45 "), "{dump}");
        assert_eq!(dump.lines().count(), 2, "23 bytes = 2 rows");
    }
}
