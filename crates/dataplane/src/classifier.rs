//! Traffic-splitting policies at the tunnel ingress (section 3.5).
//!
//! The upstream AS does not push *all* traffic into a tunnel: it installs
//! classifiers matching header fields (addresses, ports, type-of-service)
//! to send, say, real-time traffic over the low-latency negotiated path
//! and best-effort traffic over the default route; and it can split load
//! across several paths by hashing flows, as in multi-path forwarding
//! within an AS (the TeXCP-style splitting the paper cites).

use crate::ipv4::Ipv4Addr4;
use crate::lpm::Prefix;

/// The 5-tuple-plus-TOS a classifier sees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    pub src: Ipv4Addr4,
    pub dst: Ipv4Addr4,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
    pub tos: u8,
}

/// Where a classified packet goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Follow the default (BGP) path.
    Default,
    /// Enter the tunnel with this id.
    Tunnel(u32),
    /// Drop (policy filtering — the "filter data packets based on their
    /// contents" motivation of section 1.1 at header granularity).
    Drop,
}

/// One match clause; `None` fields are wildcards.
#[derive(Clone, Debug, Default)]
pub struct Match {
    pub src: Option<Prefix>,
    pub dst: Option<Prefix>,
    pub dst_port: Option<(u16, u16)>,
    pub protocol: Option<u8>,
    pub tos: Option<u8>,
}

impl Match {
    pub fn matches(&self, k: &FlowKey) -> bool {
        self.src.is_none_or(|p| p.covers(k.src))
            && self.dst.is_none_or(|p| p.covers(k.dst))
            && self.dst_port.is_none_or(|(lo, hi)| (lo..=hi).contains(&k.dst_port))
            && self.protocol.is_none_or(|p| p == k.protocol)
            && self.tos.is_none_or(|t| t == k.tos)
    }
}

/// A [`Match`] compiled down to pure integer compares: prefix masks are
/// expanded once, wildcards become all-pass masks and full ranges. The
/// per-packet cost is six branch-free comparisons instead of re-deriving
/// `!0 << (32 - len)` masks and `RangeInclusive` state per rule per packet.
#[derive(Clone, Copy, Debug)]
struct CompiledMatch {
    src_net: u32,
    src_mask: u32,
    dst_net: u32,
    dst_mask: u32,
    port_lo: u16,
    port_hi: u16,
    proto_val: u8,
    proto_mask: u8,
    tos_val: u8,
    tos_mask: u8,
}

impl CompiledMatch {
    fn compile(m: &Match) -> CompiledMatch {
        let net = |p: Option<Prefix>| -> (u32, u32) {
            match p {
                None => (0, 0),
                Some(p) => {
                    let mask = if p.len == 0 { 0 } else { !0u32 << (32 - p.len) };
                    (p.addr.to_u32() & mask, mask)
                }
            }
        };
        let (src_net, src_mask) = net(m.src);
        let (dst_net, dst_mask) = net(m.dst);
        let (port_lo, port_hi) = m.dst_port.unwrap_or((0, u16::MAX));
        let (proto_val, proto_mask) = m.protocol.map_or((0, 0), |p| (p, 0xff));
        let (tos_val, tos_mask) = m.tos.map_or((0, 0), |t| (t, 0xff));
        CompiledMatch {
            src_net,
            src_mask,
            dst_net,
            dst_mask,
            port_lo,
            port_hi,
            proto_val,
            proto_mask,
            tos_val,
            tos_mask,
        }
    }

    #[inline]
    fn matches(&self, k: &FlowKey) -> bool {
        (k.src.to_u32() & self.src_mask) == self.src_net
            && (k.dst.to_u32() & self.dst_mask) == self.dst_net
            && self.port_lo <= k.dst_port
            && k.dst_port <= self.port_hi
            && (k.protocol & self.proto_mask) == self.proto_val
            && (k.tos & self.tos_mask) == self.tos_val
    }
}

/// An ordered rule list; first match wins, default action if none match.
/// Rules are compiled to mask/range form once at construction —
/// [`Classifier::classify`] is allocation-free and derivation-free.
pub struct Classifier {
    rules: Vec<(Match, Action)>,
    compiled: Vec<(CompiledMatch, Action)>,
}

impl Classifier {
    pub fn new(rules: Vec<(Match, Action)>) -> Self {
        let compiled = rules
            .iter()
            .map(|(m, a)| (CompiledMatch::compile(m), *a))
            .collect();
        Classifier { rules, compiled }
    }

    pub fn classify(&self, k: &FlowKey) -> Action {
        self.compiled
            .iter()
            .find(|(m, _)| m.matches(k))
            .map(|&(_, a)| a)
            .unwrap_or(Action::Default)
    }

    /// The source rules as given (the compiled form is an internal detail).
    pub fn rules(&self) -> &[(Match, Action)] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Deterministic flow hashing (FNV-1a over the flow key) splitting flows
/// across weighted paths. All packets of one flow take the same path —
/// the property that keeps TCP in order.
pub struct HashSplitter {
    /// (weight, path id); weights need not be normalized.
    paths: Vec<(u32, u32)>,
    total: u64,
}

impl HashSplitter {
    /// # Panics
    /// If `paths` is empty or all weights are zero.
    pub fn new(paths: Vec<(u32, u32)>) -> Self {
        let total: u64 = paths.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "splitter needs at least one positive weight");
        HashSplitter { paths, total }
    }

    fn hash(k: &FlowKey) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in k.src.0.iter().chain(&k.dst.0) {
            eat(*b);
        }
        for b in k.src_port.to_be_bytes().iter().chain(&k.dst_port.to_be_bytes()) {
            eat(*b);
        }
        eat(k.protocol);
        // FNV's low bits are weak (they would bias `% total`); finish with
        // a murmur3-style avalanche so every bit of the key reaches every
        // bit of the hash.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    /// The path id this flow maps to.
    pub fn path_for(&self, k: &FlowKey) -> u32 {
        let mut slot = Self::hash(k) % self.total;
        for &(w, id) in &self.paths {
            if slot < w as u64 {
                return id;
            }
            slot -= w as u64;
        }
        unreachable!("slot within total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst_port: u16, tos: u8) -> FlowKey {
        FlowKey {
            src: Ipv4Addr4::new(10, 0, 0, 1),
            dst: Ipv4Addr4::new(12, 34, 56, 78),
            src_port: 5555,
            dst_port,
            protocol: 6,
            tos,
        }
    }

    #[test]
    fn first_match_wins_default_otherwise() {
        // Section 3.5's example policy: real-time (low TOS delay bit ->
        // here tos=0xb8) via the tunnel, everything else default.
        let c = Classifier::new(vec![
            (Match { tos: Some(0xb8), ..Default::default() }, Action::Tunnel(7)),
            (
                Match { dst_port: Some((0, 1023)), ..Default::default() },
                Action::Drop,
            ),
        ]);
        assert_eq!(c.classify(&key(80, 0xb8)), Action::Tunnel(7), "rule order");
        assert_eq!(c.classify(&key(80, 0)), Action::Drop);
        assert_eq!(c.classify(&key(8080, 0)), Action::Default);
    }

    #[test]
    fn prefix_and_protocol_matching() {
        let c = Classifier::new(vec![(
            Match {
                dst: Some(Prefix::new(Ipv4Addr4::new(12, 34, 0, 0), 16)),
                protocol: Some(17),
                ..Default::default()
            },
            Action::Tunnel(9),
        )]);
        let mut k = key(53, 0);
        k.protocol = 17;
        assert_eq!(c.classify(&k), Action::Tunnel(9));
        k.dst = Ipv4Addr4::new(99, 0, 0, 1);
        assert_eq!(c.classify(&k), Action::Default);
    }

    #[test]
    fn splitter_is_deterministic_per_flow() {
        let s = HashSplitter::new(vec![(1, 100), (1, 200)]);
        let k = key(80, 0);
        let p = s.path_for(&k);
        for _ in 0..10 {
            assert_eq!(s.path_for(&k), p, "same flow, same path");
        }
    }

    #[test]
    fn splitter_respects_weights_roughly() {
        // 3:1 weights should land near 75/25 over many flows.
        let s = HashSplitter::new(vec![(3, 1), (1, 2)]);
        let mut first = 0;
        let n = 4000;
        for i in 0..n {
            let mut k = key(1024 + (i % 50000) as u16, 0);
            k.src = Ipv4Addr4::from_u32(0x0a000000 + i);
            if s.path_for(&k) == 1 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!(
            (0.68..0.82).contains(&frac),
            "3:1 split should be near 75%: {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_splitter_rejected() {
        let _ = HashSplitter::new(vec![(0, 1)]);
    }

    #[test]
    fn compiled_rules_agree_with_interpreted_matches() {
        // Every wildcard combination, swept over a deterministic key mix:
        // the compiled mask form must agree with `Match::matches` exactly.
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for trial in 0..2000u32 {
            let m = Match {
                src: (trial & 1 != 0)
                    .then(|| Prefix::new(Ipv4Addr4::from_u32(next() as u32), (next() % 33) as u8)),
                dst: (trial & 2 != 0)
                    .then(|| Prefix::new(Ipv4Addr4::from_u32(next() as u32), (next() % 33) as u8)),
                dst_port: (trial & 4 != 0).then(|| {
                    let a = next() as u16;
                    let b = next() as u16;
                    (a.min(b), a.max(b))
                }),
                protocol: (trial & 8 != 0).then(|| next() as u8),
                tos: (trial & 16 != 0).then(|| next() as u8),
            };
            let compiled = CompiledMatch::compile(&m);
            for _ in 0..8 {
                let k = FlowKey {
                    src: Ipv4Addr4::from_u32(next() as u32),
                    dst: Ipv4Addr4::from_u32(next() as u32),
                    src_port: next() as u16,
                    dst_port: next() as u16,
                    protocol: next() as u8,
                    tos: next() as u8,
                };
                assert_eq!(compiled.matches(&k), m.matches(&k), "{m:?} on {k:?}");
            }
        }
    }
}
