//! Traffic-splitting policies at the tunnel ingress (section 3.5).
//!
//! The upstream AS does not push *all* traffic into a tunnel: it installs
//! classifiers matching header fields (addresses, ports, type-of-service)
//! to send, say, real-time traffic over the low-latency negotiated path
//! and best-effort traffic over the default route; and it can split load
//! across several paths by hashing flows, as in multi-path forwarding
//! within an AS (the TeXCP-style splitting the paper cites).

use crate::ipv4::Ipv4Addr4;
use crate::lpm::Prefix;

/// The 5-tuple-plus-TOS a classifier sees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    pub src: Ipv4Addr4,
    pub dst: Ipv4Addr4,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
    pub tos: u8,
}

/// Where a classified packet goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Follow the default (BGP) path.
    Default,
    /// Enter the tunnel with this id.
    Tunnel(u32),
    /// Drop (policy filtering — the "filter data packets based on their
    /// contents" motivation of section 1.1 at header granularity).
    Drop,
}

/// One match clause; `None` fields are wildcards.
#[derive(Clone, Debug, Default)]
pub struct Match {
    pub src: Option<Prefix>,
    pub dst: Option<Prefix>,
    pub dst_port: Option<(u16, u16)>,
    pub protocol: Option<u8>,
    pub tos: Option<u8>,
}

impl Match {
    pub fn matches(&self, k: &FlowKey) -> bool {
        self.src.is_none_or(|p| p.covers(k.src))
            && self.dst.is_none_or(|p| p.covers(k.dst))
            && self.dst_port.is_none_or(|(lo, hi)| (lo..=hi).contains(&k.dst_port))
            && self.protocol.is_none_or(|p| p == k.protocol)
            && self.tos.is_none_or(|t| t == k.tos)
    }
}

/// An ordered rule list; first match wins, default action if none match.
pub struct Classifier {
    rules: Vec<(Match, Action)>,
}

impl Classifier {
    pub fn new(rules: Vec<(Match, Action)>) -> Self {
        Classifier { rules }
    }

    pub fn classify(&self, k: &FlowKey) -> Action {
        self.rules
            .iter()
            .find(|(m, _)| m.matches(k))
            .map(|&(_, a)| a)
            .unwrap_or(Action::Default)
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Deterministic flow hashing (FNV-1a over the flow key) splitting flows
/// across weighted paths. All packets of one flow take the same path —
/// the property that keeps TCP in order.
pub struct HashSplitter {
    /// (weight, path id); weights need not be normalized.
    paths: Vec<(u32, u32)>,
    total: u64,
}

impl HashSplitter {
    /// # Panics
    /// If `paths` is empty or all weights are zero.
    pub fn new(paths: Vec<(u32, u32)>) -> Self {
        let total: u64 = paths.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "splitter needs at least one positive weight");
        HashSplitter { paths, total }
    }

    fn hash(k: &FlowKey) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in k.src.0.iter().chain(&k.dst.0) {
            eat(*b);
        }
        for b in k.src_port.to_be_bytes().iter().chain(&k.dst_port.to_be_bytes()) {
            eat(*b);
        }
        eat(k.protocol);
        // FNV's low bits are weak (they would bias `% total`); finish with
        // a murmur3-style avalanche so every bit of the key reaches every
        // bit of the hash.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    /// The path id this flow maps to.
    pub fn path_for(&self, k: &FlowKey) -> u32 {
        let mut slot = Self::hash(k) % self.total;
        for &(w, id) in &self.paths {
            if slot < w as u64 {
                return id;
            }
            slot -= w as u64;
        }
        unreachable!("slot within total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst_port: u16, tos: u8) -> FlowKey {
        FlowKey {
            src: Ipv4Addr4::new(10, 0, 0, 1),
            dst: Ipv4Addr4::new(12, 34, 56, 78),
            src_port: 5555,
            dst_port,
            protocol: 6,
            tos,
        }
    }

    #[test]
    fn first_match_wins_default_otherwise() {
        // Section 3.5's example policy: real-time (low TOS delay bit ->
        // here tos=0xb8) via the tunnel, everything else default.
        let c = Classifier::new(vec![
            (Match { tos: Some(0xb8), ..Default::default() }, Action::Tunnel(7)),
            (
                Match { dst_port: Some((0, 1023)), ..Default::default() },
                Action::Drop,
            ),
        ]);
        assert_eq!(c.classify(&key(80, 0xb8)), Action::Tunnel(7), "rule order");
        assert_eq!(c.classify(&key(80, 0)), Action::Drop);
        assert_eq!(c.classify(&key(8080, 0)), Action::Default);
    }

    #[test]
    fn prefix_and_protocol_matching() {
        let c = Classifier::new(vec![(
            Match {
                dst: Some(Prefix::new(Ipv4Addr4::new(12, 34, 0, 0), 16)),
                protocol: Some(17),
                ..Default::default()
            },
            Action::Tunnel(9),
        )]);
        let mut k = key(53, 0);
        k.protocol = 17;
        assert_eq!(c.classify(&k), Action::Tunnel(9));
        k.dst = Ipv4Addr4::new(99, 0, 0, 1);
        assert_eq!(c.classify(&k), Action::Default);
    }

    #[test]
    fn splitter_is_deterministic_per_flow() {
        let s = HashSplitter::new(vec![(1, 100), (1, 200)]);
        let k = key(80, 0);
        let p = s.path_for(&k);
        for _ in 0..10 {
            assert_eq!(s.path_for(&k), p, "same flow, same path");
        }
    }

    #[test]
    fn splitter_respects_weights_roughly() {
        // 3:1 weights should land near 75/25 over many flows.
        let s = HashSplitter::new(vec![(3, 1), (1, 2)]);
        let mut first = 0;
        let n = 4000;
        for i in 0..n {
            let mut k = key(1024 + (i % 50000) as u16, 0);
            k.src = Ipv4Addr4::from_u32(0x0a000000 + i);
            if s.path_for(&k) == 1 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!(
            (0.68..0.82).contains(&frac),
            "3:1 split should be near 75%: {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_splitter_rejected() {
        let _ = HashSplitter::new(vec![(0, 1)]);
    }
}
