//! Property tests pinning the burst engine to the packet-at-a-time path:
//! over random route tables, classifier rules, tunnels, split groups, and
//! packet mixes (malformed frames included), `Engine::forward_burst` must
//! produce the same verdict per packet as `Engine::forward_one` — same
//! next hop, same tunnel choice, and byte-identical output packets.

use bytes::Bytes;
use miro_dataplane::burst::{lpm_from, BurstScratch, Engine, OneVerdict, TunnelSpec, Verdict};
use miro_dataplane::classifier::{Action, Classifier, HashSplitter, Match};
use miro_dataplane::encap;
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Header};
use miro_dataplane::lpm::Prefix;
use proptest::prelude::*;

const LOCAL: Ipv4Addr4 = Ipv4Addr4([10, 0, 0, 1]);
/// Split-group virtual id (classifier actions may name it).
const GROUP: u32 = 100;

/// Addresses are drawn from a handful of /16s so random tables actually
/// cover random destinations, and random packets share flows.
fn arb_dst() -> impl Strategy<Value = Ipv4Addr4> {
    (0u8..6, any::<u8>(), any::<u8>())
        .prop_map(|(net, c, d)| Ipv4Addr4::new(12, 30 + net, c, d))
}

fn arb_prefix() -> impl Strategy<Value = (Prefix, u32)> {
    (arb_dst(), 8u8..29, 1u32..1000)
        .prop_map(|(a, len, nh)| (Prefix::new(a, len), nh))
}

fn arb_tunnels() -> impl Strategy<Value = Vec<TunnelSpec>> {
    // Ids 1..=4; endpoints inside the routed space (sometimes routable)
    // or far outside it (never routable).
    proptest::collection::vec(
        (1u32..5, prop_oneof![arb_dst(), Just(Ipv4Addr4::new(250, 0, 0, 1))]),
        0..4,
    )
    .prop_map(|raw| {
        let mut specs: Vec<TunnelSpec> = Vec::new();
        for (id, endpoint) in raw {
            if specs.iter().all(|t| t.id != id) {
                specs.push(TunnelSpec { id, ingress: LOCAL, endpoint });
            }
        }
        specs
    })
}

fn arb_rules() -> impl Strategy<Value = Vec<(Match, Action)>> {
    let action = prop_oneof![
        Just(Action::Default),
        Just(Action::Drop),
        (1u32..5).prop_map(Action::Tunnel),
        Just(Action::Tunnel(GROUP)),
        Just(Action::Tunnel(999)), // never installed
    ];
    let rule = (
        proptest::option::of((arb_dst(), 8u8..33).prop_map(|(a, l)| Prefix::new(a, l))),
        proptest::option::of((any::<u16>(), any::<u16>()).prop_map(|(a, b)| (a.min(b), a.max(b)))),
        proptest::option::of(prop_oneof![Just(6u8), Just(17u8), any::<u8>()]),
        proptest::option::of(prop_oneof![Just(0u8), Just(0xb8u8)]),
        action,
    )
        .prop_map(|(dst, dst_port, protocol, tos, a)| {
            (Match { src: None, dst, dst_port, protocol, tos }, a)
        });
    proptest::collection::vec(rule, 0..5)
}

/// A well-formed frame: random addresses within the routed space, TCP /
/// UDP / ICMP, TTLs that exercise expiry, optional trailing link padding.
fn plain_frame() -> impl Strategy<Value = Bytes> {
    (
        arb_dst(),
        arb_dst(),
        prop_oneof![Just(6u8), Just(17u8), Just(1u8)],
        prop_oneof![Just(0u8), Just(0xb8u8)],
        prop_oneof![Just(64u8), Just(2u8), Just(1u8)],
        proptest::collection::vec(any::<u8>(), 0..64),
        0usize..8, // trailing link padding
    )
        .prop_map(|(src, dst, proto, tos, ttl, payload, pad)| {
            let mut h = Ipv4Header::new(src, dst, proto, payload.len() as u16);
            h.dscp_ecn = tos;
            h.ttl = ttl;
            let pkt = h.emit_with_payload(&payload);
            let mut v = pkt.to_vec();
            v.extend_from_slice(&[0u8; 8][..pad]);
            Bytes::from(v)
        })
}

/// One frame of the mix: mostly valid packets, some encapsulated toward
/// the local endpoint, some corrupted or truncated.
fn arb_frame() -> impl Strategy<Value = Bytes> {
    prop_oneof![
        4 => plain_frame(),
        // Encapsulated toward the local endpoint (decap lane).
        1 => (plain_frame(), 1u32..6).prop_map(|(inner, tid)| {
            encap::encapsulate(&inner, Ipv4Addr4::new(99, 9, 9, 9), LOCAL, tid)
                .expect("small inner fits")
        }),
        // Bit-flipped somewhere in the first 20 bytes, or truncated.
        1 => (plain_frame(), 0usize..20, 0u8..8, any::<bool>()).prop_map(
            |(good, byte, bit, cut)| {
                let mut v = good.to_vec();
                if cut {
                    v.truncate(byte);
                } else {
                    v[byte] ^= 1 << bit;
                }
                Bytes::from(v)
            },
        ),
    ]
}

/// Assert one batched verdict equals the packet-at-a-time one, bytes
/// included.
fn assert_same(i: usize, one: &OneVerdict, batched: Verdict, scratch: &BurstScratch) {
    match (one, batched) {
        (OneVerdict::Forward { next_hop: n1, packet }, Verdict::Forward { next_hop, out }) => {
            assert_eq!(*n1, next_hop, "pkt {i}: next hop");
            assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}: forward bytes");
        }
        (
            OneVerdict::Encap { tunnel: t1, next_hop: n1, packet },
            Verdict::Encap { tunnel, next_hop, out },
        ) => {
            assert_eq!(*t1, tunnel, "pkt {i}: tunnel choice");
            assert_eq!(*n1, next_hop, "pkt {i}: next hop");
            assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}: encap bytes");
        }
        (OneVerdict::Decap { tunnel: t1, packet }, Verdict::Decap { tunnel, out }) => {
            assert_eq!(*t1, tunnel, "pkt {i}: decap tunnel");
            assert_eq!(&packet[..], scratch.out_bytes(out), "pkt {i}: decap bytes");
        }
        (OneVerdict::Drop, Verdict::Drop)
        | (OneVerdict::NoRoute, Verdict::NoRoute)
        | (OneVerdict::TtlExpired, Verdict::TtlExpired) => {}
        (OneVerdict::Malformed(e1), Verdict::Malformed(e2)) => {
            assert_eq!(*e1, e2, "pkt {i}: error kind");
        }
        (one, batched) => panic!("pkt {i}: single-packet {one:?} vs batched {batched:?}"),
    }
}

proptest! {
    /// The tentpole pin: for random engines and random frame mixes, the
    /// burst pipeline is byte-identical to the single-packet path and
    /// makes identical path choices, whatever the batch size.
    #[test]
    fn burst_equals_packet_at_a_time(
        table in proptest::collection::vec(arb_prefix(), 1..20),
        tunnels in arb_tunnels(),
        rules in arb_rules(),
        frames in proptest::collection::vec(arb_frame(), 1..40),
        group_members in proptest::collection::vec((1u32..5, 1u32..4), 1..4),
    ) {
        let splitter = HashSplitter::new(
            group_members.iter().map(|&(id, w)| (w, id)).collect(),
        );
        let eng = Engine::new(
            LOCAL,
            lpm_from(&table),
            Classifier::new(rules),
            tunnels,
            vec![(GROUP, splitter)],
        );
        let views: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
        let mut scratch = BurstScratch::new();
        eng.forward_burst(&views, &mut scratch);
        prop_assert_eq!(scratch.verdicts().len(), frames.len());
        for (i, frame) in frames.iter().enumerate() {
            assert_same(i, &eng.forward_one(frame), scratch.verdicts()[i], &scratch);
        }
    }

    /// Scratch reuse across bursts leaks nothing: running a second,
    /// different burst through the same scratch gives the same answers as
    /// a fresh scratch would.
    #[test]
    fn scratch_reuse_is_stateless(
        table in proptest::collection::vec(arb_prefix(), 1..10),
        first in proptest::collection::vec(arb_frame(), 1..20),
        second in proptest::collection::vec(arb_frame(), 1..20),
    ) {
        let eng = Engine::new(
            LOCAL,
            lpm_from(&table),
            Classifier::new(vec![]),
            vec![TunnelSpec { id: 1, ingress: LOCAL, endpoint: Ipv4Addr4::new(12, 31, 0, 1) }],
            vec![],
        );
        let views1: Vec<&[u8]> = first.iter().map(|f| &f[..]).collect();
        let views2: Vec<&[u8]> = second.iter().map(|f| &f[..]).collect();
        let mut reused = BurstScratch::new();
        eng.forward_burst(&views1, &mut reused);
        eng.forward_burst(&views2, &mut reused);
        let mut fresh = BurstScratch::new();
        eng.forward_burst(&views2, &mut fresh);
        prop_assert_eq!(reused.verdicts().len(), fresh.verdicts().len());
        for i in 0..fresh.verdicts().len() {
            let (a, b) = (reused.verdicts()[i], fresh.verdicts()[i]);
            prop_assert_eq!(
                std::mem::discriminant(&a),
                std::mem::discriminant(&b),
                "pkt {}: {:?} vs {:?}", i, a, b
            );
            // Ranges may differ (different arena layout) but bytes must not.
            match (a, b) {
                (Verdict::Forward { out: ra, next_hop: na }, Verdict::Forward { out: rb, next_hop: nb }) => {
                    prop_assert_eq!(na, nb);
                    prop_assert_eq!(reused.out_bytes(ra), fresh.out_bytes(rb));
                }
                (Verdict::Encap { out: ra, tunnel: ta, next_hop: na },
                 Verdict::Encap { out: rb, tunnel: tb, next_hop: nb }) => {
                    prop_assert_eq!((ta, na), (tb, nb));
                    prop_assert_eq!(reused.out_bytes(ra), fresh.out_bytes(rb));
                }
                (Verdict::Decap { out: ra, tunnel: ta }, Verdict::Decap { out: rb, tunnel: tb }) => {
                    prop_assert_eq!(ta, tb);
                    prop_assert_eq!(reused.out_bytes(ra), fresh.out_bytes(rb));
                }
                _ => {}
            }
        }
    }

    /// Every batch size slices the same stream identically: forwarding a
    /// stream in chunks of `n` gives the same per-packet bytes as one big
    /// burst (batch of 1 included — `n` starts there).
    #[test]
    fn batch_size_is_invisible(
        table in proptest::collection::vec(arb_prefix(), 1..10),
        frames in proptest::collection::vec(arb_frame(), 1..30),
        n in 1usize..8,
    ) {
        let eng = Engine::new(
            LOCAL,
            lpm_from(&table),
            Classifier::new(vec![]),
            vec![],
            vec![],
        );
        let views: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
        let mut whole = BurstScratch::new();
        eng.forward_burst(&views, &mut whole);
        let mut chunked = BurstScratch::new();
        let mut offset = 0;
        for chunk in views.chunks(n) {
            eng.forward_burst(chunk, &mut chunked);
            for (j, &v) in chunked.verdicts().iter().enumerate() {
                let w = whole.verdicts()[offset + j];
                match (v, w) {
                    (Verdict::Forward { out: ra, next_hop: na }, Verdict::Forward { out: rb, next_hop: nb }) => {
                        prop_assert_eq!(na, nb);
                        prop_assert_eq!(chunked.out_bytes(ra), whole.out_bytes(rb));
                    }
                    (a, b) => prop_assert_eq!(
                        std::mem::discriminant(&a),
                        std::mem::discriminant(&b),
                        "pkt {}: {:?} vs {:?}", offset + j, a, b
                    ),
                }
            }
            offset += chunk.len();
        }
    }
}
