//! Property-based tests for the data plane: codecs round-trip on
//! arbitrary inputs, corruption never passes silently, and the LPM trie
//! agrees with a linear scan on arbitrary tables.

use bytes::{Bytes, BytesMut};
use miro_dataplane::classifier::{FlowKey, HashSplitter};
use miro_dataplane::encap::{decapsulate, encapsulate};
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Error, Ipv4Header};
use miro_dataplane::lpm::{Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr4> {
    any::<u32>().prop_map(Ipv4Addr4::from_u32)
}

fn arb_header_payload() -> impl Strategy<Value = (Ipv4Header, Vec<u8>)> {
    (
        arb_addr(),
        arb_addr(),
        any::<u8>(),
        any::<u8>(),
        1u8..255,
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(src, dst, proto, dscp, ttl, ident, payload)| {
            let mut h = Ipv4Header::new(src, dst, proto, payload.len() as u16);
            h.dscp_ecn = dscp;
            h.ttl = ttl;
            h.identification = ident;
            (h, payload)
        })
}

proptest! {
    /// IPv4 emit -> parse is the identity, and the payload survives.
    #[test]
    fn ipv4_round_trip((h, payload) in arb_header_payload()) {
        let pkt = h.emit_with_payload(&payload);
        let (parsed, got) = Ipv4Header::parse(pkt).expect("own output parses");
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(&got[..], &payload[..]);
    }

    /// Any single-bit corruption of the 20-byte header is caught by the
    /// checksum (never silently accepted with different field values).
    #[test]
    fn ipv4_detects_any_single_bit_header_corruption(
        (h, payload) in arb_header_payload(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let pkt = h.emit_with_payload(&payload);
        let mut bad = BytesMut::from(&pkt[..]);
        bad[byte] ^= 1 << bit;
        match Ipv4Header::parse(bad.freeze()) {
            Err(_) => {} // rejected: good
            Ok((parsed, _)) => {
                // A parse that succeeds must have found the original
                // header bits (impossible after a flip) — fail loudly.
                prop_assert!(false, "corrupted header accepted: {parsed:?} vs {h:?}");
            }
        }
    }

    /// Encapsulation round-trips arbitrary inner packets under arbitrary
    /// tunnel ids and endpoints.
    #[test]
    fn encap_round_trip(
        (h, payload) in arb_header_payload(),
        ingress in arb_addr(),
        endpoint in arb_addr(),
        tid in any::<u32>(),
    ) {
        let inner = h.emit_with_payload(&payload);
        let wire = encapsulate(&inner, ingress, endpoint, tid).expect("fits");
        let (outer, shim, got) = decapsulate(wire).expect("own output parses");
        prop_assert_eq!(outer.src, ingress);
        prop_assert_eq!(outer.dst, endpoint);
        prop_assert_eq!(shim.tunnel_id, tid);
        prop_assert_eq!(got, inner);
    }

    /// Truncating any packet below the header length is always an error,
    /// never a panic.
    #[test]
    fn truncation_is_graceful((h, payload) in arb_header_payload(), cut in 0usize..19) {
        let pkt = h.emit_with_payload(&payload);
        let r = Ipv4Header::parse(pkt.slice(..cut.min(pkt.len())));
        prop_assert_eq!(r.unwrap_err(), Ipv4Error::Truncated);
    }

    /// Parsing arbitrary bytes never panics.
    #[test]
    fn parse_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Header::parse(Bytes::from(data.clone()));
        let _ = decapsulate(Bytes::from(data));
    }

    /// LPM lookup agrees with a brute-force longest-covering scan for
    /// arbitrary prefix tables and probe addresses.
    #[test]
    fn lpm_matches_linear_scan(
        entries in proptest::collection::vec((any::<u32>(), 0u8..33), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut trie = PrefixTrie::new();
        let mut table: Vec<(Prefix, usize)> = Vec::new();
        for (i, &(addr, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Ipv4Addr4::from_u32(addr), len);
            trie.insert(p, i);
            table.retain(|&(q, _)| q != p);
            table.push((p, i));
        }
        for &probe in &probes {
            let a = Ipv4Addr4::from_u32(probe);
            let expect = table
                .iter()
                .filter(|(p, _)| p.covers(a))
                .max_by_key(|(p, _)| p.len)
                .map(|&(_, v)| v);
            prop_assert_eq!(trie.lookup(a).map(|(_, &v)| v), expect);
        }
    }

    /// Insert-then-remove restores the previous lookup behaviour.
    #[test]
    fn lpm_remove_undoes_insert(
        base in proptest::collection::vec((any::<u32>(), 8u8..25), 0..20),
        extra in (any::<u32>(), 0u8..33),
        probe in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, &(addr, len)) in base.iter().enumerate() {
            trie.insert(Prefix::new(Ipv4Addr4::from_u32(addr), len), i);
        }
        let a = Ipv4Addr4::from_u32(probe);
        let before = trie.lookup(a).map(|(p, &v)| (p, v));
        let px = Prefix::new(Ipv4Addr4::from_u32(extra.0), extra.1);
        let had = trie.get(px).copied();
        trie.insert(px, usize::MAX);
        match had {
            Some(v) => { trie.insert(px, v); }
            None => { trie.remove(px); }
        }
        prop_assert_eq!(trie.lookup(a).map(|(p, &v)| (p, v)), before);
    }

    /// The flow splitter is deterministic and total: every flow maps to a
    /// configured path id.
    #[test]
    fn splitter_is_deterministic_and_total(
        weights in proptest::collection::vec(1u32..100, 1..6),
        src in any::<u32>(),
        port in any::<u16>(),
    ) {
        let paths: Vec<(u32, u32)> =
            weights.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect();
        let s = HashSplitter::new(paths.clone());
        let k = FlowKey {
            src: Ipv4Addr4::from_u32(src),
            dst: Ipv4Addr4::new(1, 2, 3, 4),
            src_port: port,
            dst_port: 443,
            protocol: 6,
            tos: 0,
        };
        let p1 = s.path_for(&k);
        prop_assert_eq!(p1, s.path_for(&k));
        prop_assert!(paths.iter().any(|&(_, id)| id == p1));
    }
}
