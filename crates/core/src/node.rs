//! An in-process control-plane harness: MIRO nodes exchanging the
//! Figure 4.2 message sequence over a virtual clock.
//!
//! `miro-eval` uses the pure functions in [`crate::strategy`] directly for
//! speed; this harness exists to exercise the *protocol* — admission
//! control, pricing, the four-message handshake, soft-state keepalives,
//! and teardown on route change — end to end, the way a deployment would
//! run it. The examples print its message log as a negotiation transcript.

use crate::export::ExportPolicy;
use crate::negotiate::{
    admissible, Constraint, Message, NegotiationError, NegotiationId, RejectReason,
};
use crate::strategy::export_rel_toward;
use crate::tunnel::{Tunnel, TunnelId, TunnelManager};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};

/// Responder-side configuration (section 6.2.1's negotiation rules).
#[derive(Clone, Debug)]
pub struct ResponderConfig {
    /// Which alternates to reveal.
    pub policy: ExportPolicy,
    /// `when tunnel_number < N` admission gate (section 6.3 example: 1000).
    pub max_tunnels: usize,
    /// `accept negotiation from any`, or only from an allow list.
    pub accept_any: bool,
    /// The allow list used when `accept_any` is false.
    pub allow: Vec<NodeId>,
    /// Markup added to every offer's base (class-derived) price — the
    /// knob the section 6.2.2 economic lifecycle turns: "whenever one of
    /// the parties is no longer satisfied with the price, the tunnel will
    /// be terminated, then the requesting AS will re-negotiate a new
    /// tunnel using a new price if needed".
    pub price_markup: u32,
}

impl Default for ResponderConfig {
    fn default() -> Self {
        ResponderConfig {
            policy: ExportPolicy::RespectExport,
            max_tunnels: 1000,
            accept_any: true,
            allow: Vec::new(),
            price_markup: 0,
        }
    }
}

/// A live lease in the network ledger: who sold what to whom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Id assigned by the downstream (responding) AS.
    pub id: TunnelId,
    /// The responding AS (tunnel egress; owns the id space).
    pub downstream: NodeId,
    /// The requesting AS (tunnel ingress).
    pub upstream: NodeId,
    /// Destination prefix served.
    pub dest: NodeId,
    /// The alternate path sold, as held by the downstream AS.
    pub path: Vec<NodeId>,
    /// The upstream's default path to the downstream at establishment
    /// time; if this changes, the upstream tears the tunnel down
    /// (section 4.3).
    pub upstream_path: Vec<NodeId>,
    /// Agreed price.
    pub price: u32,
    /// The upstream's budget at negotiation time (for re-negotiation).
    pub budget: u32,
    /// The constraints the lease was negotiated under.
    pub constraints: Vec<Constraint>,
}

/// Responder-side decision, shared by this synchronous harness and the
/// unreliable-channel harness in [`crate::reliable`]: admission control
/// (section 6.2.1), then the policy-filtered, markup-priced,
/// constraint-admissible offer set (section 6.2.2). `live_tunnels` is the
/// responder's current tunnel count for the `tunnel_number < N` gate.
pub fn responder_offers(
    cfg: &ResponderConfig,
    live_tunnels: usize,
    st: &RoutingState<'_>,
    requester: NodeId,
    responder: NodeId,
    constraints: &[Constraint],
    switch: bool,
) -> Result<Vec<crate::export::Offer>, RejectReason> {
    if !cfg.accept_any && !cfg.allow.contains(&requester) {
        return Err(RejectReason::NotAllowed);
    }
    if live_tunnels >= cfg.max_tunnels {
        return Err(RejectReason::TunnelLimit);
    }
    let pool = if switch {
        cfg.policy.switch_offers(st, responder)
    } else {
        let toward = export_rel_toward(st, requester, responder);
        cfg.policy.offers(st, responder, toward)
    };
    let pool: Vec<_> = pool
        .into_iter()
        .map(|mut o| {
            o.price += cfg.price_markup;
            o
        })
        .collect();
    let offers = admissible(&pool, constraints);
    if offers.is_empty() {
        return Err(RejectReason::NoCandidates);
    }
    Ok(offers)
}

/// Requester-side choice, shared with [`crate::reliable`]: the best offer
/// by (class, length, price) whose price fits the budget, as an index into
/// `offers`.
pub fn choose_offer(offers: &[crate::export::Offer], max_price: u32) -> Option<usize> {
    offers
        .iter()
        .enumerate()
        .filter(|(_, o)| o.price <= max_price)
        .min_by_key(|(_, o)| (o.route.class, o.route.len(), o.price))
        .map(|(i, _)| i)
}

/// The whole-network control-plane harness.
pub struct MiroNetwork<'t> {
    topo: &'t Topology,
    /// Virtual clock, advanced by [`MiroNetwork::tick`].
    pub clock: u64,
    configs: Vec<ResponderConfig>,
    managers: Vec<TunnelManager>,
    leases: Vec<Lease>,
    next_neg: u64,
    /// Transcript of every message "sent": (from, to, message).
    pub log: Vec<(NodeId, NodeId, Message)>,
}

impl<'t> MiroNetwork<'t> {
    pub fn new(topo: &'t Topology) -> Self {
        let n = topo.num_nodes();
        MiroNetwork {
            topo,
            clock: 0,
            configs: vec![ResponderConfig::default(); n],
            managers: (0..n).map(|_| TunnelManager::new()).collect(),
            leases: Vec::new(),
            next_neg: 0,
            log: Vec::new(),
        }
    }

    /// Replace one AS's responder configuration.
    pub fn configure(&mut self, node: NodeId, config: ResponderConfig) {
        self.configs[node as usize] = config;
    }

    /// The live leases ledger (id order).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// A node's tunnel table.
    pub fn tunnels(&self, node: NodeId) -> &TunnelManager {
        &self.managers[node as usize]
    }

    /// Run one full negotiation (Figure 4.2) between `requester` and
    /// `responder` for destination `st.dest()`. On success the tunnel is
    /// installed on both sides and a [`Lease`] recorded.
    ///
    /// `max_price` is the requester's budget (section 6.3: "maximum cost
    /// 250"); offers above it are unacceptable even if they satisfy the
    /// constraints.
    pub fn negotiate(
        &mut self,
        st: &RoutingState<'_>,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
    ) -> Result<TunnelId, NegotiationError> {
        self.negotiate_with(st, requester, responder, constraints, max_price, false)
    }

    /// The downstream-initiated variant (section 3.3's reverse scenario /
    /// the inbound-traffic-control application of section 5.4): the
    /// requester — typically the *destination* — asks the responder to
    /// switch its own selected route, so the offer pool is the responder's
    /// full candidate set (class-restricted under the strict policy) rather
    /// than its export-filtered alternates.
    pub fn negotiate_switch(
        &mut self,
        st: &RoutingState<'_>,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
    ) -> Result<TunnelId, NegotiationError> {
        self.negotiate_with(st, requester, responder, constraints, max_price, true)
    }

    fn negotiate_with(
        &mut self,
        st: &RoutingState<'_>,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
        switch: bool,
    ) -> Result<TunnelId, NegotiationError> {
        if requester == responder {
            return Err(NegotiationError::SelfNegotiation);
        }
        let id = NegotiationId(self.next_neg);
        self.next_neg += 1;
        self.log.push((
            requester,
            responder,
            Message::Request { id, dest: st.dest(), constraints: constraints.clone() },
        ));

        // Responder decides: admission (section 6.2.1), then policy- and
        // constraint-filtered offers (section 6.2.2). Shared verbatim with
        // the unreliable-channel harness in [`crate::reliable`].
        let cfg = self.configs[responder as usize].clone();
        let offers = match responder_offers(
            &cfg,
            self.managers[responder as usize].len(),
            st,
            requester,
            responder,
            &constraints,
            switch,
        ) {
            Ok(offers) => offers,
            Err(reason) => {
                self.log.push((responder, requester, Message::Reject { id, reason }));
                return Err(NegotiationError::Rejected(reason));
            }
        };
        self.log.push((responder, requester, Message::Offers { id, offers: offers.clone() }));

        // Requester evaluates: best by (class, length, price), within budget.
        let Some(choice) = choose_offer(&offers, max_price) else {
            return Err(NegotiationError::NoneAcceptable);
        };
        self.log.push((requester, responder, Message::Accept { id, choice }));

        // Handshake completes: downstream allocates the id, both install.
        let offer = &offers[choice];
        let now = self.clock;
        let tid = self.managers[responder as usize].establish(
            requester,
            st.dest(),
            offer.route.path.clone(),
            offer.price,
            now,
        );
        let adopted = self.managers[requester as usize].adopt(Tunnel {
            id: tid,
            peer: responder,
            dest: st.dest(),
            path: offer.route.path.clone(),
            price: offer.price,
            last_heartbeat: now,
        });
        debug_assert!(adopted || requester == responder);
        self.leases.push(Lease {
            id: tid,
            downstream: responder,
            upstream: requester,
            dest: st.dest(),
            path: offer.route.path.clone(),
            upstream_path: st.path(requester).unwrap_or_default(),
            price: offer.price,
            budget: max_price,
            constraints,
        });
        self.log.push((responder, requester, Message::Established { id, tunnel: tid }));
        Ok(tid)
    }

    /// Advance the virtual clock. Every live lease exchanges a keepalive
    /// (section 4.3's heartbeat), then both sides expire anything stale —
    /// so in the healthy case this is a no-op apart from time moving.
    pub fn tick(&mut self, dt: u64, keepalive_timeout: u64) {
        self.clock += dt;
        let clock = self.clock;
        for lease in &self.leases {
            // Upstream pings downstream; both refresh.
            self.log.push((lease.upstream, lease.downstream, Message::Keepalive {
                tunnel: lease.id,
            }));
            self.managers[lease.downstream as usize].keepalive(lease.id, clock);
            self.managers[lease.upstream as usize].keepalive(lease.id, clock);
        }
        for m in &mut self.managers {
            m.expire(clock, keepalive_timeout);
        }
        self.leases.retain(|l| {
            self.managers[l.downstream as usize].get(l.id).is_some()
        });
    }

    /// Simulate a silent upstream failure: the upstream stops sending
    /// keepalives for `lease_id`; after `timeout` the downstream reaps the
    /// tunnel (the "idle tunnels in the downstream ASes" scenario of
    /// section 4.3 where the teardown message itself cannot be delivered).
    pub fn silence(&mut self, lease_id: TunnelId, dt: u64, keepalive_timeout: u64) {
        self.clock += dt;
        let clock = self.clock;
        for lease in &self.leases {
            if lease.id == lease_id {
                continue;
            }
            self.managers[lease.downstream as usize].keepalive(lease.id, clock);
            self.managers[lease.upstream as usize].keepalive(lease.id, clock);
        }
        for m in &mut self.managers {
            m.expire(clock, keepalive_timeout);
        }
        self.leases.retain(|l| {
            self.managers[l.downstream as usize].get(l.id).is_some()
        });
    }

    /// Routes changed (e.g. a link failed and BGP reconverged): re-check
    /// every lease for `st.dest()` against the new state and tear down
    /// invalidated tunnels on both sides (section 4.3). A lease survives
    /// only if the sold path is still in the downstream's candidate set
    /// *and* the upstream's default path to the downstream is unchanged.
    pub fn routes_changed(&mut self, st: &RoutingState<'_>) {
        let dest = st.dest();
        let mut dead: Vec<usize> = Vec::new();
        for (i, lease) in self.leases.iter().enumerate() {
            if lease.dest != dest {
                continue;
            }
            let still_offered = st
                .candidates(lease.downstream)
                .iter()
                .any(|c| c.path == lease.path);
            let upstream_ok = st.path(lease.upstream).as_deref()
                == Some(lease.upstream_path.as_slice())
                || lease.upstream_path.is_empty();
            if !still_offered || !upstream_ok {
                dead.push(i);
            }
        }
        for &i in dead.iter().rev() {
            let lease = self.leases.remove(i);
            self.managers[lease.downstream as usize].teardown(lease.id);
            self.managers[lease.upstream as usize].teardown(lease.id);
            self.log.push((lease.downstream, lease.upstream, Message::Teardown {
                tunnel: lease.id,
            }));
        }
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The section 6.2.2 economic lifecycle: `responder` changes its price
    /// markup. Every live lease it sold for `st.dest()` is re-quoted; a
    /// lease whose new price still fits the upstream's original budget is
    /// updated in place (the parties simply agree on the new number),
    /// otherwise the tunnel is torn down and the upstream immediately
    /// re-negotiates under the new schedule — which may land on a
    /// different (cheaper) alternate or fail, leaving it on the default
    /// path. Returns `(lease id, replacement id if any)` per affected
    /// lease.
    pub fn reprice(
        &mut self,
        st: &RoutingState<'_>,
        responder: NodeId,
        new_markup: u32,
    ) -> Vec<(TunnelId, Option<TunnelId>)> {
        let old_markup = self.configs[responder as usize].price_markup;
        self.configs[responder as usize].price_markup = new_markup;
        let affected: Vec<Lease> = self
            .leases
            .iter()
            .filter(|l| l.downstream == responder && l.dest == st.dest())
            .cloned()
            .collect();
        let mut out = Vec::new();
        for lease in affected {
            let base = lease.price - old_markup.min(lease.price);
            let new_price = base + new_markup;
            if new_price <= lease.budget {
                // Both parties accept the adjustment; no teardown.
                for l in &mut self.leases {
                    if l.id == lease.id && l.downstream == responder {
                        l.price = new_price;
                    }
                }
                continue;
            }
            // Dissatisfied party: terminate, then re-negotiate.
            self.leases.retain(|l| !(l.id == lease.id && l.downstream == responder));
            self.managers[lease.downstream as usize].teardown(lease.id);
            self.managers[lease.upstream as usize].teardown(lease.id);
            self.log.push((lease.downstream, lease.upstream, Message::Teardown {
                tunnel: lease.id,
            }));
            let replacement = self
                .negotiate(st, lease.upstream, responder, lease.constraints.clone(), lease.budget)
                .ok();
            out.push((lease.id, replacement));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::figure_1_1;

    fn setup() -> (miro_topology::Topology, [NodeId; 6]) {
        figure_1_1()
    }

    #[test]
    fn full_handshake_installs_both_sides() {
        let (t, [a, b, c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        let tid = net
            .negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250)
            .unwrap();
        // Ledger and both tunnel tables agree.
        assert_eq!(net.leases().len(), 1);
        let lease = &net.leases()[0];
        assert_eq!(lease.path, vec![c, f]);
        assert_eq!((lease.upstream, lease.downstream), (a, b));
        assert!(net.tunnels(a).get(tid).is_some());
        assert!(net.tunnels(b).get(tid).is_some());
        // Message sequence matches Figure 4.2.
        let kinds: Vec<&'static str> = net
            .log
            .iter()
            .map(|(_, _, m)| match m {
                Message::Request { .. } => "request",
                Message::Offers { .. } => "offers",
                Message::Accept { .. } => "accept",
                Message::Established { .. } => "established",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["request", "offers", "accept", "established"]);
    }

    #[test]
    fn admission_allow_list() {
        let (t, [a, b, _c, d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        net.configure(b, ResponderConfig { accept_any: false, allow: vec![d], ..Default::default() });
        let err = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250);
        assert_eq!(err, Err(NegotiationError::Rejected(RejectReason::NotAllowed)));
        assert!(net.leases().is_empty());
    }

    #[test]
    fn tunnel_limit_rejects() {
        let (t, [a, b, _c, d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        net.configure(b, ResponderConfig { max_tunnels: 1, ..Default::default() });
        net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let err = net.negotiate(&st, d, b, vec![Constraint::AvoidAs(e)], 250);
        assert_eq!(err, Err(NegotiationError::Rejected(RejectReason::TunnelLimit)));
    }

    #[test]
    fn no_candidates_rejects() {
        let (t, [a, b, _c, _d, _e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        // Avoiding F itself is impossible: every route ends at F.
        let err = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(f)], 250);
        assert_eq!(err, Err(NegotiationError::Rejected(RejectReason::NoCandidates)));
    }

    #[test]
    fn budget_too_small_is_none_acceptable() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        // BCF is a peer route priced at 180; a budget of 150 can't buy it.
        let err = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 150);
        assert_eq!(err, Err(NegotiationError::NoneAcceptable));
        assert!(net.leases().is_empty());
    }

    #[test]
    fn keepalives_keep_tunnels_alive_and_silence_kills() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        let tid = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        for _ in 0..10 {
            net.tick(10, 30);
        }
        assert_eq!(net.leases().len(), 1, "healthy tunnel survives ticking");
        // Upstream goes silent for longer than the timeout.
        net.silence(tid, 31, 30);
        assert!(net.leases().is_empty(), "soft state must expire");
        assert!(net.tunnels(b).get(tid).is_none());
    }

    #[test]
    fn route_change_triggers_teardown() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        let tid = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        // Unchanged state: nothing happens.
        net.routes_changed(&st);
        assert_eq!(net.leases().len(), 1);
        // Now simulate the C-F link failing: recompute on a topology
        // without it; B no longer has the BCF candidate.
        let mut bld = miro_topology::TopologyBuilder::new();
        for n in 1..=6 {
            bld.add_as(miro_topology::AsId(n));
        }
        let id = miro_topology::AsId;
        bld.provider_customer(id(2), id(1));
        bld.provider_customer(id(4), id(1));
        bld.provider_customer(id(2), id(5));
        bld.provider_customer(id(4), id(5));
        bld.peering(id(2), id(3));
        bld.provider_customer(id(5), id(6));
        bld.peering(id(3), id(5)); // C-F link absent
        let t2 = bld.build().unwrap();
        let f2 = t2.node(id(6)).unwrap();
        let st2 = RoutingState::solve(&t2, f2);
        net.routes_changed(&st2);
        assert!(net.leases().is_empty());
        assert!(net.tunnels(a).get(tid).is_none());
        assert!(net.tunnels(b).get(tid).is_none());
        assert!(net
            .log
            .iter()
            .any(|(_, _, m)| matches!(m, Message::Teardown { .. })));
    }

    #[test]
    fn repricing_within_budget_updates_in_place() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        // BCF is a peer route: base price 180, budget 250.
        let tid = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let outcomes = net.reprice(&st, b, 40); // 180 + 40 = 220 <= 250
        assert!(outcomes.is_empty(), "no teardown needed");
        assert_eq!(net.leases()[0].id, tid);
        assert_eq!(net.leases()[0].price, 220);
    }

    #[test]
    fn repricing_beyond_budget_tears_down_and_renegotiates() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        let tid = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        // 180 + 100 = 280 > 250: the only admissible offer is now too
        // expensive even fresh, so re-negotiation fails and A falls back
        // to the default path.
        let outcomes = net.reprice(&st, b, 100);
        assert_eq!(outcomes, vec![(tid, None)]);
        assert!(net.leases().is_empty());
        assert!(net.tunnels(a).get(tid).is_none());
        assert!(net.tunnels(b).get(tid).is_none());
        assert!(net.log.iter().any(|(_, _, m)| matches!(m, Message::Teardown { .. })));
        // Cooling the price back down lets A buy again (fresh negotiation).
        net.configure(b, ResponderConfig { price_markup: 0, ..Default::default() });
        assert!(net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).is_ok());
    }

    #[test]
    fn markup_prices_flow_into_offers() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        net.configure(b, ResponderConfig { price_markup: 30, ..Default::default() });
        net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        assert_eq!(net.leases()[0].price, 210, "base 180 + markup 30");
    }

    #[test]
    fn self_negotiation_refused() {
        let (t, [a, ..]) = setup();
        let st = RoutingState::solve(&t, a);
        let mut net = MiroNetwork::new(&t);
        assert_eq!(
            net.negotiate(&st, a, a, vec![], 100),
            Err(NegotiationError::SelfNegotiation)
        );
    }

    #[test]
    fn downstream_initiated_negotiation_for_inbound_control() {
        // Section 3.3's reverse scenario: F asks B to move traffic off the
        // EF link. Modeled as F requesting from B an alternate toward F
        // itself that avoids E.
        let (t, [_a, b, c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = MiroNetwork::new(&t);
        let tid = net.negotiate_switch(&st, f, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let lease = &net.leases()[0];
        assert_eq!(lease.upstream, f);
        assert_eq!(lease.downstream, b);
        assert_eq!(lease.path, vec![c, f]);
        let _ = tid;
    }
}
