//! Selective export of alternate routes (section 3.4 / section 5.1).
//!
//! A MIRO responding AS does not dump its whole rib-in on a requester; it
//! applies policy. The evaluation studies three levels:
//!
//! * **Strict** (`/s`): only alternates with the *same local preference*
//!   (same business class) as the route it currently advertises, still
//!   subject to conventional export rules. This is the policy the
//!   convergence Guidelines D/E assume ("same-class routes", section 7.3.3).
//! * **RespectExport** (`/e`): every alternate the conventional export
//!   rules would allow toward this requester (e.g. everything to a
//!   customer, customer-learned routes to a peer).
//! * **Flexible** (`/a`): every alternate, relationships ignored — the
//!   paper's upper bound on exposable diversity.

use miro_bgp::route::{CandidateRoute, ExportScope};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Rel, RouteClass};

/// The responding AS's alternate-route export policy.
///
/// ```
/// use miro_bgp::solver::RoutingState;
/// use miro_core::export::ExportPolicy;
/// use miro_topology::{gen::figure_1_1, Rel};
///
/// // In Figure 1.1, B selected BEF but also knows the peer route BCF.
/// let (topo, [_a, b, c, _d, _e, f]) = figure_1_1();
/// let st = RoutingState::solve(&topo, f);
/// // Strict export hides it (different class from B's best)...
/// assert!(ExportPolicy::Strict.offers(&st, b, Rel::Customer).is_empty());
/// // ...the conventional export policy reveals it to a customer.
/// let offers = ExportPolicy::RespectExport.offers(&st, b, Rel::Customer);
/// assert_eq!(offers[0].route.path, vec![c, f]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExportPolicy {
    /// `/s` — same class as the current best route, conventional export.
    Strict,
    /// `/e` — anything the conventional export rules allow.
    RespectExport,
    /// `/a` — everything (upper bound; "arguably unreasonable in practice").
    Flexible,
}

impl ExportPolicy {
    /// Paper's suffix label (`/s`, `/e`, `/a`).
    pub fn label(self) -> &'static str {
        match self {
            ExportPolicy::Strict => "/s",
            ExportPolicy::RespectExport => "/e",
            ExportPolicy::Flexible => "/a",
        }
    }

    /// All three, in the order the paper's tables list them.
    pub const ALL: [ExportPolicy; 3] =
        [ExportPolicy::Strict, ExportPolicy::RespectExport, ExportPolicy::Flexible];

    /// The alternates `responder` would reveal to a requester whose export
    /// relationship is `toward` (what the requester — or, for non-adjacent
    /// requesters, the AS the traffic would arrive through — *is to* the
    /// responder; see DESIGN.md on this documented choice).
    ///
    /// The responder's currently-selected route is excluded: the requester
    /// already sees its effects through the default path. Offers are
    /// priced by class via [`price_for_class`].
    pub fn offers(
        self,
        st: &RoutingState<'_>,
        responder: NodeId,
        toward: Rel,
    ) -> Vec<Offer> {
        let Some(best) = st.best(responder) else { return Vec::new() };
        let best_path = st.path(responder).expect("routed responder has a path");
        st.candidates(responder)
            .into_iter()
            .filter(|c| c.path != best_path)
            .filter(|c| match self {
                ExportPolicy::Flexible => true,
                ExportPolicy::RespectExport => ExportScope::allows(c.class, toward),
                ExportPolicy::Strict => {
                    c.class == best.class && ExportScope::allows(c.class, toward)
                }
            })
            .map(|route| {
                let price = price_for_class(route.class);
                Offer { route, price }
            })
            .collect()
    }
}

impl ExportPolicy {
    /// The candidate routes `node` could *itself switch to* on request — the
    /// downstream-initiated scenario of section 3.3, where a destination AS
    /// asks an upstream "power node" to select a different path and
    /// re-advertise it (the inbound-traffic-control application,
    /// section 5.4). No export scope applies: the node is choosing among
    /// routes it already holds for its own use. Under `Strict` it will only
    /// switch within the same business class as its current best route
    /// (no revenue downgrade); the relaxed policies allow any candidate.
    pub fn switch_offers(self, st: &RoutingState<'_>, node: NodeId) -> Vec<Offer> {
        let Some(best) = st.best(node) else { return Vec::new() };
        let best_path = st.path(node).expect("routed node has a path");
        st.candidates(node)
            .into_iter()
            .filter(|c| c.path != best_path)
            .filter(|c| match self {
                ExportPolicy::Strict => c.class == best.class,
                ExportPolicy::RespectExport | ExportPolicy::Flexible => true,
            })
            .map(|route| {
                let price = price_for_class(route.class);
                Offer { route, price }
            })
            .collect()
    }
}

/// One alternate route offered during negotiation, with the price tag the
/// responding AS attached (section 3.4: "potentially tag these routes with
/// preference or pricing information"; section 6.2.2's worked example
/// prices customer routes below peer routes below provider routes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Offer {
    /// The alternate route, as the responder holds it.
    pub route: CandidateRoute,
    /// Asking price for carrying the requester's traffic on it.
    pub price: u32,
}

/// Default price schedule, mirroring the Chapter 6 example (customer routes
/// sell for less than peer routes; provider routes cost the responder real
/// money, so they are dearest).
pub fn price_for_class(class: RouteClass) -> u32 {
    match class {
        RouteClass::Customer => 120,
        RouteClass::Peer => 180,
        RouteClass::Provider => 250,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_bgp::solver::RoutingState;
    use miro_topology::gen::figure_1_1;
    use miro_topology::{AsId, TopologyBuilder};

    /// In Figure 1.1, B selects BEF (customer) and also knows BCF (peer).
    #[test]
    fn figure_1_1_b_reveals_bcf_under_each_policy() {
        let (t, [a, b, c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // A is B's customer: toward = Customer.
        let strict = ExportPolicy::Strict.offers(&st, b, Rel::Customer);
        let export = ExportPolicy::RespectExport.offers(&st, b, Rel::Customer);
        let flex = ExportPolicy::Flexible.offers(&st, b, Rel::Customer);
        // B's best is a customer route (BEF); the alternate BCF is a peer
        // route: strict (same class) hides it, /e and /a reveal it to a
        // customer.
        assert!(strict.is_empty(), "strict offers only same-class routes");
        assert_eq!(export.len(), 1);
        assert_eq!(export[0].route.path, vec![c, f]);
        assert_eq!(flex.len(), 1);
        assert_eq!(flex[0].route.path, vec![c, f]);
        let _ = (a, e);
    }

    #[test]
    fn peer_requester_gets_only_customer_alternates_under_e() {
        // Responder r: best = customer route; alternates: one customer
        // (via c2), one peer (via p). A peer requester sees only the
        // customer alternate under /e, both under /a.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4, 5, 6] {
            bld.add_as(AsId(n));
        }
        // dest = 1. r = 4. c1 = 2, c2 = 3 both customers of 4, both
        // customers of... both provide routes to 1:
        bld.provider_customer(AsId(2), AsId(1)); // 2 provides 1
        bld.provider_customer(AsId(3), AsId(1)); // 3 provides 1
        bld.provider_customer(AsId(4), AsId(2)); // 4 provides 2
        bld.provider_customer(AsId(4), AsId(3)); // 4 provides 3
        bld.peering(AsId(4), AsId(5)); // 5 peer of 4
        bld.provider_customer(AsId(5), AsId(1)); // 5 provides 1 too
        bld.peering(AsId(4), AsId(6)); // 6: the peer requester
        let t = bld.build().unwrap();
        let n = |x: u32| t.node(AsId(x)).unwrap();
        let st = RoutingState::solve(&t, n(1));
        // r=4's candidates: via 2 (customer, len 2), via 3 (customer,
        // len 2), via 5 (peer, len 2). Best: via 2 (lower ASN).
        let offers_e = ExportPolicy::RespectExport.offers(&st, n(4), Rel::Peer);
        assert_eq!(offers_e.len(), 1);
        assert_eq!(offers_e[0].route.path, vec![n(3), n(1)]);
        let offers_a = ExportPolicy::Flexible.offers(&st, n(4), Rel::Peer);
        assert_eq!(offers_a.len(), 2);
        // Strict: same class (customer) + exportable to peer = via 3 only.
        let offers_s = ExportPolicy::Strict.offers(&st, n(4), Rel::Peer);
        assert_eq!(offers_s.len(), 1);
        assert_eq!(offers_s[0].route.path, vec![n(3), n(1)]);
    }

    #[test]
    fn strict_is_subset_of_export_is_subset_of_flexible() {
        let t = miro_topology::GenParams::tiny(31).generate();
        for d in t.nodes().step_by(23) {
            let st = RoutingState::solve(&t, d);
            for r in t.nodes().step_by(5) {
                for toward in [Rel::Customer, Rel::Peer, Rel::Provider, Rel::Sibling] {
                    let s = ExportPolicy::Strict.offers(&st, r, toward);
                    let e = ExportPolicy::RespectExport.offers(&st, r, toward);
                    let a = ExportPolicy::Flexible.offers(&st, r, toward);
                    assert!(s.len() <= e.len() && e.len() <= a.len());
                    for o in &s {
                        assert!(e.contains(o), "strict ⊆ export");
                    }
                    for o in &e {
                        assert!(a.contains(o), "export ⊆ flexible");
                    }
                }
            }
        }
    }

    #[test]
    fn offers_exclude_current_best() {
        let t = miro_topology::GenParams::tiny(32).generate();
        let d = t.nodes().next().unwrap();
        let st = RoutingState::solve(&t, d);
        for r in t.nodes() {
            let Some(best_path) = st.path(r) else { continue };
            for o in ExportPolicy::Flexible.offers(&st, r, Rel::Customer) {
                assert_ne!(o.route.path, best_path);
            }
        }
    }

    #[test]
    fn unrouted_responder_offers_nothing() {
        let mut bld = TopologyBuilder::new();
        bld.add_as(AsId(1));
        bld.add_as(AsId(2));
        let t = bld.build().unwrap();
        let st = RoutingState::solve(&t, t.node(AsId(1)).unwrap());
        let iso = t.node(AsId(2)).unwrap();
        assert!(ExportPolicy::Flexible.offers(&st, iso, Rel::Customer).is_empty());
    }

    #[test]
    fn prices_follow_class_ordering() {
        assert!(price_for_class(RouteClass::Customer) < price_for_class(RouteClass::Peer));
        assert!(price_for_class(RouteClass::Peer) < price_for_class(RouteClass::Provider));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ExportPolicy::Strict.label(), "/s");
        assert_eq!(ExportPolicy::RespectExport.label(), "/e");
        assert_eq!(ExportPolicy::Flexible.label(), "/a");
    }
}
