//! RFC 6298-style retransmission-timeout estimation on the virtual clock.
//!
//! Every Seq→Ack exchange of the reliability layer (`Request`→`Offers`,
//! `Accept`→`Established`, `Established`→`Ack`) is an RTT echo: the
//! sender knows when it posted the message and when the reply landed.
//! [`RtoEstimator`] folds those samples into the classic smoothed
//! estimate,
//!
//! ```text
//!   first sample R:   SRTT = R            RTTVAR = R / 2
//!   later samples:    RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
//!                     SRTT   = 7/8·SRTT   + 1/8·R
//!   RTO = clamp(SRTT + max(G, 4·RTTVAR), rto_min, rto_max)
//! ```
//!
//! with clock granularity `G = 1` tick. Karn's algorithm is the caller's
//! job: a reply to an exchange that was *retransmitted* is ambiguous (it
//! may answer any copy) and must never be fed to [`RtoEstimator::sample`].
//! Until the first sample arrives the estimator reports the configured
//! initial RTO, per RFC 6298 §2.1.

/// Per-peer SRTT/RTTVAR state and the clamped RTO derived from it.
#[derive(Clone, Copy, Debug)]
pub struct RtoEstimator {
    srtt: f64,
    rttvar: f64,
    samples: u64,
    rto: u64,
    /// Highest RTO ever reported, backoff excluded — the trajectory's peak.
    peak: u64,
    min: u64,
    max: u64,
}

impl RtoEstimator {
    /// An estimator with no samples yet: reports `initial` until the
    /// first RTT measurement, then clamps to `min..=max`.
    pub fn new(initial: u64, min: u64, max: u64) -> RtoEstimator {
        RtoEstimator {
            srtt: 0.0,
            rttvar: 0.0,
            samples: 0,
            rto: initial,
            peak: initial,
            min,
            max,
        }
    }

    /// Fold one RTT measurement (virtual ticks) into the estimate. The
    /// caller must enforce Karn's algorithm: never sample a retransmitted
    /// exchange.
    pub fn sample(&mut self, rtt: u64) {
        let r = rtt as f64;
        if self.samples == 0 {
            self.srtt = r;
            self.rttvar = r / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - r).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * r;
        }
        self.samples += 1;
        let raw = (self.srtt + (4.0 * self.rttvar).max(1.0)).ceil() as u64;
        self.rto = raw.clamp(self.min, self.max);
        self.peak = self.peak.max(self.rto);
    }

    /// The current retransmission timeout in ticks (pre-backoff).
    pub fn rto(&self) -> u64 {
        self.rto
    }

    /// Smoothed RTT; 0.0 before the first sample.
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// RTT samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Highest RTO this estimator ever reported.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_initial_until_first_sample() {
        let e = RtoEstimator::new(4, 2, 128);
        assert_eq!(e.rto(), 4);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    fn first_sample_follows_rfc_6298() {
        let mut e = RtoEstimator::new(4, 1, 128);
        e.sample(8);
        // SRTT = 8, RTTVAR = 4, RTO = 8 + 16 = 24.
        assert_eq!(e.srtt(), 8.0);
        assert_eq!(e.rto(), 24);
    }

    #[test]
    fn steady_rtt_converges_toward_min() {
        let mut e = RtoEstimator::new(4, 2, 128);
        for _ in 0..64 {
            e.sample(1);
        }
        // RTTVAR decays geometrically with constant RTT; the clamp floor
        // and the G=1 granularity term keep RTO at min.
        assert_eq!(e.rto(), 2, "constant 1-tick RTT pins RTO at rto_min");
        assert!((e.srtt() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn variance_widens_the_timer_and_peak_tracks_it() {
        let mut e = RtoEstimator::new(4, 2, 128);
        for r in [1u64, 9, 1, 9, 1, 9] {
            e.sample(r);
        }
        assert!(e.rto() > 8, "oscillating RTT inflates RTO: {}", e.rto());
        assert!(e.peak() >= e.rto());
    }

    #[test]
    fn rto_is_clamped_both_ways() {
        let mut e = RtoEstimator::new(4, 2, 16);
        e.sample(100);
        assert_eq!(e.rto(), 16, "upper clamp");
        let mut e = RtoEstimator::new(4, 3, 16);
        for _ in 0..32 {
            e.sample(0);
        }
        assert_eq!(e.rto(), 3, "lower clamp");
    }
}
