//! Typed validation errors for the control-plane knob structs.
//!
//! Both [`crate::chan::FaultConfig`] and
//! [`crate::reliable::ReliabilityConfig`] are plain-old-data bags of
//! public fields, so nothing stops a caller from building a config that
//! silently misbehaves (a keepalive timeout shorter than the interval
//! flaps every tunnel; `max_retries == 0` gives up before the first
//! retransmit). Construction-time validation turns those into typed,
//! testable errors instead.

use std::fmt;

/// Why a configuration was rejected at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A probability knob exceeds 1000‰.
    PermilleOutOfRange { knob: &'static str, value: u32 },
    /// `delay_min > delay_max`: the delay range is empty.
    DelayRange { min: u64, max: u64 },
    /// An outage window with `end <= start` spans nothing.
    EmptyOutage { start: u64, end: u64 },
    /// `keepalive_timeout <= keepalive_interval`: every tunnel would
    /// expire between its own heartbeats.
    KeepaliveTimeout { interval: u64, timeout: u64 },
    /// `max_retries == 0`: the handshake would give up before the first
    /// retransmission, defeating the reliability layer entirely.
    ZeroMaxRetries,
    /// `rto_initial == 0`: a zero timer retransmits every tick.
    ZeroInitialRto,
    /// `rto_min > rto_max`: the adaptive-RTO clamp range is empty.
    RtoRange { min: u64, max: u64 },
    /// `retry_base == 0` or `retry_base > retry_cap`: the decorrelated
    /// jitter schedule would be degenerate.
    RetryRange { base: u64, cap: u64 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::PermilleOutOfRange { knob, value } => {
                write!(f, "per-mille knob {knob} = {value} must be <= 1000")
            }
            ConfigError::DelayRange { min, max } => {
                write!(f, "delay_min {min} must be <= delay_max {max}")
            }
            ConfigError::EmptyOutage { start, end } => {
                write!(f, "outage window {start}..{end} is empty")
            }
            ConfigError::KeepaliveTimeout { interval, timeout } => write!(
                f,
                "keepalive_timeout {timeout} must exceed keepalive_interval {interval}"
            ),
            ConfigError::ZeroMaxRetries => write!(f, "max_retries must be at least 1"),
            ConfigError::ZeroInitialRto => write!(f, "rto_initial must be at least 1 tick"),
            ConfigError::RtoRange { min, max } => {
                write!(f, "rto_min {min} must be <= rto_max {max}")
            }
            ConfigError::RetryRange { base, cap } => {
                write!(f, "retry_base {base} must be in 1..=retry_cap {cap}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}
