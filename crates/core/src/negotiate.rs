//! The bilateral negotiation protocol (sections 3.3, 4.3, Figure 4.2).
//!
//! Wire sequence between a requesting AS and a responding AS:
//!
//! ```text
//!   requester                                responder
//!      | -- Request(dest, constraints) --------> |   (1)
//!      | <-- Offers([route+price, ...]) --------- |   (2) policy-filtered
//!      | -- Accept(chosen offer) ---------------> |   (3) handshake
//!      | <-- Established(tunnel id) ------------- |   (4) data plane ready
//! ```
//!
//! plus `Reject`, `Keepalive` (soft state, section 4.3) and `Teardown`.
//! The message types are plain data so the same definitions drive the
//! in-process harness in [`crate::node`], the tests, and the examples'
//! printed transcripts.

use crate::export::Offer;
use miro_topology::NodeId;

/// Identifier of one negotiation session, unique per requester.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NegotiationId(pub u64);

/// Requirements the requester attaches to a request (section 6.2.2: "the
/// requesting AS can explicitly request 'only give me paths without AS
/// 312'"). The responder applies them before answering, the requester
/// re-checks on receipt (it need not trust the responder).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Constraint {
    /// Offered paths must not traverse this AS.
    AvoidAs(NodeId),
    /// Offered paths must be at most this many AS hops (responder-side
    /// length; the requester adds its own distance to the responder).
    MaxLen(usize),
    /// Offered paths must cost at most this much.
    MaxPrice(u32),
}

impl Constraint {
    /// Does `offer` satisfy this constraint?
    pub fn admits(&self, offer: &Offer) -> bool {
        match *self {
            Constraint::AvoidAs(x) => !offer.route.traverses(x),
            Constraint::MaxLen(l) => offer.route.len() <= l,
            Constraint::MaxPrice(p) => offer.price <= p,
        }
    }
}

/// Filter `offers` by all `constraints`.
pub fn admissible(offers: &[Offer], constraints: &[Constraint]) -> Vec<Offer> {
    offers
        .iter()
        .filter(|o| constraints.iter().all(|c| c.admits(o)))
        .cloned()
        .collect()
}

/// Control-plane messages (Figure 4.2). `from`/`to` routing is carried by
/// the harness envelope in [`crate::node`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// (1) Ask for alternates toward `dest` satisfying `constraints`.
    Request {
        id: NegotiationId,
        dest: NodeId,
        constraints: Vec<Constraint>,
    },
    /// (2) The policy-filtered candidate set.
    Offers { id: NegotiationId, offers: Vec<Offer> },
    /// (3) The requester picks one offer (by index into the offers list).
    Accept { id: NegotiationId, choice: usize },
    /// (4) Tunnel is live; the id is scoped to the responder (section 3.5:
    /// "this identifier does not need to be globally unique").
    Established {
        id: NegotiationId,
        tunnel: crate::tunnel::TunnelId,
    },
    /// Negotiation refused or failed.
    Reject { id: NegotiationId, reason: RejectReason },
    /// Soft-state heartbeat for a live tunnel (section 4.3).
    Keepalive { tunnel: crate::tunnel::TunnelId },
    /// Active teardown (route change, policy change, or lost interest).
    Teardown { tunnel: crate::tunnel::TunnelId },
    /// Requester's acknowledgment of `Established`, closing the handshake
    /// on an unreliable channel (the responder retransmits `Established`
    /// until it sees this; see [`crate::reliable`]). On a perfect channel
    /// it is pure bookkeeping.
    Ack { id: NegotiationId },
}

/// Why a negotiation was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// Responder's tunnel budget is exhausted (section 6.2.1: "a limit for
    /// the total number of tunnels").
    TunnelLimit,
    /// Responder's admission policy refuses this requester.
    NotAllowed,
    /// No offer survived the constraints.
    NoCandidates,
    /// The `Accept` referenced an offer that was never made (stale or
    /// malformed choice).
    BadChoice,
}

/// Errors surfaced by the synchronous negotiation helpers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NegotiationError {
    /// The responder rejected, with its reason.
    Rejected(RejectReason),
    /// The requester found no acceptable offer (e.g. all too expensive).
    NoneAcceptable,
    /// Requester and responder are the same AS.
    SelfNegotiation,
}

impl std::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NegotiationError::Rejected(r) => write!(f, "responder rejected: {r:?}"),
            NegotiationError::NoneAcceptable => write!(f, "no acceptable offer"),
            NegotiationError::SelfNegotiation => write!(f, "cannot negotiate with self"),
        }
    }
}

impl std::error::Error for NegotiationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_bgp::route::CandidateRoute;
    use miro_topology::RouteClass;

    fn offer(path: Vec<NodeId>, price: u32) -> Offer {
        Offer {
            route: CandidateRoute { path, class: RouteClass::Customer },
            price,
        }
    }

    #[test]
    fn avoid_constraint_filters_paths() {
        let c = Constraint::AvoidAs(7);
        assert!(c.admits(&offer(vec![1, 2, 3], 0)));
        assert!(!c.admits(&offer(vec![1, 7, 3], 0)));
    }

    #[test]
    fn max_len_and_price_constraints() {
        assert!(Constraint::MaxLen(2).admits(&offer(vec![1, 2], 0)));
        assert!(!Constraint::MaxLen(2).admits(&offer(vec![1, 2, 3], 0)));
        assert!(Constraint::MaxPrice(100).admits(&offer(vec![1], 100)));
        assert!(!Constraint::MaxPrice(100).admits(&offer(vec![1], 101)));
    }

    #[test]
    fn admissible_applies_all_constraints() {
        let offers = vec![
            offer(vec![1, 2], 50),
            offer(vec![1, 7], 50),
            offer(vec![1, 2, 3], 50),
            offer(vec![1, 2], 500),
        ];
        let got = admissible(
            &offers,
            &[Constraint::AvoidAs(7), Constraint::MaxLen(2), Constraint::MaxPrice(100)],
        );
        assert_eq!(got, vec![offer(vec![1, 2], 50)]);
    }

    #[test]
    fn empty_constraints_admit_everything() {
        let offers = vec![offer(vec![9], 1)];
        assert_eq!(admissible(&offers, &[]), offers);
    }
}
