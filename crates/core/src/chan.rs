//! A deterministic unreliable message channel — the control-plane
//! generalization of the data plane's `FaultyLink`.
//!
//! MIRO's §4.3 soft-state machinery (retransmits, keepalives, idle-tunnel
//! expiry) only means something if the control channel can actually lose,
//! duplicate, reorder, and delay messages. [`FaultyChannel`] is that
//! channel: generic over the message type so the same fault model carries
//! typed Figure-4.2 negotiation messages here and raw `Bytes` packets in
//! `miro-dataplane` (which re-exports it from its `fault` module — the
//! dependency points dataplane → core, so the shared model lives here).
//!
//! Faults are rolled from seeded per-mille dice, and delivery runs on the
//! same virtual clock as the rest of the control plane, so every
//! experiment is exactly reproducible: same seed, same knobs, same
//! schedule of drops and duplicates. The dice are keyed per directed
//! (from, to) pair — "fault lanes" — so one flow's retransmission
//! behavior never perturbs another flow's loss pattern, and comparative
//! experiments over the same seed stay comparable.

use crate::config::ConfigError;
use miro_topology::NodeId;
use std::collections::BTreeMap;

/// Finalizer of the splitmix64 generator — one well-mixed word per input.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fault dice for one transmission: a short hash chain keyed purely by
/// (channel seed, from, to, nth send on that directed pair). Two runs
/// that send the same nth message on a pair get the same fate for it,
/// whatever any *other* pair did in between — fault lanes are isolated,
/// so comparative experiments (e.g. RTO policies) are not coupled
/// through a shared RNG stream.
struct Dice(u64);

impl Dice {
    fn new(seed: u64, from: NodeId, to: NodeId, nth: u64) -> Dice {
        let pair = (u64::from(from) << 32) | u64::from(to);
        Dice(mix(mix(seed ^ pair) ^ nth))
    }

    fn next(&mut self) -> u64 {
        self.0 = mix(self.0);
        self.0
    }

    fn roll(&mut self, permille: u32) -> bool {
        permille > 0 && self.next() % 1000 < u64::from(permille)
    }

    /// Uniform draw from `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Fault knobs, all probabilities in 1/1000 so configurations are exact
/// integers (the `FaultyLink` convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Probability a sent message is silently discarded.
    pub drop_permille: u32,
    /// Probability a surviving message is delivered twice (the copy gets
    /// an independently drawn delay, so duplicates typically arrive apart
    /// and often out of order).
    pub dup_permille: u32,
    /// Probability a surviving message is held back an extra 1–3 ticks on
    /// top of its base delay, landing after messages sent later.
    pub reorder_permille: u32,
    /// Base delivery delay, drawn uniformly from `delay_min..=delay_max`
    /// ticks per transmission.
    pub delay_min: u64,
    pub delay_max: u64,
}

impl FaultConfig {
    /// The perfect channel: instant, exactly-once, in-order delivery.
    /// A reliability layer running over this must behave exactly like the
    /// synchronous harness it replaces.
    pub const PERFECT: FaultConfig = FaultConfig {
        drop_permille: 0,
        dup_permille: 0,
        reorder_permille: 0,
        delay_min: 0,
        delay_max: 0,
    };

    /// A lossy channel with the given drop/duplicate/reorder rates and a
    /// small (0–2 tick) base delay jitter.
    pub fn lossy(drop_permille: u32, dup_permille: u32, reorder_permille: u32) -> FaultConfig {
        FaultConfig {
            drop_permille,
            dup_permille,
            reorder_permille,
            delay_min: 0,
            delay_max: 2,
        }
    }

    /// Construction-time validation: per-mille knobs must fit in 0..=1000
    /// and the delay range must be non-empty. Returns a typed error so
    /// callers can reject bad configs instead of silently misbehaving.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (knob, value) in [
            ("drop_permille", self.drop_permille),
            ("dup_permille", self.dup_permille),
            ("reorder_permille", self.reorder_permille),
        ] {
            if value > 1000 {
                return Err(ConfigError::PermilleOutOfRange { knob, value });
            }
        }
        if self.delay_min > self.delay_max {
            return Err(ConfigError::DelayRange { min: self.delay_min, max: self.delay_max });
        }
        Ok(())
    }
}

/// A message in flight or delivered: who sent it, to whom, and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<T> {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: T,
}

/// What the channel did with every transmission so far. The accounting
/// invariant is `sent + duplicated == delivered + dropped + in_flight`:
/// every enqueued copy (original or duplicate) is eventually either
/// delivered or was dropped at send time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages handed to [`FaultyChannel::send`].
    pub sent: usize,
    /// Envelopes returned by [`FaultyChannel::deliver_due`].
    pub delivered: usize,
    /// Messages discarded at send time.
    pub dropped: usize,
    /// Extra copies enqueued by the duplication fault.
    pub duplicated: usize,
    /// Messages that took the reorder (extra-delay) path.
    pub reordered: usize,
    /// Of the dropped messages, how many fell inside a scheduled outage
    /// window (counted in `dropped` too — the accounting invariant is
    /// unchanged).
    pub outage_dropped: usize,
}

struct InFlight<T> {
    deliver_at: u64,
    /// Enqueue order; tie-break so equal-tick deliveries are stable.
    order: u64,
    env: Envelope<T>,
}

/// The unreliable channel itself. All sends and deliveries run on a
/// caller-supplied virtual clock; the channel never blocks.
pub struct FaultyChannel<T> {
    seed: u64,
    /// Sends so far per directed pair — the per-lane dice index.
    lane_sent: BTreeMap<(NodeId, NodeId), u64>,
    cfg: FaultConfig,
    queue: Vec<InFlight<T>>,
    order: u64,
    /// Scheduled total-loss windows as half-open `start..end` tick ranges:
    /// every send whose `now` falls inside one is dropped, whatever the
    /// per-mille knobs say. Messages already in flight keep their
    /// delivery schedule (the outage models a severed link, not a purge
    /// of the speed-of-light pipe).
    outages: Vec<(u64, u64)>,
    pub stats: ChannelStats,
}

impl<T: Clone> FaultyChannel<T> {
    /// Like [`FaultyChannel::try_new`] but panics on an invalid config —
    /// the convenient constructor for tests and static configurations.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultyChannel<T> {
        Self::try_new(seed, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct with validation: an invalid [`FaultConfig`] is a typed
    /// error, never a silently misbehaving channel.
    pub fn try_new(seed: u64, cfg: FaultConfig) -> Result<FaultyChannel<T>, ConfigError> {
        cfg.validate()?;
        Ok(FaultyChannel {
            seed,
            lane_sent: BTreeMap::new(),
            cfg,
            queue: Vec::new(),
            order: 0,
            outages: Vec::new(),
            stats: ChannelStats::default(),
        })
    }

    /// Swap the fault configuration mid-run (e.g. to model an outage
    /// starting after tunnels are established). In-flight messages keep
    /// their already-drawn delivery times.
    pub fn set_fault(&mut self, cfg: FaultConfig) {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        self.cfg = cfg;
    }

    /// Schedule a total outage for the half-open tick range `start..end`:
    /// during it every send is dropped (100% loss), after it the
    /// configured fault knobs apply again automatically. Windows may
    /// overlap; each is validated to be non-empty.
    pub fn schedule_outage(&mut self, start: u64, end: u64) -> Result<(), ConfigError> {
        if end <= start {
            return Err(ConfigError::EmptyOutage { start, end });
        }
        self.outages.push((start, end));
        Ok(())
    }

    /// Is `now` inside a scheduled outage window?
    pub fn in_outage(&self, now: u64) -> bool {
        self.outages.iter().any(|&(s, e)| s <= now && now < e)
    }

    pub fn fault(&self) -> FaultConfig {
        self.cfg
    }

    fn enqueue(&mut self, deliver_at: u64, env: Envelope<T>) {
        let order = self.order;
        self.order += 1;
        self.queue.push(InFlight { deliver_at, order, env });
    }

    /// Transmit one message at virtual time `now`. The message is dropped,
    /// delayed, duplicated, and/or reordered per the configured knobs;
    /// surviving copies become visible to [`FaultyChannel::deliver_due`]
    /// once the clock reaches their delivery tick.
    pub fn send(&mut self, now: u64, from: NodeId, to: NodeId, msg: T) {
        self.stats.sent += 1;
        if self.in_outage(now) {
            self.stats.dropped += 1;
            self.stats.outage_dropped += 1;
            return;
        }
        let nth = self.lane_sent.entry((from, to)).or_insert(0);
        let mut dice = Dice::new(self.seed, from, to, *nth);
        *nth += 1;
        if dice.roll(self.cfg.drop_permille) {
            self.stats.dropped += 1;
            return;
        }
        let base = dice.range(self.cfg.delay_min, self.cfg.delay_max);
        let extra = if dice.roll(self.cfg.reorder_permille) {
            self.stats.reordered += 1;
            // At least one extra tick so the message genuinely lands after
            // traffic sent at the same instant, even with zero base delay.
            dice.range(1, 3)
        } else {
            0
        };
        let env = Envelope { from, to, msg };
        if dice.roll(self.cfg.dup_permille) {
            self.stats.duplicated += 1;
            let dup_delay = dice.range(self.cfg.delay_min, self.cfg.delay_max + 3);
            self.enqueue(now + dup_delay, env.clone());
        }
        self.enqueue(now + base + extra, env);
    }

    /// Drain every message whose delivery tick has arrived, ordered by
    /// (delivery tick, enqueue order). With [`FaultConfig::PERFECT`] this
    /// returns sends in exactly the order they were made.
    pub fn deliver_due(&mut self, now: u64) -> Vec<Envelope<T>> {
        let mut due: Vec<InFlight<T>> = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deliver_at <= now {
                due.push(self.queue.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|m| (m.deliver_at, m.order));
        self.stats.delivered += due.len();
        due.into_iter().map(|m| m.env).collect()
    }

    /// Copies enqueued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is waiting for delivery.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(ch: &mut FaultyChannel<u32>, until: u64) -> Vec<u32> {
        let mut got = Vec::new();
        for t in 0..=until {
            got.extend(ch.deliver_due(t).into_iter().map(|e| e.msg));
        }
        got
    }

    #[test]
    fn perfect_channel_is_instant_exactly_once_in_order() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(1, FaultConfig::PERFECT);
        for m in 0..50 {
            ch.send(0, 1, 2, m);
        }
        let got: Vec<u32> = ch.deliver_due(0).into_iter().map(|e| e.msg).collect();
        assert_eq!(got, (0..50).collect::<Vec<u32>>());
        assert!(ch.is_idle());
        assert_eq!(ch.stats.sent, 50);
        assert_eq!(ch.stats.delivered, 50);
        assert_eq!(ch.stats.dropped + ch.stats.duplicated + ch.stats.reordered, 0);
    }

    #[test]
    fn drop_rate_is_roughly_honored_and_accounted() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(2, FaultConfig::lossy(200, 0, 0));
        for m in 0..2000 {
            ch.send(0, 1, 2, m);
        }
        let rate = ch.stats.dropped as f64 / 2000.0;
        assert!((0.15..0.25).contains(&rate), "drop rate {rate}");
        let got = drain_all(&mut ch, 10);
        assert_eq!(got.len(), 2000 - ch.stats.dropped);
        assert_eq!(
            ch.stats.sent + ch.stats.duplicated,
            ch.stats.delivered + ch.stats.dropped
        );
    }

    #[test]
    fn duplicates_arrive_twice() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(3, FaultConfig {
            dup_permille: 1000,
            ..FaultConfig::PERFECT
        });
        ch.send(0, 1, 2, 7);
        let got = drain_all(&mut ch, 10);
        assert_eq!(got, vec![7, 7]);
        assert_eq!(ch.stats.duplicated, 1);
    }

    #[test]
    fn reordering_actually_reorders() {
        // Every message gets the extra-delay path with zero base delay: a
        // message sent at t and one sent at t+3 can swap.
        let cfg = FaultConfig {
            reorder_permille: 500,
            ..FaultConfig::PERFECT
        };
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(4, cfg);
        for m in 0..200u32 {
            ch.send(u64::from(m), 1, 2, m);
        }
        let got = drain_all(&mut ch, 300);
        assert_eq!(got.len(), 200, "nothing lost");
        assert!(got.windows(2).any(|w| w[0] > w[1]), "some inversion observed");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = FaultConfig::lossy(300, 200, 200);
        let mut a: FaultyChannel<u32> = FaultyChannel::new(9, cfg);
        let mut b: FaultyChannel<u32> = FaultyChannel::new(9, cfg);
        for m in 0..200 {
            a.send(u64::from(m % 17), 1, 2, m);
            b.send(u64::from(m % 17), 1, 2, m);
        }
        for t in 0..40 {
            assert_eq!(a.deliver_due(t), b.deliver_due(t));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn fault_lanes_are_isolated_per_pair() {
        // The fate of pair (1,2)'s messages must not depend on how much
        // traffic OTHER pairs pushed through the same channel.
        let cfg = FaultConfig::lossy(300, 200, 200);
        let mut quiet: FaultyChannel<u32> = FaultyChannel::new(11, cfg);
        let mut noisy: FaultyChannel<u32> = FaultyChannel::new(11, cfg);
        for m in 0..100 {
            for other in 3..8 {
                noisy.send(0, other, other + 1, 9000 + m); // interleaved bystander traffic
            }
            quiet.send(0, 1, 2, m);
            noisy.send(0, 1, 2, m);
        }
        let from_pair = |ch: &mut FaultyChannel<u32>| -> Vec<(u64, u32)> {
            let mut got = Vec::new();
            for t in 0..40 {
                got.extend(
                    ch.deliver_due(t)
                        .into_iter()
                        .filter(|e| e.from == 1)
                        .map(|e| (t, e.msg)),
                );
            }
            got
        };
        assert_eq!(from_pair(&mut quiet), from_pair(&mut noisy));
    }

    #[test]
    fn mid_run_fault_swap_applies_to_new_sends_only() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(5, FaultConfig {
            delay_min: 5,
            delay_max: 5,
            ..FaultConfig::PERFECT
        });
        ch.send(0, 1, 2, 1);
        ch.set_fault(FaultConfig { drop_permille: 1000, ..FaultConfig::PERFECT });
        ch.send(0, 1, 2, 2); // dropped under the new config
        let got = drain_all(&mut ch, 10);
        assert_eq!(got, vec![1], "in-flight message kept its schedule");
        assert_eq!(ch.stats.dropped, 1);
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn out_of_range_knobs_are_rejected() {
        let _: FaultyChannel<u32> =
            FaultyChannel::new(0, FaultConfig { drop_permille: 1001, ..FaultConfig::PERFECT });
    }

    #[test]
    fn validation_errors_are_typed() {
        use crate::config::ConfigError;
        let bad = FaultConfig { dup_permille: 1500, ..FaultConfig::PERFECT };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::PermilleOutOfRange { knob: "dup_permille", value: 1500 })
        );
        let bad = FaultConfig { delay_min: 5, delay_max: 2, ..FaultConfig::PERFECT };
        assert_eq!(bad.validate(), Err(ConfigError::DelayRange { min: 5, max: 2 }));
        assert!(FaultyChannel::<u32>::try_new(0, bad).is_err());
        assert!(FaultConfig::PERFECT.validate().is_ok());
    }

    #[test]
    fn outage_window_blacks_out_sends_then_heals() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(6, FaultConfig::PERFECT);
        ch.schedule_outage(10, 20).unwrap();
        ch.send(5, 1, 2, 1); // before the window: delivered
        ch.send(10, 1, 2, 2); // first tick of the window: dropped
        ch.send(19, 1, 2, 3); // last tick of the window: dropped
        ch.send(20, 1, 2, 4); // window over: delivered
        let got = drain_all(&mut ch, 30);
        assert_eq!(got, vec![1, 4]);
        assert_eq!(ch.stats.outage_dropped, 2);
        assert_eq!(ch.stats.dropped, 2);
        assert_eq!(
            ch.stats.sent + ch.stats.duplicated,
            ch.stats.delivered + ch.stats.dropped,
            "accounting invariant holds through outages"
        );
    }

    #[test]
    fn outage_spares_messages_already_in_flight() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(7, FaultConfig {
            delay_min: 5,
            delay_max: 5,
            ..FaultConfig::PERFECT
        });
        ch.send(0, 1, 2, 9); // delivery at t=5, inside the window below
        ch.schedule_outage(1, 10).unwrap();
        let got = drain_all(&mut ch, 10);
        assert_eq!(got, vec![9], "the severed link does not purge the pipe");
    }

    #[test]
    fn empty_outage_window_is_rejected() {
        let mut ch: FaultyChannel<u32> = FaultyChannel::new(8, FaultConfig::PERFECT);
        assert!(ch.schedule_outage(7, 7).is_err());
        assert!(ch.schedule_outage(9, 3).is_err());
    }
}
