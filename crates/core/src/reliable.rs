//! The Figure-4.2 negotiation made correct over an unreliable control
//! channel (the §4.3 soft-state design, finally exercised under failure).
//!
//! [`MiroNetwork`](crate::node::MiroNetwork) delivers every message
//! instantly and exactly once; this module reruns the same protocol over a
//! [`FaultyChannel`] that drops, duplicates, reorders, and delays. The
//! reliability layer on top is deliberately classical:
//!
//! * **sequence numbers** — every transmission carries a fresh sequence
//!   number; receivers suppress exact duplicates (the channel's
//!   duplication fault) while retransmissions get new numbers and are
//!   absorbed by idempotent handlers instead;
//! * **retransmit timers with exponential backoff** — the requester
//!   re-sends `Request`/`Accept`, the responder re-sends `Established`,
//!   each up to [`ReliabilityConfig::max_retries`] times with the interval
//!   doubling from [`ReliabilityConfig::retransmit_base`];
//! * **idempotent handlers** — a replayed `Accept` never allocates a
//!   second tunnel (the responder replays the recorded `Established`), a
//!   replayed `Established` is re-`Ack`ed, and a replayed `Teardown` is a
//!   no-op;
//! * **graceful fallback** — when retries are exhausted the requester
//!   surfaces a typed [`FailReason::RetriesExhausted`] outcome and
//!   *degrades to the BGP default path* (the paper's core guarantee: MIRO
//!   only ever adds to BGP, so losing a negotiation costs nothing but the
//!   alternate). Every fallback is recorded as a [`FallbackEvent`].
//!
//! Keepalives ride the same lossy bus: each side of a live tunnel
//! heartbeats the other every [`ReliabilityConfig::keepalive_interval`]
//! ticks and expires it after [`ReliabilityConfig::keepalive_timeout`]
//! ticks of silence — the timeout exceeds three intervals, so a tunnel
//! survives transient loss but dies cleanly under a sustained outage, on
//! both sides, with a best-effort `Teardown` to hurry the peer along.
//!
//! Orphan safety: if the responder establishes but the requester has
//! already fallen back (or its `Ack` never lands), the orphan tunnel is
//! reaped by soft-state expiry — exactly the "idle tunnels in the
//! downstream ASes" scenario §4.3 designed for.

use crate::chan::{Envelope, FaultConfig, FaultyChannel};
use crate::negotiate::{Constraint, Message, NegotiationError, NegotiationId, RejectReason};
use crate::node::{choose_offer, responder_offers, Lease, ResponderConfig};
use crate::tunnel::{Tunnel, TunnelId, TunnelManager};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};
use std::collections::{BTreeMap, HashSet};

/// Timer constants of the reliability layer, in virtual ticks.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityConfig {
    /// Ticks before the first retransmission; doubles on every retry.
    pub retransmit_base: u64,
    /// Retransmissions per handshake stage before giving up.
    pub max_retries: u32,
    /// Keepalive period per tunnel side.
    pub keepalive_interval: u64,
    /// Soft-state expiry after this much heartbeat silence. Must exceed
    /// `keepalive_interval` (it defaults to 3.5x) so a tunnel survives
    /// transient keepalive loss.
    pub keepalive_timeout: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            retransmit_base: 4,
            max_retries: 5,
            keepalive_interval: 10,
            keepalive_timeout: 35,
        }
    }
}

/// A control message as it travels the bus: payload plus a per-transmission
/// sequence number for duplicate suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqMessage {
    pub seq: u64,
    pub msg: Message,
}

/// Which handshake stage ran out of retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// No `Offers`/`Reject` ever arrived for our `Request`.
    Request,
    /// No `Established` ever arrived for our `Accept`.
    Accept,
}

/// Why a negotiation over the unreliable channel did not produce a tunnel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The responder said no (semantic failure, same as the synchronous
    /// harness).
    Rejected(RejectReason),
    /// Offers arrived but none fit the budget.
    NoneAcceptable,
    /// The channel ate our retries at the given stage.
    RetriesExhausted(Stage),
}

/// Terminal record of one negotiation attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegotiationOutcome {
    pub id: NegotiationId,
    pub requester: NodeId,
    pub responder: NodeId,
    pub dest: NodeId,
    pub result: Result<TunnelId, FailReason>,
    /// Virtual time the `Request` was first sent / the outcome settled.
    pub started_at: u64,
    pub finished_at: u64,
    /// Requester-side retransmissions spent on this negotiation.
    pub retransmits: u32,
}

impl NegotiationOutcome {
    /// Handshake latency in virtual ticks, retries included.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.started_at
    }
}

/// Observability record: a requester fell back to its BGP default path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FallbackEvent {
    pub id: NegotiationId,
    pub requester: NodeId,
    pub dest: NodeId,
    pub reason: FailReason,
    /// The default path the requester degrades to (empty when the
    /// destination is unreachable by BGP too — then there is no service,
    /// negotiated or not, and nothing MIRO can make worse).
    pub default_path: Vec<NodeId>,
    pub at: u64,
}

#[derive(Clone, Debug)]
enum ReqState {
    AwaitOffers,
    AwaitEstablished,
    Done(TunnelId),
    /// Terminal failure; the reason lives in the recorded
    /// [`NegotiationOutcome`].
    Failed,
}

struct ReqSession {
    id: NegotiationId,
    requester: NodeId,
    responder: NodeId,
    dest: NodeId,
    max_price: u32,
    state: ReqState,
    /// What to retransmit (the last handshake message we sent).
    last_msg: Message,
    last_send: u64,
    retries: u32,
    backoff: u64,
    retransmits_total: u32,
    started_at: u64,
}

#[derive(Clone, Debug)]
enum RespState {
    /// Replied with `Offers` (or a terminal `Reject`); waiting for
    /// `Accept` — the requester's retransmit timer drives this stage.
    Offered,
    /// Tunnel allocated; retransmitting `Established` until `Ack`.
    Established(TunnelId),
    /// `Ack` seen, or retries exhausted (soft state covers the rest).
    Closed,
}

struct RespSession {
    id: NegotiationId,
    requester: NodeId,
    responder: NodeId,
    state: RespState,
    /// Replayed verbatim when the session sees a duplicate of the message
    /// it already answered — the negotiation never moves backwards.
    last_reply: Message,
    last_send: u64,
    retries: u32,
    backoff: u64,
}

/// The whole-network harness over the unreliable bus. One instance drives
/// negotiations and tunnel soft state for the destination of the
/// [`RoutingState`] passed to [`ReliableNet::tick`].
pub struct ReliableNet<'t> {
    topo: &'t Topology,
    /// Virtual clock, advanced one tick per [`ReliableNet::tick`].
    pub clock: u64,
    bus: FaultyChannel<SeqMessage>,
    rel: ReliabilityConfig,
    configs: Vec<ResponderConfig>,
    managers: Vec<TunnelManager>,
    leases: Vec<Lease>,
    req_sessions: Vec<ReqSession>,
    resp_sessions: BTreeMap<NegotiationId, RespSession>,
    /// Every tunnel id ever allocated per negotiation — more than one
    /// entry for the same id would be a double-establish.
    session_tunnels: BTreeMap<NegotiationId, Vec<TunnelId>>,
    next_neg: u64,
    next_seq: u64,
    /// Per-receiver sets of sequence numbers already processed.
    seen: Vec<HashSet<u64>>,
    /// Channel-duplicated transmissions suppressed by sequence numbers.
    pub duplicates_suppressed: usize,
    outcomes: Vec<NegotiationOutcome>,
    fallbacks: Vec<FallbackEvent>,
    /// Transcript of every message handed to the bus (pre-fault).
    pub log: Vec<(NodeId, NodeId, Message)>,
}

impl<'t> ReliableNet<'t> {
    pub fn new(topo: &'t Topology, fault: FaultConfig, seed: u64) -> Self {
        Self::with_reliability(topo, fault, seed, ReliabilityConfig::default())
    }

    pub fn with_reliability(
        topo: &'t Topology,
        fault: FaultConfig,
        seed: u64,
        rel: ReliabilityConfig,
    ) -> Self {
        let n = topo.num_nodes();
        ReliableNet {
            topo,
            clock: 0,
            bus: FaultyChannel::new(seed, fault),
            rel,
            configs: vec![ResponderConfig::default(); n],
            managers: (0..n).map(|_| TunnelManager::new()).collect(),
            leases: Vec::new(),
            req_sessions: Vec::new(),
            resp_sessions: BTreeMap::new(),
            session_tunnels: BTreeMap::new(),
            next_neg: 0,
            next_seq: 0,
            seen: vec![HashSet::new(); n],
            duplicates_suppressed: 0,
            outcomes: Vec::new(),
            fallbacks: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Replace one AS's responder configuration.
    pub fn configure(&mut self, node: NodeId, config: ResponderConfig) {
        self.configs[node as usize] = config;
    }

    /// Change the channel fault model mid-run (e.g. start an outage after
    /// establishment).
    pub fn set_fault(&mut self, fault: FaultConfig) {
        self.bus.set_fault(fault);
    }

    /// Channel accounting (drops, duplicates, reorders, in-flight).
    pub fn channel_stats(&self) -> crate::chan::ChannelStats {
        self.bus.stats
    }

    /// The live leases ledger (establishment order).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// A node's tunnel table.
    pub fn tunnels(&self, node: NodeId) -> &TunnelManager {
        &self.managers[node as usize]
    }

    /// Terminal negotiation records, in settlement order.
    pub fn outcomes(&self) -> &[NegotiationOutcome] {
        &self.outcomes
    }

    /// Every recorded degrade-to-default event.
    pub fn fallbacks(&self) -> &[FallbackEvent] {
        &self.fallbacks
    }

    /// Number of negotiations that allocated more than one tunnel — the
    /// invariant the duplicate-safe handlers exist to keep at zero.
    pub fn double_establish_count(&self) -> usize {
        self.session_tunnels.values().filter(|v| v.len() > 1).count()
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: Message) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push((from, to, msg.clone()));
        self.bus.send(self.clock, from, to, SeqMessage { seq, msg });
    }

    /// Begin a negotiation (Figure 4.2 step 1) for `st.dest()`. The
    /// handshake then progresses inside [`ReliableNet::tick`]; watch
    /// [`ReliableNet::outcomes`] for the result.
    pub fn start(
        &mut self,
        st: &RoutingState<'_>,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
    ) -> Result<NegotiationId, NegotiationError> {
        if requester == responder {
            return Err(NegotiationError::SelfNegotiation);
        }
        let id = NegotiationId(self.next_neg);
        self.next_neg += 1;
        let msg = Message::Request { id, dest: st.dest(), constraints };
        self.post(requester, responder, msg.clone());
        self.req_sessions.push(ReqSession {
            id,
            requester,
            responder,
            dest: st.dest(),
            max_price,
            state: ReqState::AwaitOffers,
            last_msg: msg,
            last_send: self.clock,
            retries: 0,
            backoff: self.rel.retransmit_base,
            retransmits_total: 0,
            started_at: self.clock,
        });
        Ok(id)
    }

    /// All handshakes (both sides) have reached a terminal state. Tunnel
    /// soft state may still be live — keepalives keep flowing.
    pub fn handshakes_settled(&self) -> bool {
        self.req_sessions
            .iter()
            .all(|s| matches!(s.state, ReqState::Done(_) | ReqState::Failed))
            && self
                .resp_sessions
                .values()
                .all(|s| matches!(s.state, RespState::Offered | RespState::Closed))
            && self.bus.is_idle()
    }

    /// Tick until every handshake settles (or `max_ticks` elapse); returns
    /// the number of ticks consumed.
    pub fn run_until_settled(&mut self, st: &RoutingState<'_>, max_ticks: u64) -> u64 {
        let start = self.clock;
        while !self.handshakes_settled() && self.clock - start < max_ticks {
            self.tick(st);
        }
        self.clock - start
    }

    /// One tick of virtual time: deliver due messages (duplicate-
    /// suppressed), run retransmit timers, heartbeat live tunnels, expire
    /// stale soft state.
    pub fn tick(&mut self, st: &RoutingState<'_>) {
        self.clock += 1;
        let due = self.bus.deliver_due(self.clock);
        for Envelope { from, to, msg } in due {
            if !self.seen[to as usize].insert(msg.seq) {
                self.duplicates_suppressed += 1;
                continue;
            }
            self.handle(st, from, to, msg.msg);
        }
        self.requester_timers(st);
        self.responder_timers();
        self.heartbeat();
        self.expire_soft_state();
    }

    fn handle(&mut self, st: &RoutingState<'_>, from: NodeId, to: NodeId, msg: Message) {
        match msg {
            Message::Request { id, dest, constraints } => {
                self.on_request(st, from, to, id, dest, &constraints)
            }
            Message::Offers { id, offers } => self.on_offers(st, from, to, id, offers),
            Message::Reject { id, reason } => self.on_reject(st, to, id, reason),
            Message::Accept { id, choice } => self.on_accept(st, from, to, id, choice),
            Message::Established { id, tunnel } => self.on_established(st, from, to, id, tunnel),
            Message::Ack { id } => {
                if let Some(sess) = self.resp_sessions.get_mut(&id) {
                    if sess.responder == to {
                        sess.state = RespState::Closed;
                    }
                }
            }
            Message::Keepalive { tunnel } => {
                // Refresh on *receipt* only: a heartbeat that the channel
                // eats refreshes nobody, which is the whole point.
                self.managers[to as usize].keepalive(tunnel, self.clock);
            }
            Message::Teardown { tunnel } => {
                // Idempotent: unknown or replayed ids are a no-op.
                self.managers[to as usize].teardown(tunnel);
                self.leases.retain(|l| {
                    !(l.id == tunnel
                        && ((l.downstream == from && l.upstream == to)
                            || (l.downstream == to && l.upstream == from)))
                });
            }
        }
    }

    /// Responder, step 1 -> 2: answer a `Request` with `Offers` or
    /// `Reject`. A duplicate `Request` (channel dup of a retransmission)
    /// replays whatever this session already answered.
    fn on_request(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        dest: NodeId,
        constraints: &[Constraint],
    ) {
        debug_assert_eq!(dest, st.dest(), "one ReliableNet drives one destination");
        if let Some(sess) = self.resp_sessions.get(&id) {
            if sess.responder == to {
                let replay = sess.last_reply.clone();
                self.post(to, from, replay);
            }
            return;
        }
        let cfg = self.configs[to as usize].clone();
        let reply = match responder_offers(
            &cfg,
            self.managers[to as usize].len(),
            st,
            from,
            to,
            constraints,
            false,
        ) {
            Ok(offers) => Message::Offers { id, offers },
            Err(reason) => Message::Reject { id, reason },
        };
        self.resp_sessions.insert(id, RespSession {
            id,
            requester: from,
            responder: to,
            state: RespState::Offered,
            last_reply: reply.clone(),
            last_send: self.clock,
            retries: 0,
            backoff: self.rel.retransmit_base,
        });
        self.post(to, from, reply);
    }

    /// Requester, step 2 -> 3: pick an offer and `Accept` it.
    fn on_offers(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        offers: Vec<crate::export::Offer>,
    ) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        if !matches!(self.req_sessions[i].state, ReqState::AwaitOffers) {
            // Duplicate of an Offers we already answered: the Accept
            // retransmit timer (or the established tunnel) covers us.
            return;
        }
        let max_price = self.req_sessions[i].max_price;
        match choose_offer(&offers, max_price) {
            Some(choice) => {
                let msg = Message::Accept { id, choice };
                self.post(to, from, msg.clone());
                let s = &mut self.req_sessions[i];
                s.state = ReqState::AwaitEstablished;
                s.last_msg = msg;
                s.last_send = self.clock;
                s.retries = 0;
                s.backoff = self.rel.retransmit_base;
            }
            None => {
                // Semantic failure: budget too small. No retry can fix it.
                self.fail_requester(i, FailReason::NoneAcceptable, Some(st));
            }
        }
    }

    fn on_reject(&mut self, st: &RoutingState<'_>, to: NodeId, id: NegotiationId, reason: RejectReason) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        if matches!(self.req_sessions[i].state, ReqState::Done(_) | ReqState::Failed) {
            return;
        }
        self.fail_requester(i, FailReason::Rejected(reason), Some(st));
    }

    /// Responder, step 3 -> 4: allocate the tunnel exactly once and report
    /// `Established`. A replayed `Accept` for an established session
    /// replays the recorded `Established` — it never double-establishes.
    fn on_accept(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        choice: usize,
    ) {
        let Some(sess) = self.resp_sessions.get(&id) else { return };
        if sess.responder != to || sess.requester != from {
            return;
        }
        match sess.state {
            // Idempotent replay paths: the tunnel this session allocated
            // (if any) is reported again with the SAME id — never a new
            // allocation.
            RespState::Established(tid) => {
                self.post(to, from, Message::Established { id, tunnel: tid });
                return;
            }
            RespState::Closed => {
                if let Some(&tid) = self.session_tunnels.get(&id).and_then(|v| v.first()) {
                    self.post(to, from, Message::Established { id, tunnel: tid });
                }
                return;
            }
            RespState::Offered => {}
        }
        // State is Offered: the first Accept to arrive wins.
        let Message::Offers { offers, .. } = sess.last_reply.clone() else {
            // Session was rejected; a (stale) Accept replays the Reject.
            let replay = sess.last_reply.clone();
            self.post(to, from, replay);
            return;
        };
        let Some(offer) = offers.get(choice) else {
            let reply = Message::Reject { id, reason: RejectReason::BadChoice };
            let sess = self.resp_sessions.get_mut(&id).expect("session exists");
            sess.last_reply = reply.clone();
            self.post(to, from, reply);
            return;
        };
        let now = self.clock;
        let tid = self.managers[to as usize].establish(
            from,
            st.dest(),
            offer.route.path.clone(),
            offer.price,
            now,
        );
        self.session_tunnels.entry(id).or_default().push(tid);
        self.leases.push(Lease {
            id: tid,
            downstream: to,
            upstream: from,
            dest: st.dest(),
            path: offer.route.path.clone(),
            upstream_path: st.path(from).unwrap_or_default(),
            price: offer.price,
            budget: 0, // unknown to the responder; requester-side record
            constraints: Vec::new(),
        });
        let reply = Message::Established { id, tunnel: tid };
        let sess = self.resp_sessions.get_mut(&id).expect("session exists");
        sess.state = RespState::Established(tid);
        sess.last_reply = reply.clone();
        sess.last_send = now;
        sess.retries = 0;
        sess.backoff = self.rel.retransmit_base;
        self.post(to, from, reply);
    }

    /// Requester, step 4: adopt the tunnel (once) and `Ack`. Duplicates
    /// re-`Ack`; an `Established` arriving after we already fell back is
    /// declined with a `Teardown` so the responder's orphan dies fast.
    fn on_established(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        tunnel: TunnelId,
    ) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        match self.req_sessions[i].state {
            ReqState::AwaitEstablished => {}
            ReqState::Done(adopted) => {
                if adopted == tunnel {
                    self.post(to, from, Message::Ack { id });
                } else {
                    // A different id for the same session can only be a
                    // confused responder; decline the stray allocation.
                    self.post(to, from, Message::Teardown { tunnel });
                }
                return;
            }
            ReqState::Failed => {
                self.post(to, from, Message::Teardown { tunnel });
                return;
            }
            ReqState::AwaitOffers => return, // impossible per causality; ignore
        }
        // Find what was sold from the responder's lease record.
        let lease = self
            .leases
            .iter()
            .find(|l| l.id == tunnel && l.downstream == from && l.upstream == to)
            .cloned();
        let (path, price) = match lease {
            Some(l) => (l.path, l.price),
            None => (Vec::new(), 0), // responder restarted; adopt id only
        };
        if self.managers[to as usize].get(tunnel).is_none() {
            self.managers[to as usize].adopt(Tunnel {
                id: tunnel,
                peer: from,
                dest: st.dest(),
                path,
                price,
                last_heartbeat: self.clock,
            });
        }
        let s = &mut self.req_sessions[i];
        s.state = ReqState::Done(tunnel);
        let outcome = NegotiationOutcome {
            id,
            requester: s.requester,
            responder: s.responder,
            dest: s.dest,
            result: Ok(tunnel),
            started_at: s.started_at,
            finished_at: self.clock,
            retransmits: s.retransmits_total,
        };
        self.outcomes.push(outcome);
        self.post(to, from, Message::Ack { id });
    }

    /// Terminal failure on the requester side: record the outcome and the
    /// graceful degrade to the BGP default path.
    fn fail_requester(&mut self, i: usize, reason: FailReason, st: Option<&RoutingState<'_>>) {
        let s = &mut self.req_sessions[i];
        s.state = ReqState::Failed;
        let outcome = NegotiationOutcome {
            id: s.id,
            requester: s.requester,
            responder: s.responder,
            dest: s.dest,
            result: Err(reason),
            started_at: s.started_at,
            finished_at: self.clock,
            retransmits: s.retransmits_total,
        };
        let fallback = FallbackEvent {
            id: s.id,
            requester: s.requester,
            dest: s.dest,
            reason,
            default_path: st.and_then(|st| st.path(s.requester)).unwrap_or_default(),
            at: self.clock,
        };
        self.outcomes.push(outcome);
        self.fallbacks.push(fallback);
    }

    fn requester_timers(&mut self, st: &RoutingState<'_>) {
        let now = self.clock;
        let max_retries = self.rel.max_retries;
        let mut resend: Vec<(NodeId, NodeId, Message)> = Vec::new();
        let mut exhausted: Vec<usize> = Vec::new();
        for (i, s) in self.req_sessions.iter_mut().enumerate() {
            if !matches!(s.state, ReqState::AwaitOffers | ReqState::AwaitEstablished) {
                continue;
            }
            if now.saturating_sub(s.last_send) < s.backoff {
                continue;
            }
            if s.retries >= max_retries {
                exhausted.push(i);
                continue;
            }
            s.retries += 1;
            s.retransmits_total += 1;
            s.backoff *= 2;
            s.last_send = now;
            resend.push((s.requester, s.responder, s.last_msg.clone()));
        }
        for (from, to, msg) in resend {
            self.post(from, to, msg);
        }
        for i in exhausted {
            let stage = match self.req_sessions[i].state {
                ReqState::AwaitOffers => Stage::Request,
                _ => Stage::Accept,
            };
            self.fail_requester(i, FailReason::RetriesExhausted(stage), Some(st));
        }
    }

    fn responder_timers(&mut self) {
        let now = self.clock;
        let max_retries = self.rel.max_retries;
        let mut resend: Vec<(NodeId, NodeId, Message)> = Vec::new();
        for s in self.resp_sessions.values_mut() {
            let RespState::Established(tid) = s.state else { continue };
            if now.saturating_sub(s.last_send) < s.backoff {
                continue;
            }
            if s.retries >= max_retries {
                // Give up retransmitting; if the requester truly never
                // heard us, its missing keepalives expire the orphan.
                s.state = RespState::Closed;
                continue;
            }
            s.retries += 1;
            s.backoff *= 2;
            s.last_send = now;
            resend.push((s.responder, s.requester, Message::Established { id: s.id, tunnel: tid }));
        }
        for (from, to, msg) in resend {
            self.post(from, to, msg);
        }
    }

    /// Symmetric §4.3 heartbeats through the lossy bus: each side of every
    /// live tunnel pings the other; state refreshes only on receipt.
    fn heartbeat(&mut self) {
        if self.rel.keepalive_interval == 0 || !self.clock.is_multiple_of(self.rel.keepalive_interval)
        {
            return;
        }
        let pings: Vec<(NodeId, NodeId, TunnelId)> = self
            .leases
            .iter()
            .flat_map(|l| {
                [(l.upstream, l.downstream, l.id), (l.downstream, l.upstream, l.id)]
            })
            .collect();
        for (from, to, id) in pings {
            // Only ping for tunnels we still hold ourselves.
            if self.managers[from as usize].get(id).is_some() {
                self.post(from, to, Message::Keepalive { tunnel: id });
            }
        }
    }

    fn expire_soft_state(&mut self) {
        let now = self.clock;
        let timeout = self.rel.keepalive_timeout;
        let mut teardowns: Vec<(NodeId, NodeId, TunnelId)> = Vec::new();
        for n in 0..self.managers.len() {
            // Capture peers before expiry removes the records.
            let stale: Vec<(TunnelId, NodeId)> = self.managers[n]
                .iter()
                .filter(|t| now.saturating_sub(t.last_heartbeat) > timeout)
                .map(|t| (t.id, t.peer))
                .collect();
            if stale.is_empty() {
                continue;
            }
            self.managers[n].expire(now, timeout);
            for (id, peer) in stale {
                // Best-effort: hurry the peer along (may itself be lost;
                // the peer's own timer is the backstop).
                teardowns.push((n as NodeId, peer, id));
            }
        }
        for (from, to, id) in teardowns {
            self.post(from, to, Message::Teardown { tunnel: id });
            self.leases.retain(|l| {
                !(l.id == id
                    && ((l.downstream == from && l.upstream == to)
                        || (l.downstream == to && l.upstream == from)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::MiroNetwork;
    use miro_topology::gen::figure_1_1;

    fn setup() -> (Topology, [NodeId; 6]) {
        figure_1_1()
    }

    fn kinds(log: &[(NodeId, NodeId, Message)]) -> Vec<&'static str> {
        log.iter()
            .map(|(_, _, m)| match m {
                Message::Request { .. } => "request",
                Message::Offers { .. } => "offers",
                Message::Accept { .. } => "accept",
                Message::Established { .. } => "established",
                Message::Ack { .. } => "ack",
                Message::Reject { .. } => "reject",
                Message::Keepalive { .. } => "keepalive",
                Message::Teardown { .. } => "teardown",
            })
            .collect()
    }

    /// On a perfect channel the reliability layer is transparent: same
    /// tunnel, same path, same price as the synchronous harness, and the
    /// transcript is Figure 4.2 plus the closing Ack.
    #[test]
    fn perfect_channel_matches_synchronous_harness() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);

        let mut sync_net = MiroNetwork::new(&t);
        let sync_tid =
            sync_net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let sync_lease = sync_net.leases()[0].clone();

        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 1);
        let id = net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let ticks = net.run_until_settled(&st, 50);
        assert!(ticks <= 6, "perfect channel settles in a handful of ticks: {ticks}");

        assert_eq!(net.outcomes().len(), 1);
        let out = &net.outcomes()[0];
        assert_eq!(out.id, id);
        assert_eq!(out.result, Ok(sync_tid), "same downstream id allocation");
        assert_eq!(out.retransmits, 0, "no retransmissions on a perfect channel");
        let lease = &net.leases()[0];
        assert_eq!(lease.path, sync_lease.path);
        assert_eq!(lease.price, sync_lease.price);
        assert_eq!((lease.upstream, lease.downstream), (a, b));
        assert!(net.tunnels(a).get(sync_tid).is_some());
        assert!(net.tunnels(b).get(sync_tid).is_some());
        assert_eq!(
            kinds(&net.log)[..5],
            ["request", "offers", "accept", "established", "ack"]
        );
        assert!(net.fallbacks().is_empty());
        assert_eq!(net.double_establish_count(), 0);
    }

    /// Semantic rejections surface the same reasons as the synchronous
    /// harness, now as typed outcomes with a recorded fallback.
    #[test]
    fn rejections_record_fallback_to_default_path() {
        let (t, [a, b, _c, d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 2);
        net.configure(b, ResponderConfig {
            accept_any: false,
            allow: vec![d],
            ..Default::default()
        });
        let id = net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        assert_eq!(
            net.outcomes()[0].result,
            Err(FailReason::Rejected(RejectReason::NotAllowed))
        );
        let fb = &net.fallbacks()[0];
        assert_eq!(fb.id, id);
        assert_eq!(fb.requester, a);
        assert_eq!(
            fb.default_path,
            st.path(a).unwrap(),
            "the requester degrades to its BGP default path"
        );
        assert!(net.leases().is_empty());
    }

    /// A channel that eats everything: retries back off, then the
    /// requester gives up and falls back. Nothing is ever established.
    #[test]
    fn total_blackout_exhausts_retries_and_falls_back() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig {
            drop_permille: 1000,
            ..FaultConfig::PERFECT
        }, 3);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let ticks = net.run_until_settled(&st, 2_000);
        // 5 retries with doubling backoff from 4: 4+8+16+32+64+128 ticks.
        assert!(ticks < 300, "bounded retries actually bound time: {ticks}");
        assert_eq!(
            net.outcomes()[0].result,
            Err(FailReason::RetriesExhausted(Stage::Request))
        );
        assert_eq!(net.outcomes()[0].retransmits, 5);
        assert_eq!(net.fallbacks().len(), 1);
        assert!(net.leases().is_empty());
        assert!(net.tunnels(a).is_empty() && net.tunnels(b).is_empty());
    }

    /// Moderate loss: retransmits push the handshake through.
    #[test]
    fn lossy_channel_succeeds_via_retransmit() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut ok = 0;
        for seed in 0..50u64 {
            let mut net = ReliableNet::new(&t, FaultConfig::lossy(100, 50, 100), seed);
            net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
            net.run_until_settled(&st, 2_000);
            assert_eq!(net.double_establish_count(), 0, "seed {seed}");
            match net.outcomes()[0].result {
                Ok(tid) => {
                    ok += 1;
                    assert!(net.tunnels(a).get(tid).is_some(), "seed {seed}");
                    assert!(net.tunnels(b).get(tid).is_some(), "seed {seed}");
                }
                Err(_) => {
                    assert_eq!(net.fallbacks().len(), 1, "failure recorded: seed {seed}");
                }
            }
        }
        assert!(ok >= 48, "10% loss overwhelmingly succeeds via retransmit: {ok}/50");
    }

    /// Every message duplicated: exactly one tunnel, tables agree, and the
    /// sequence layer (not luck) absorbed the copies.
    #[test]
    fn full_duplication_never_double_establishes() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig {
            dup_permille: 1000,
            delay_min: 0,
            delay_max: 2,
            ..FaultConfig::PERFECT
        }, 7);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 500);
        assert!(net.outcomes()[0].result.is_ok());
        assert_eq!(net.leases().len(), 1);
        assert_eq!(net.double_establish_count(), 0);
        assert_eq!(net.tunnels(a).len(), 1);
        assert_eq!(net.tunnels(b).len(), 1);
        assert!(net.duplicates_suppressed > 0, "the sequence layer did real work");
    }

    /// §4.3 under real loss: a tunnel survives transient keepalive loss
    /// (timeout > interval), and expires cleanly on both sides — ledger
    /// included — under a sustained outage.
    #[test]
    fn keepalive_soft_state_survives_transient_loss_and_expires_under_outage() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::lossy(100, 0, 100), 11);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 2_000);
        let tid = net.outcomes()[0].result.expect("established");
        // 10% keepalive loss for 200 ticks: with timeout 35 and interval
        // 10, expiry needs ~3 consecutive losses on a side — survives.
        for _ in 0..200 {
            net.tick(&st);
        }
        assert_eq!(net.leases().len(), 1, "tunnel survives transient loss");
        assert!(net.tunnels(a).get(tid).is_some());
        assert!(net.tunnels(b).get(tid).is_some());
        // Total outage: both sides expire their soft state.
        net.set_fault(FaultConfig { drop_permille: 1000, ..FaultConfig::PERFECT });
        for _ in 0..100 {
            net.tick(&st);
        }
        assert!(net.leases().is_empty(), "ledger reaped");
        assert!(net.tunnels(a).get(tid).is_none(), "upstream expired");
        assert!(net.tunnels(b).get(tid).is_none(), "downstream expired");
    }

    /// A late `Established` after the requester already fell back is
    /// declined with a `Teardown`: no half-open tunnel survives.
    #[test]
    fn late_established_after_fallback_is_torn_down() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        // Fast-exhausting requester so the race is easy to hit: one retry,
        // 1-tick base.
        let rel = ReliabilityConfig {
            retransmit_base: 1,
            max_retries: 1,
            ..Default::default()
        };
        let mut hit = false;
        for seed in 0..200u64 {
            let mut net = ReliableNet::with_reliability(
                &t,
                FaultConfig { drop_permille: 450, delay_min: 0, delay_max: 4, dup_permille: 0, reorder_permille: 0 },
                seed,
                rel,
            );
            net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
            net.run_until_settled(&st, 400);
            let failed = net.outcomes()[0].result.is_err();
            let responder_established = !net.tunnels(b).is_empty() || !net
                .tunnels(b)
                .torn_down
                .is_empty();
            if failed && responder_established {
                hit = true;
                // Let teardown / soft-state expiry finish the cleanup.
                for _ in 0..80 {
                    net.tick(&st);
                }
                assert!(net.tunnels(a).is_empty(), "seed {seed}: requester clean");
                assert!(net.tunnels(b).is_empty(), "seed {seed}: orphan reaped");
                assert!(net.leases().is_empty(), "seed {seed}: ledger clean");
            }
        }
        assert!(hit, "the fallback-vs-established race was actually exercised");
    }

    /// Self-negotiation is refused exactly like the synchronous harness.
    #[test]
    fn self_negotiation_refused() {
        let (t, [a, ..]) = setup();
        let st = RoutingState::solve(&t, a);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 0);
        assert_eq!(
            net.start(&st, a, a, vec![], 100),
            Err(NegotiationError::SelfNegotiation)
        );
    }
}
