//! The Figure-4.2 negotiation made correct over an unreliable control
//! channel (the §4.3 soft-state design, finally exercised under failure).
//!
//! [`MiroNetwork`](crate::node::MiroNetwork) delivers every message
//! instantly and exactly once; this module reruns the same protocol over a
//! [`FaultyChannel`] that drops, duplicates, reorders, delays — and, since
//! the lifecycle-resilience work, blacks out entire windows and survives a
//! responder crash-restart. The reliability layer on top is classical:
//!
//! * **sequence numbers** — every transmission carries a fresh sequence
//!   number; receivers suppress exact duplicates (the channel's
//!   duplication fault) while retransmissions get new numbers and are
//!   absorbed by idempotent handlers instead;
//! * **adaptive retransmission timers** — each Seq→Ack exchange of the
//!   handshake (`Request`→`Offers`, `Accept`→`Established`,
//!   `Established`→`Ack`) is an RTT echo on the virtual clock. Per-peer
//!   [`RtoEstimator`]s fold the unambiguous echoes (Karn's algorithm:
//!   retransmitted exchanges never feed the estimator) into RFC 6298
//!   SRTT/RTTVAR, and fresh sends start their backoff from the learned
//!   RTO instead of a static base. Retries still double the timer, now
//!   clamped to [`ReliabilityConfig::rto_max`];
//!   [`RtoMode::StaticLadder`] recovers the old fixed ladder for A/B runs;
//! * **idempotent handlers** — a replayed `Accept` never allocates a
//!   second tunnel (the responder replays the recorded `Established`), a
//!   replayed `Established` is re-`Ack`ed, and a replayed `Teardown` is a
//!   no-op;
//! * **graceful fallback with paced re-negotiation** — when retries are
//!   exhausted, or an established tunnel's session later dies, the
//!   requester degrades to the BGP default path (the paper's core
//!   guarantee: MIRO only ever adds to BGP) and records a
//!   [`FallbackEvent`]. Channel-caused fallbacks are then *retried* on a
//!   decorrelated-jitter schedule — sleep `min(cap, rand(base, 3·prev))`
//!   — up to [`ReliabilityConfig::retry_budget`] attempts, so a transient
//!   outage is healed without a thundering herd. Recovery is written back
//!   onto the original event (`recovered_at`); semantic failures
//!   (`Rejected`, `NoneAcceptable`) are never retried — no schedule can
//!   change a policy answer.
//!
//! Keepalives ride the same lossy bus: each side of a live tunnel
//! heartbeats the other every [`ReliabilityConfig::keepalive_interval`]
//! ticks and expires it after [`ReliabilityConfig::keepalive_timeout`]
//! ticks of silence. A keepalive for a tunnel the receiver does not hold —
//! the receiver crashed, or already expired it — is answered with a
//! `Teardown`, so a restarted responder kills its peers' stale tunnels
//! within one heartbeat round instead of a full soft-state timeout
//! ([`ReliableNet::crash_restart`] models the crash itself: the whole
//! session table and tunnel table vanish, the id allocator survives as a
//! boot-epoch-prefixed id space).
//!
//! Orphan safety: if the responder establishes but the requester has
//! already fallen back (or its `Ack` never lands), the orphan tunnel is
//! reaped by soft-state expiry — exactly the "idle tunnels in the
//! downstream ASes" scenario §4.3 designed for. [`ReliableNet::orphan_count`]
//! measures the invariant directly.

use crate::chan::{Envelope, FaultConfig, FaultyChannel};
use crate::config::ConfigError;
use crate::negotiate::{Constraint, Message, NegotiationError, NegotiationId, RejectReason};
use crate::node::{choose_offer, responder_offers, Lease, ResponderConfig};
use crate::rto::RtoEstimator;
use crate::tunnel::{Tunnel, TunnelId, TunnelManager};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};
use std::collections::{BTreeMap, HashSet};

/// Finalizer of the splitmix64 generator — one well-mixed word per input,
/// used to derive retry-schedule jitter as a pure function of
/// (seed, episode, attempt).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How retransmission timeouts are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtoMode {
    /// Per-peer RFC 6298 SRTT/RTTVAR estimation seeded from handshake
    /// echoes; fresh sends start at the learned RTO.
    Adaptive,
    /// The legacy fixed ladder: every fresh send starts at
    /// [`ReliabilityConfig::rto_initial`] and doubles. Kept for A/B
    /// comparison runs.
    StaticLadder,
}

/// Timer constants of the reliability layer, in virtual ticks.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityConfig {
    /// RTO before any RTT sample exists (and always, under
    /// [`RtoMode::StaticLadder`]); doubles on every retry.
    pub rto_initial: u64,
    /// Lower clamp of the adaptive RTO.
    pub rto_min: u64,
    /// Upper clamp of the adaptive RTO *and* of the doubling backoff.
    pub rto_max: u64,
    /// Adaptive estimation or the legacy static ladder.
    pub rto_mode: RtoMode,
    /// Retransmissions per handshake stage before giving up.
    pub max_retries: u32,
    /// Keepalive period per tunnel side.
    pub keepalive_interval: u64,
    /// Soft-state expiry after this much heartbeat silence. Must exceed
    /// `keepalive_interval` (it defaults to 3.5x) so a tunnel survives
    /// transient keepalive loss.
    pub keepalive_timeout: u64,
    /// Floor of the decorrelated-jitter re-negotiation sleep.
    pub retry_base: u64,
    /// Ceiling of the decorrelated-jitter re-negotiation sleep.
    pub retry_cap: u64,
    /// Re-negotiation attempts per fallback episode before giving up for
    /// good. `0` disables paced re-negotiation entirely.
    pub retry_budget: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            rto_initial: 4,
            rto_min: 2,
            rto_max: 128,
            rto_mode: RtoMode::Adaptive,
            max_retries: 5,
            keepalive_interval: 10,
            keepalive_timeout: 35,
            retry_base: 16,
            retry_cap: 256,
            retry_budget: 6,
        }
    }
}

impl ReliabilityConfig {
    /// Reject configurations that would silently misbehave.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rto_initial == 0 {
            return Err(ConfigError::ZeroInitialRto);
        }
        if self.rto_min > self.rto_max {
            return Err(ConfigError::RtoRange { min: self.rto_min, max: self.rto_max });
        }
        if self.max_retries == 0 {
            return Err(ConfigError::ZeroMaxRetries);
        }
        if self.keepalive_interval > 0 && self.keepalive_timeout <= self.keepalive_interval {
            return Err(ConfigError::KeepaliveTimeout {
                interval: self.keepalive_interval,
                timeout: self.keepalive_timeout,
            });
        }
        if self.retry_base == 0 || self.retry_base > self.retry_cap {
            return Err(ConfigError::RetryRange { base: self.retry_base, cap: self.retry_cap });
        }
        Ok(())
    }
}

/// A control message as it travels the bus: payload plus a per-transmission
/// sequence number for duplicate suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqMessage {
    pub seq: u64,
    pub msg: Message,
}

/// Which handshake stage ran out of retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// No `Offers`/`Reject` ever arrived for our `Request`.
    Request,
    /// No `Established` ever arrived for our `Accept`.
    Accept,
}

/// Why a negotiation over the unreliable channel did not produce a tunnel
/// (or stopped providing one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The responder said no (semantic failure, same as the synchronous
    /// harness). Never retried.
    Rejected(RejectReason),
    /// Offers arrived but none fit the budget. Never retried.
    NoneAcceptable,
    /// The channel ate our retries at the given stage. Retried on the
    /// jitter schedule.
    RetriesExhausted(Stage),
    /// An *established* tunnel's session died after the fact — soft-state
    /// expiry or a peer `Teardown` (e.g. the responder crash-restarted).
    /// Retried on the jitter schedule.
    SessionDied,
}

impl FailReason {
    /// Whether paced re-negotiation can plausibly help: channel failures
    /// yes, policy answers no.
    pub fn is_retryable(&self) -> bool {
        matches!(self, FailReason::RetriesExhausted(_) | FailReason::SessionDied)
    }
}

/// Terminal record of one negotiation attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegotiationOutcome {
    pub id: NegotiationId,
    pub requester: NodeId,
    pub responder: NodeId,
    pub dest: NodeId,
    pub result: Result<TunnelId, FailReason>,
    /// Virtual time the `Request` was first sent / the outcome settled.
    pub started_at: u64,
    pub finished_at: u64,
    /// Requester-side retransmissions spent on this negotiation.
    pub retransmits: u32,
}

impl NegotiationOutcome {
    /// Handshake latency in virtual ticks, retries included.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.started_at
    }
}

/// Observability record: a requester fell back to its BGP default path.
///
/// Retryable episodes are updated in place as the pacing machinery works:
/// `retry_attempts` counts launched re-negotiations, `recovered_at` is set
/// when one of them lands a tunnel again. An event with
/// `retry_of == Some(origin)` is a *chained* record — one failed attempt
/// within the origin episode — and should be excluded when counting
/// distinct outage episodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FallbackEvent {
    pub id: NegotiationId,
    pub requester: NodeId,
    pub dest: NodeId,
    pub reason: FailReason,
    /// The default path the requester degrades to (empty when the
    /// destination is unreachable by BGP too — then there is no service,
    /// negotiated or not, and nothing MIRO can make worse).
    pub default_path: Vec<NodeId>,
    pub at: u64,
    /// When a paced re-negotiation restored a tunnel for this episode.
    pub recovered_at: Option<u64>,
    /// Re-negotiation attempts launched for this episode so far.
    pub retry_attempts: u32,
    /// `Some(origin)` when this event records a failed retry attempt of an
    /// earlier episode rather than a fresh episode.
    pub retry_of: Option<NegotiationId>,
}

impl FallbackEvent {
    /// Ticks from fallback to recovery, when recovery happened.
    pub fn recovery_ticks(&self) -> Option<u64> {
        self.recovered_at.map(|r| r - self.at)
    }
}

/// Pacing state threaded through the retry attempts of one episode.
#[derive(Clone, Copy, Debug)]
struct RetryCtx {
    /// Index of the origin [`FallbackEvent`] in the fallbacks log.
    fallback: usize,
    /// Previous sleep, for the decorrelated-jitter recurrence (0 = none
    /// yet).
    prev_sleep: u64,
    /// Attempts launched so far for this episode.
    attempts: u32,
    /// Negotiation id of the origin episode.
    origin: NegotiationId,
}

/// A re-negotiation waiting for its jittered launch time.
#[derive(Clone, Debug)]
struct PendingRetry {
    ctx: RetryCtx,
    requester: NodeId,
    responder: NodeId,
    dest: NodeId,
    constraints: Vec<Constraint>,
    max_price: u32,
    next_at: u64,
}

#[derive(Clone, Debug)]
enum ReqState {
    AwaitOffers,
    AwaitEstablished,
    Done(TunnelId),
    /// Terminal failure; the reason lives in the recorded
    /// [`NegotiationOutcome`].
    Failed,
    /// Was `Done`, but the tunnel's session later died (expiry or peer
    /// teardown). Terminal for this session; recovery happens in a *new*
    /// session launched by the pacing machinery.
    Lost,
}

struct ReqSession {
    id: NegotiationId,
    requester: NodeId,
    responder: NodeId,
    dest: NodeId,
    constraints: Vec<Constraint>,
    max_price: u32,
    state: ReqState,
    /// What to retransmit (the last handshake message we sent).
    last_msg: Message,
    last_send: u64,
    retries: u32,
    backoff: u64,
    retransmits_total: u32,
    started_at: u64,
    /// `Some` when this session *is* a paced retry of an earlier episode.
    retry: Option<RetryCtx>,
}

#[derive(Clone, Debug)]
enum RespState {
    /// Replied with `Offers` (or a terminal `Reject`); waiting for
    /// `Accept` — the requester's retransmit timer drives this stage.
    Offered,
    /// Tunnel allocated; retransmitting `Established` until `Ack`.
    Established(TunnelId),
    /// `Ack` seen, or retries exhausted (soft state covers the rest).
    Closed,
}

struct RespSession {
    id: NegotiationId,
    requester: NodeId,
    responder: NodeId,
    state: RespState,
    /// Replayed verbatim when the session sees a duplicate of the message
    /// it already answered — the negotiation never moves backwards.
    last_reply: Message,
    last_send: u64,
    retries: u32,
    backoff: u64,
    /// Times `last_reply` was replayed — a replayed exchange is ambiguous
    /// as an RTT echo (Karn), so `replays > 0` disables sampling on it.
    replays: u32,
}

/// Aggregate view of the per-peer RTO estimators, for metrics exports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RtoSnapshot {
    /// Directed peer pairs with at least one RTT sample.
    pub peers: usize,
    /// Total RTT samples folded in across all pairs.
    pub samples: u64,
    /// Mean smoothed RTT across sampled pairs (0.0 when none).
    pub srtt_mean: f64,
    /// Mean current RTO across sampled pairs (0.0 when none).
    pub rto_mean: f64,
    /// Highest RTO any estimator ever reported (0 when none sampled).
    pub rto_peak: u64,
}

/// The whole-network harness over the unreliable bus. One instance drives
/// negotiations and tunnel soft state for the destination of the
/// [`RoutingState`] passed to [`ReliableNet::tick`].
pub struct ReliableNet<'t> {
    topo: &'t Topology,
    /// Virtual clock, advanced one tick per [`ReliableNet::tick`].
    pub clock: u64,
    bus: FaultyChannel<SeqMessage>,
    rel: ReliabilityConfig,
    configs: Vec<ResponderConfig>,
    managers: Vec<TunnelManager>,
    leases: Vec<Lease>,
    req_sessions: Vec<ReqSession>,
    resp_sessions: BTreeMap<NegotiationId, RespSession>,
    /// Every tunnel id ever allocated per negotiation — more than one
    /// entry for the same id would be a double-establish.
    session_tunnels: BTreeMap<NegotiationId, Vec<TunnelId>>,
    next_neg: u64,
    next_seq: u64,
    /// Per-receiver sets of sequence numbers already processed.
    seen: Vec<HashSet<u64>>,
    /// Channel-duplicated transmissions suppressed by sequence numbers.
    pub duplicates_suppressed: usize,
    /// Per-directed-pair RTT estimators, keyed (local, peer).
    rtt: BTreeMap<(NodeId, NodeId), RtoEstimator>,
    /// Seed for the retry-schedule jitter. Sleeps are a pure hash of
    /// (seed, episode origin, attempt) — independent of the channel's
    /// fault dice so pacing does not perturb the loss pattern, and
    /// identical across [`RtoMode`]s so recovery-time comparisons isolate
    /// the timer policy.
    jitter_seed: u64,
    pending_retries: Vec<PendingRetry>,
    outcomes: Vec<NegotiationOutcome>,
    fallbacks: Vec<FallbackEvent>,
    /// Transcript of every message handed to the bus (pre-fault).
    pub log: Vec<(NodeId, NodeId, Message)>,
}

impl<'t> ReliableNet<'t> {
    pub fn new(topo: &'t Topology, fault: FaultConfig, seed: u64) -> Self {
        Self::with_reliability(topo, fault, seed, ReliabilityConfig::default())
    }

    /// Panicking constructor; see [`ReliableNet::try_with_reliability`]
    /// for the fallible form.
    pub fn with_reliability(
        topo: &'t Topology,
        fault: FaultConfig,
        seed: u64,
        rel: ReliabilityConfig,
    ) -> Self {
        Self::try_with_reliability(topo, fault, seed, rel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a network, rejecting invalid fault or reliability knobs with
    /// a typed error instead of latent misbehaviour.
    pub fn try_with_reliability(
        topo: &'t Topology,
        fault: FaultConfig,
        seed: u64,
        rel: ReliabilityConfig,
    ) -> Result<Self, ConfigError> {
        rel.validate()?;
        let bus = FaultyChannel::try_new(seed, fault)?;
        let n = topo.num_nodes();
        Ok(ReliableNet {
            topo,
            clock: 0,
            bus,
            rel,
            configs: vec![ResponderConfig::default(); n],
            managers: (0..n).map(|_| TunnelManager::new()).collect(),
            leases: Vec::new(),
            req_sessions: Vec::new(),
            resp_sessions: BTreeMap::new(),
            session_tunnels: BTreeMap::new(),
            next_neg: 0,
            next_seq: 0,
            seen: vec![HashSet::new(); n],
            duplicates_suppressed: 0,
            rtt: BTreeMap::new(),
            jitter_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
            pending_retries: Vec::new(),
            outcomes: Vec::new(),
            fallbacks: Vec::new(),
            log: Vec::new(),
        })
    }

    /// Replace one AS's responder configuration.
    pub fn configure(&mut self, node: NodeId, config: ResponderConfig) {
        self.configs[node as usize] = config;
    }

    /// Change the channel fault model mid-run (e.g. start an outage after
    /// establishment).
    pub fn set_fault(&mut self, fault: FaultConfig) {
        self.bus.set_fault(fault);
    }

    /// Black out the channel completely for `start..end` (virtual ticks):
    /// every send inside the window is dropped, on top of whatever the
    /// steady-state fault model does outside it.
    pub fn schedule_outage(&mut self, start: u64, end: u64) -> Result<(), ConfigError> {
        self.bus.schedule_outage(start, end)
    }

    /// Channel accounting (drops, duplicates, reorders, in-flight).
    pub fn channel_stats(&self) -> crate::chan::ChannelStats {
        self.bus.stats
    }

    /// The live leases ledger (establishment order).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// A node's tunnel table.
    pub fn tunnels(&self, node: NodeId) -> &TunnelManager {
        &self.managers[node as usize]
    }

    /// Terminal negotiation records, in settlement order.
    pub fn outcomes(&self) -> &[NegotiationOutcome] {
        &self.outcomes
    }

    /// Every recorded degrade-to-default event (origin episodes and
    /// chained retry failures; filter on `retry_of` to tell them apart).
    pub fn fallbacks(&self) -> &[FallbackEvent] {
        &self.fallbacks
    }

    /// Re-negotiations currently waiting for their jittered launch tick.
    pub fn pending_retry_count(&self) -> usize {
        self.pending_retries.len()
    }

    /// Number of negotiations that allocated more than one tunnel — the
    /// invariant the duplicate-safe handlers exist to keep at zero.
    pub fn double_establish_count(&self) -> usize {
        self.session_tunnels.values().filter(|v| v.len() > 1).count()
    }

    /// Live tunnels whose peer does not hold the matching record — the
    /// quantity crash-restart teardown exists to drive to zero. Only
    /// meaningful at quiescence over a healed channel: mid-outage, a
    /// half-expired tunnel is legitimately one-sided for a few ticks.
    pub fn orphan_count(&self) -> usize {
        let mut orphans = 0;
        for n in 0..self.managers.len() {
            for t in self.managers[n].iter() {
                match self.managers[t.peer as usize].get(t.id) {
                    Some(peer_side) if peer_side.peer == n as NodeId => {}
                    _ => orphans += 1,
                }
            }
        }
        orphans
    }

    /// Aggregate view of every per-peer RTO estimator.
    pub fn rto_snapshot(&self) -> RtoSnapshot {
        let sampled: Vec<&RtoEstimator> =
            self.rtt.values().filter(|e| e.samples() > 0).collect();
        if sampled.is_empty() {
            return RtoSnapshot { peers: 0, samples: 0, srtt_mean: 0.0, rto_mean: 0.0, rto_peak: 0 };
        }
        let n = sampled.len() as f64;
        RtoSnapshot {
            peers: sampled.len(),
            samples: sampled.iter().map(|e| e.samples()).sum(),
            srtt_mean: sampled.iter().map(|e| e.srtt()).sum::<f64>() / n,
            rto_mean: sampled.iter().map(|e| e.rto() as f64).sum::<f64>() / n,
            rto_peak: sampled.iter().map(|e| e.peak()).max().unwrap_or(0),
        }
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The node's process restarts: tunnel table, teardown history,
    /// responder sessions, and the duplicate-suppression window all
    /// vanish (soft state is exactly the state you may lose). In-flight
    /// *requester* sessions of the node die silently — the process that
    /// cared about them is gone, so no outcome is recorded. The tunnel id
    /// allocator survives (boot-epoch-prefixed id space), so post-restart
    /// establishments never collide with ids peers still hold. Returns
    /// the tunnel ids that were live here. Peers discover the crash via
    /// keepalives: the restarted node answers heartbeats for unknown
    /// tunnels with `Teardown`, which marks the peer's session dead and
    /// feeds the paced re-negotiation machinery.
    pub fn crash_restart(&mut self, node: NodeId) -> Vec<TunnelId> {
        let lost = self.managers[node as usize].crash();
        self.seen[node as usize].clear();
        self.resp_sessions.retain(|_, s| s.responder != node);
        for s in self.req_sessions.iter_mut().filter(|s| s.requester == node) {
            if matches!(s.state, ReqState::AwaitOffers | ReqState::AwaitEstablished) {
                s.state = ReqState::Failed;
            }
        }
        self.pending_retries.retain(|p| p.requester != node);
        self.rtt.retain(|(local, _), _| *local != node);
        lost
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: Message) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push((from, to, msg.clone()));
        self.bus.send(self.clock, from, to, SeqMessage { seq, msg });
    }

    /// The RTO a fresh exchange from `local` to `peer` should start at.
    fn rto_for(&self, local: NodeId, peer: NodeId) -> u64 {
        match self.rel.rto_mode {
            RtoMode::StaticLadder => self.rel.rto_initial,
            RtoMode::Adaptive => self
                .rtt
                .get(&(local, peer))
                .map(|e| e.rto())
                .unwrap_or(self.rel.rto_initial),
        }
    }

    /// Fold one unambiguous RTT echo into the (local, peer) estimator.
    /// Callers enforce Karn's algorithm: only exchanges that were never
    /// retransmitted/replayed reach this.
    fn sample_rtt(&mut self, local: NodeId, peer: NodeId, rtt: u64) {
        if self.rel.rto_mode == RtoMode::StaticLadder {
            return;
        }
        let (initial, min, max) = (self.rel.rto_initial, self.rel.rto_min, self.rel.rto_max);
        self.rtt
            .entry((local, peer))
            .or_insert_with(|| RtoEstimator::new(initial, min, max))
            .sample(rtt);
    }

    /// Begin a negotiation (Figure 4.2 step 1) for `st.dest()`. The
    /// handshake then progresses inside [`ReliableNet::tick`]; watch
    /// [`ReliableNet::outcomes`] for the result.
    pub fn start(
        &mut self,
        st: &RoutingState<'_>,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
    ) -> Result<NegotiationId, NegotiationError> {
        if requester == responder {
            return Err(NegotiationError::SelfNegotiation);
        }
        Ok(self.launch(st.dest(), requester, responder, constraints, max_price, None))
    }

    /// Create and send a fresh `Request` session (initial or paced retry).
    fn launch(
        &mut self,
        dest: NodeId,
        requester: NodeId,
        responder: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
        retry: Option<RetryCtx>,
    ) -> NegotiationId {
        let id = NegotiationId(self.next_neg);
        self.next_neg += 1;
        let msg = Message::Request { id, dest, constraints: constraints.clone() };
        self.post(requester, responder, msg.clone());
        let backoff = self.rto_for(requester, responder);
        self.req_sessions.push(ReqSession {
            id,
            requester,
            responder,
            dest,
            constraints,
            max_price,
            state: ReqState::AwaitOffers,
            last_msg: msg,
            last_send: self.clock,
            retries: 0,
            backoff,
            retransmits_total: 0,
            started_at: self.clock,
            retry,
        });
        id
    }

    /// All handshakes (both sides) have reached a terminal state. Tunnel
    /// soft state may still be live — keepalives keep flowing — and paced
    /// re-negotiations may still be pending (see
    /// [`ReliableNet::quiescent`]).
    pub fn handshakes_settled(&self) -> bool {
        self.req_sessions.iter().all(|s| {
            matches!(s.state, ReqState::Done(_) | ReqState::Failed | ReqState::Lost)
        }) && self
            .resp_sessions
            .values()
            .all(|s| matches!(s.state, RespState::Offered | RespState::Closed))
            && self.bus.is_idle()
    }

    /// Settled *and* no re-negotiation is waiting to launch: nothing will
    /// change again without external input.
    pub fn quiescent(&self) -> bool {
        self.handshakes_settled() && self.pending_retries.is_empty()
    }

    /// Tick until every handshake settles (or `max_ticks` elapse); returns
    /// the number of ticks consumed. Pending paced retries do NOT hold
    /// this loop open — use [`ReliableNet::run_until_quiescent`] to also
    /// drain the recovery machinery.
    pub fn run_until_settled(&mut self, st: &RoutingState<'_>, max_ticks: u64) -> u64 {
        let start = self.clock;
        while !self.handshakes_settled() && self.clock - start < max_ticks {
            self.tick(st);
        }
        self.clock - start
    }

    /// Tick until [`ReliableNet::quiescent`] (or `max_ticks` elapse);
    /// returns the number of ticks consumed.
    pub fn run_until_quiescent(&mut self, st: &RoutingState<'_>, max_ticks: u64) -> u64 {
        let start = self.clock;
        while !self.quiescent() && self.clock - start < max_ticks {
            self.tick(st);
        }
        self.clock - start
    }

    /// One tick of virtual time: deliver due messages (duplicate-
    /// suppressed), run retransmit timers, launch due re-negotiations,
    /// heartbeat live tunnels, expire stale soft state.
    pub fn tick(&mut self, st: &RoutingState<'_>) {
        self.clock += 1;
        let due = self.bus.deliver_due(self.clock);
        for Envelope { from, to, msg } in due {
            if !self.seen[to as usize].insert(msg.seq) {
                self.duplicates_suppressed += 1;
                continue;
            }
            self.handle(st, from, to, msg.msg);
        }
        self.requester_timers(st);
        self.responder_timers();
        self.pace_retries();
        self.heartbeat();
        self.expire_soft_state(st);
    }

    fn handle(&mut self, st: &RoutingState<'_>, from: NodeId, to: NodeId, msg: Message) {
        match msg {
            Message::Request { id, dest, constraints } => {
                self.on_request(st, from, to, id, dest, &constraints)
            }
            Message::Offers { id, offers } => self.on_offers(st, from, to, id, offers),
            Message::Reject { id, reason } => self.on_reject(st, to, id, reason),
            Message::Accept { id, choice } => self.on_accept(st, from, to, id, choice),
            Message::Established { id, tunnel } => self.on_established(st, from, to, id, tunnel),
            Message::Ack { id } => {
                if let Some(sess) = self.resp_sessions.get_mut(&id) {
                    if sess.responder == to {
                        // Established→Ack is the responder's RTT echo
                        // (Karn: only when Established was never resent).
                        if matches!(sess.state, RespState::Established(_)) && sess.retries == 0 {
                            let (requester, rtt) =
                                (sess.requester, self.clock - sess.last_send);
                            sess.state = RespState::Closed;
                            self.sample_rtt(to, requester, rtt);
                        } else {
                            sess.state = RespState::Closed;
                        }
                    }
                }
            }
            Message::Keepalive { tunnel } => {
                // Refresh on *receipt* only: a heartbeat that the channel
                // eats refreshes nobody, which is the whole point.
                if !self.managers[to as usize].keepalive(tunnel, self.clock) {
                    // The peer pings state we do not hold — we crashed, or
                    // already expired it. Answer with Teardown so the peer
                    // learns of the death within one heartbeat round
                    // instead of a full soft-state timeout. Exception: a
                    // handshake with this peer is still in flight, so the
                    // tunnel may be adopted a tick from now.
                    if !self.handshake_pending(to, from) {
                        self.post(to, from, Message::Teardown { tunnel });
                    }
                }
            }
            Message::Teardown { tunnel } => {
                // Idempotent: unknown or replayed ids are a no-op.
                let held_peer =
                    self.managers[to as usize].get(tunnel).map(|t| t.peer);
                self.managers[to as usize].teardown(tunnel);
                self.leases.retain(|l| {
                    !(l.id == tunnel
                        && ((l.downstream == from && l.upstream == to)
                            || (l.downstream == to && l.upstream == from)))
                });
                // If that tunnel backed one of our Done requester
                // sessions, the session is dead: fall back and enter the
                // paced re-negotiation machinery.
                if held_peer == Some(from) {
                    self.note_session_death(st, to, from, tunnel);
                }
            }
        }
    }

    /// Any requester-side handshake between `local` and `peer` still in
    /// flight? Used to suppress the keepalive-death fast path while an
    /// `Established` may legitimately still be on the wire.
    fn handshake_pending(&self, local: NodeId, peer: NodeId) -> bool {
        self.req_sessions.iter().any(|s| {
            s.requester == local
                && s.responder == peer
                && matches!(s.state, ReqState::AwaitOffers | ReqState::AwaitEstablished)
        })
    }

    /// Responder, step 1 -> 2: answer a `Request` with `Offers` or
    /// `Reject`. A duplicate `Request` (channel dup of a retransmission)
    /// replays whatever this session already answered.
    fn on_request(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        dest: NodeId,
        constraints: &[Constraint],
    ) {
        debug_assert_eq!(dest, st.dest(), "one ReliableNet drives one destination");
        if let Some(sess) = self.resp_sessions.get_mut(&id) {
            if sess.responder == to {
                sess.replays += 1; // Karn: this exchange is now ambiguous
                let replay = sess.last_reply.clone();
                self.post(to, from, replay);
            }
            return;
        }
        let cfg = self.configs[to as usize].clone();
        let reply = match responder_offers(
            &cfg,
            self.managers[to as usize].len(),
            st,
            from,
            to,
            constraints,
            false,
        ) {
            Ok(offers) => Message::Offers { id, offers },
            Err(reason) => Message::Reject { id, reason },
        };
        let backoff = self.rto_for(to, from);
        self.resp_sessions.insert(id, RespSession {
            id,
            requester: from,
            responder: to,
            state: RespState::Offered,
            last_reply: reply.clone(),
            last_send: self.clock,
            retries: 0,
            backoff,
            replays: 0,
        });
        self.post(to, from, reply);
    }

    /// Requester, step 2 -> 3: pick an offer and `Accept` it.
    fn on_offers(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        offers: Vec<crate::export::Offer>,
    ) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        if !matches!(self.req_sessions[i].state, ReqState::AwaitOffers) {
            // Duplicate of an Offers we already answered: the Accept
            // retransmit timer (or the established tunnel) covers us.
            return;
        }
        // Request→Offers is the requester's first RTT echo (Karn: only
        // when the Request was never retransmitted).
        if self.req_sessions[i].retries == 0 {
            let rtt = self.clock - self.req_sessions[i].last_send;
            self.sample_rtt(to, from, rtt);
        }
        let max_price = self.req_sessions[i].max_price;
        match choose_offer(&offers, max_price) {
            Some(choice) => {
                let msg = Message::Accept { id, choice };
                self.post(to, from, msg.clone());
                let backoff = self.rto_for(to, from);
                let s = &mut self.req_sessions[i];
                s.state = ReqState::AwaitEstablished;
                s.last_msg = msg;
                s.last_send = self.clock;
                s.retries = 0;
                s.backoff = backoff;
            }
            None => {
                // Semantic failure: budget too small. No retry can fix it.
                self.fail_requester(i, FailReason::NoneAcceptable, Some(st));
            }
        }
    }

    fn on_reject(&mut self, st: &RoutingState<'_>, to: NodeId, id: NegotiationId, reason: RejectReason) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        if !matches!(self.req_sessions[i].state, ReqState::AwaitOffers | ReqState::AwaitEstablished)
        {
            return;
        }
        // A Reject answers our Request just as an Offers would: still an
        // RTT echo when unretransmitted.
        if matches!(self.req_sessions[i].state, ReqState::AwaitOffers)
            && self.req_sessions[i].retries == 0
        {
            let (responder, rtt) =
                (self.req_sessions[i].responder, self.clock - self.req_sessions[i].last_send);
            self.sample_rtt(to, responder, rtt);
        }
        self.fail_requester(i, FailReason::Rejected(reason), Some(st));
    }

    /// Responder, step 3 -> 4: allocate the tunnel exactly once and report
    /// `Established`. A replayed `Accept` for an established session
    /// replays the recorded `Established` — it never double-establishes.
    fn on_accept(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        choice: usize,
    ) {
        let Some(sess) = self.resp_sessions.get(&id) else { return };
        if sess.responder != to || sess.requester != from {
            return;
        }
        match sess.state {
            // Idempotent replay paths: the tunnel this session allocated
            // (if any) is reported again with the SAME id — never a new
            // allocation.
            RespState::Established(tid) => {
                self.resp_sessions.get_mut(&id).expect("session exists").replays += 1;
                self.post(to, from, Message::Established { id, tunnel: tid });
                return;
            }
            RespState::Closed => {
                if let Some(&tid) = self.session_tunnels.get(&id).and_then(|v| v.first()) {
                    self.post(to, from, Message::Established { id, tunnel: tid });
                }
                return;
            }
            RespState::Offered => {}
        }
        // Offers→Accept is the responder's RTT echo (Karn: only when the
        // Offers was never replayed).
        if sess.replays == 0 {
            let rtt = self.clock - sess.last_send;
            self.sample_rtt(to, from, rtt);
        }
        // State is Offered: the first Accept to arrive wins.
        let sess = self.resp_sessions.get(&id).expect("session exists");
        let Message::Offers { offers, .. } = sess.last_reply.clone() else {
            // Session was rejected; a (stale) Accept replays the Reject.
            let replay = sess.last_reply.clone();
            self.post(to, from, replay);
            return;
        };
        let Some(offer) = offers.get(choice) else {
            let reply = Message::Reject { id, reason: RejectReason::BadChoice };
            let sess = self.resp_sessions.get_mut(&id).expect("session exists");
            sess.last_reply = reply.clone();
            self.post(to, from, reply);
            return;
        };
        let now = self.clock;
        let tid = self.managers[to as usize].establish(
            from,
            st.dest(),
            offer.route.path.clone(),
            offer.price,
            now,
        );
        self.session_tunnels.entry(id).or_default().push(tid);
        self.leases.push(Lease {
            id: tid,
            downstream: to,
            upstream: from,
            dest: st.dest(),
            path: offer.route.path.clone(),
            upstream_path: st.path(from).unwrap_or_default(),
            price: offer.price,
            budget: 0, // unknown to the responder; requester-side record
            constraints: Vec::new(),
        });
        let reply = Message::Established { id, tunnel: tid };
        let backoff = self.rto_for(to, from);
        let sess = self.resp_sessions.get_mut(&id).expect("session exists");
        sess.state = RespState::Established(tid);
        sess.last_reply = reply.clone();
        sess.last_send = now;
        sess.retries = 0;
        sess.backoff = backoff;
        self.post(to, from, reply);
    }

    /// Requester, step 4: adopt the tunnel (once) and `Ack`. Duplicates
    /// re-`Ack`; an `Established` arriving after we already fell back is
    /// declined with a `Teardown` so the responder's orphan dies fast.
    fn on_established(
        &mut self,
        st: &RoutingState<'_>,
        from: NodeId,
        to: NodeId,
        id: NegotiationId,
        tunnel: TunnelId,
    ) {
        let Some(i) = self.req_sessions.iter().position(|s| s.id == id && s.requester == to)
        else {
            return;
        };
        match self.req_sessions[i].state {
            ReqState::AwaitEstablished => {}
            ReqState::Done(adopted) => {
                if adopted == tunnel {
                    self.post(to, from, Message::Ack { id });
                } else {
                    // A different id for the same session can only be a
                    // confused responder; decline the stray allocation.
                    self.post(to, from, Message::Teardown { tunnel });
                }
                return;
            }
            ReqState::Failed | ReqState::Lost => {
                self.post(to, from, Message::Teardown { tunnel });
                return;
            }
            ReqState::AwaitOffers => return, // impossible per causality; ignore
        }
        // Accept→Established is the requester's second RTT echo (Karn:
        // only when the Accept was never retransmitted).
        if self.req_sessions[i].retries == 0 {
            let rtt = self.clock - self.req_sessions[i].last_send;
            self.sample_rtt(to, from, rtt);
        }
        // Find what was sold from the responder's lease record.
        let lease = self
            .leases
            .iter()
            .find(|l| l.id == tunnel && l.downstream == from && l.upstream == to)
            .cloned();
        let (path, price) = match lease {
            Some(l) => (l.path, l.price),
            None => (Vec::new(), 0), // responder restarted; adopt id only
        };
        if self.managers[to as usize].get(tunnel).is_none() {
            self.managers[to as usize].adopt(Tunnel {
                id: tunnel,
                peer: from,
                dest: st.dest(),
                path,
                price,
                last_heartbeat: self.clock,
            });
        }
        let s = &mut self.req_sessions[i];
        s.state = ReqState::Done(tunnel);
        let outcome = NegotiationOutcome {
            id,
            requester: s.requester,
            responder: s.responder,
            dest: s.dest,
            result: Ok(tunnel),
            started_at: s.started_at,
            finished_at: self.clock,
            retransmits: s.retransmits_total,
        };
        // A successful paced retry closes its origin episode; the session
        // then carries no retry context forward — if this tunnel dies
        // later, that is a fresh episode with a fresh budget.
        if let Some(ctx) = s.retry.take() {
            self.fallbacks[ctx.fallback].recovered_at = Some(self.clock);
        }
        self.outcomes.push(outcome);
        self.post(to, from, Message::Ack { id });
    }

    /// Terminal failure on the requester side: record the outcome and the
    /// graceful degrade to the BGP default path; channel failures are
    /// handed to the pacing machinery for a jittered re-negotiation.
    fn fail_requester(&mut self, i: usize, reason: FailReason, st: Option<&RoutingState<'_>>) {
        let s = &mut self.req_sessions[i];
        s.state = ReqState::Failed;
        let retry_ctx = s.retry.take();
        let outcome = NegotiationOutcome {
            id: s.id,
            requester: s.requester,
            responder: s.responder,
            dest: s.dest,
            result: Err(reason),
            started_at: s.started_at,
            finished_at: self.clock,
            retransmits: s.retransmits_total,
        };
        let fallback = FallbackEvent {
            id: s.id,
            requester: s.requester,
            dest: s.dest,
            reason,
            default_path: st.and_then(|st| st.path(s.requester)).unwrap_or_default(),
            at: self.clock,
            recovered_at: None,
            retry_attempts: 0,
            retry_of: retry_ctx.map(|c| c.origin),
        };
        let (requester, responder, dest, constraints, max_price, session_id) = (
            s.requester,
            s.responder,
            s.dest,
            s.constraints.clone(),
            s.max_price,
            s.id,
        );
        self.outcomes.push(outcome);
        self.fallbacks.push(fallback);
        if !reason.is_retryable() {
            return;
        }
        // RFC 6298 §5.7: after enough timeouts to kill the session, the
        // learned SRTT/RTTVAR are likely bogus — drop them so the retry
        // handshake probes from the configured initial RTO.
        self.clear_estimators(requester, responder);
        // A failed fresh episode opens a retry budget; a failed retry
        // attempt continues spending its origin's.
        let ctx = retry_ctx.unwrap_or(RetryCtx {
            fallback: self.fallbacks.len() - 1,
            prev_sleep: 0,
            attempts: 0,
            origin: session_id,
        });
        self.schedule_retry(ctx, requester, responder, dest, constraints, max_price);
    }

    /// An established tunnel's session died under `local` (peer teardown
    /// or soft-state expiry): mark the session Lost, record the fallback,
    /// and enter the paced re-negotiation machinery.
    fn note_session_death(
        &mut self,
        st: &RoutingState<'_>,
        local: NodeId,
        peer: NodeId,
        tunnel: TunnelId,
    ) {
        let Some(i) = self.req_sessions.iter().position(|s| {
            s.requester == local
                && s.responder == peer
                && matches!(s.state, ReqState::Done(t) if t == tunnel)
        }) else {
            return;
        };
        let s = &mut self.req_sessions[i];
        s.state = ReqState::Lost;
        let retry_ctx = s.retry.take();
        let fallback = FallbackEvent {
            id: s.id,
            requester: s.requester,
            dest: s.dest,
            reason: FailReason::SessionDied,
            default_path: st.path(s.requester).unwrap_or_default(),
            at: self.clock,
            recovered_at: None,
            retry_attempts: 0,
            retry_of: retry_ctx.map(|c| c.origin),
        };
        let (requester, responder, dest, constraints, max_price, session_id) = (
            s.requester,
            s.responder,
            s.dest,
            s.constraints.clone(),
            s.max_price,
            s.id,
        );
        self.fallbacks.push(fallback);
        // The peer went silent long enough to expire soft state: whatever
        // the estimators learned predates the disruption (RFC 6298 §5.7).
        self.clear_estimators(requester, responder);
        let ctx = retry_ctx.unwrap_or(RetryCtx {
            fallback: self.fallbacks.len() - 1,
            prev_sleep: 0,
            attempts: 0,
            origin: session_id,
        });
        self.schedule_retry(ctx, requester, responder, dest, constraints, max_price);
    }

    /// Forget both directions' RTT state for a peer pair whose session
    /// just died — stale estimates must not pace the recovery handshake.
    fn clear_estimators(&mut self, a: NodeId, b: NodeId) {
        self.rtt.remove(&(a, b));
        self.rtt.remove(&(b, a));
    }

    /// Queue the next attempt of an episode on the decorrelated-jitter
    /// schedule, unless its budget is spent.
    fn schedule_retry(
        &mut self,
        mut ctx: RetryCtx,
        requester: NodeId,
        responder: NodeId,
        dest: NodeId,
        constraints: Vec<Constraint>,
        max_price: u32,
    ) {
        if ctx.attempts >= self.rel.retry_budget {
            return; // budget spent (or pacing disabled): stay on default
        }
        let base = self.rel.retry_base;
        let prev = if ctx.prev_sleep == 0 { base } else { ctx.prev_sleep };
        let hi = prev.saturating_mul(3).min(self.rel.retry_cap).max(base);
        let dice = splitmix64(
            self.jitter_seed ^ (ctx.origin.0 << 8) ^ u64::from(ctx.attempts),
        );
        let sleep = base + dice % (hi - base + 1);
        ctx.prev_sleep = sleep;
        self.pending_retries.push(PendingRetry {
            ctx,
            requester,
            responder,
            dest,
            constraints,
            max_price,
            next_at: self.clock + sleep,
        });
    }

    /// Launch every paced re-negotiation whose jittered sleep elapsed.
    fn pace_retries(&mut self) {
        if self.pending_retries.is_empty() {
            return;
        }
        let now = self.clock;
        let (due, rest): (Vec<PendingRetry>, Vec<PendingRetry>) =
            std::mem::take(&mut self.pending_retries)
                .into_iter()
                .partition(|p| p.next_at <= now);
        self.pending_retries = rest;
        for p in due {
            let mut ctx = p.ctx;
            ctx.attempts += 1;
            self.fallbacks[ctx.fallback].retry_attempts = ctx.attempts;
            self.launch(p.dest, p.requester, p.responder, p.constraints, p.max_price, Some(ctx));
        }
    }

    fn requester_timers(&mut self, st: &RoutingState<'_>) {
        let now = self.clock;
        let max_retries = self.rel.max_retries;
        let rto_max = self.rel.rto_max;
        let mut resend: Vec<(NodeId, NodeId, Message)> = Vec::new();
        let mut exhausted: Vec<usize> = Vec::new();
        for (i, s) in self.req_sessions.iter_mut().enumerate() {
            if !matches!(s.state, ReqState::AwaitOffers | ReqState::AwaitEstablished) {
                continue;
            }
            if now.saturating_sub(s.last_send) < s.backoff {
                continue;
            }
            if s.retries >= max_retries {
                exhausted.push(i);
                continue;
            }
            s.retries += 1;
            s.retransmits_total += 1;
            s.backoff = (s.backoff * 2).min(rto_max);
            s.last_send = now;
            resend.push((s.requester, s.responder, s.last_msg.clone()));
        }
        for (from, to, msg) in resend {
            self.post(from, to, msg);
        }
        for i in exhausted {
            let stage = match self.req_sessions[i].state {
                ReqState::AwaitOffers => Stage::Request,
                _ => Stage::Accept,
            };
            self.fail_requester(i, FailReason::RetriesExhausted(stage), Some(st));
        }
    }

    fn responder_timers(&mut self) {
        let now = self.clock;
        let max_retries = self.rel.max_retries;
        let rto_max = self.rel.rto_max;
        let mut resend: Vec<(NodeId, NodeId, Message)> = Vec::new();
        for s in self.resp_sessions.values_mut() {
            let RespState::Established(tid) = s.state else { continue };
            if now.saturating_sub(s.last_send) < s.backoff {
                continue;
            }
            if s.retries >= max_retries {
                // Give up retransmitting; if the requester truly never
                // heard us, its missing keepalives expire the orphan.
                s.state = RespState::Closed;
                continue;
            }
            s.retries += 1;
            s.backoff = (s.backoff * 2).min(rto_max);
            s.last_send = now;
            resend.push((s.responder, s.requester, Message::Established { id: s.id, tunnel: tid }));
        }
        for (from, to, msg) in resend {
            self.post(from, to, msg);
        }
    }

    /// Symmetric §4.3 heartbeats through the lossy bus: each side of every
    /// live tunnel pings the other; state refreshes only on receipt.
    fn heartbeat(&mut self) {
        if self.rel.keepalive_interval == 0 || !self.clock.is_multiple_of(self.rel.keepalive_interval)
        {
            return;
        }
        let pings: Vec<(NodeId, NodeId, TunnelId)> = self
            .leases
            .iter()
            .flat_map(|l| {
                [(l.upstream, l.downstream, l.id), (l.downstream, l.upstream, l.id)]
            })
            .collect();
        for (from, to, id) in pings {
            // Only ping for tunnels we still hold ourselves.
            if self.managers[from as usize].get(id).is_some() {
                self.post(from, to, Message::Keepalive { tunnel: id });
            }
        }
    }

    fn expire_soft_state(&mut self, st: &RoutingState<'_>) {
        let now = self.clock;
        let timeout = self.rel.keepalive_timeout;
        let mut teardowns: Vec<(NodeId, NodeId, TunnelId)> = Vec::new();
        for n in 0..self.managers.len() {
            // Capture peers before expiry removes the records.
            let stale: Vec<(TunnelId, NodeId)> = self.managers[n]
                .iter()
                .filter(|t| now.saturating_sub(t.last_heartbeat) > timeout)
                .map(|t| (t.id, t.peer))
                .collect();
            if stale.is_empty() {
                continue;
            }
            self.managers[n].expire(now, timeout);
            for (id, peer) in stale {
                // Best-effort: hurry the peer along (may itself be lost;
                // the peer's own timer is the backstop).
                teardowns.push((n as NodeId, peer, id));
            }
        }
        for (from, to, id) in teardowns {
            self.post(from, to, Message::Teardown { tunnel: id });
            self.leases.retain(|l| {
                !(l.id == id
                    && ((l.downstream == from && l.upstream == to)
                        || (l.downstream == to && l.upstream == from)))
            });
            // Expiry on the requester's own side kills its session too.
            self.note_session_death(st, from, to, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::MiroNetwork;
    use miro_topology::gen::figure_1_1;

    fn setup() -> (Topology, [NodeId; 6]) {
        figure_1_1()
    }

    fn kinds(log: &[(NodeId, NodeId, Message)]) -> Vec<&'static str> {
        log.iter()
            .map(|(_, _, m)| match m {
                Message::Request { .. } => "request",
                Message::Offers { .. } => "offers",
                Message::Accept { .. } => "accept",
                Message::Established { .. } => "established",
                Message::Ack { .. } => "ack",
                Message::Reject { .. } => "reject",
                Message::Keepalive { .. } => "keepalive",
                Message::Teardown { .. } => "teardown",
            })
            .collect()
    }

    /// On a perfect channel the reliability layer is transparent: same
    /// tunnel, same path, same price as the synchronous harness, and the
    /// transcript is Figure 4.2 plus the closing Ack.
    #[test]
    fn perfect_channel_matches_synchronous_harness() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);

        let mut sync_net = MiroNetwork::new(&t);
        let sync_tid =
            sync_net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let sync_lease = sync_net.leases()[0].clone();

        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 1);
        let id = net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let ticks = net.run_until_settled(&st, 50);
        assert!(ticks <= 6, "perfect channel settles in a handful of ticks: {ticks}");

        assert_eq!(net.outcomes().len(), 1);
        let out = &net.outcomes()[0];
        assert_eq!(out.id, id);
        assert_eq!(out.result, Ok(sync_tid), "same downstream id allocation");
        assert_eq!(out.retransmits, 0, "no retransmissions on a perfect channel");
        let lease = &net.leases()[0];
        assert_eq!(lease.path, sync_lease.path);
        assert_eq!(lease.price, sync_lease.price);
        assert_eq!((lease.upstream, lease.downstream), (a, b));
        assert!(net.tunnels(a).get(sync_tid).is_some());
        assert!(net.tunnels(b).get(sync_tid).is_some());
        assert_eq!(
            kinds(&net.log)[..5],
            ["request", "offers", "accept", "established", "ack"]
        );
        assert!(net.fallbacks().is_empty());
        assert_eq!(net.double_establish_count(), 0);
        assert_eq!(net.orphan_count(), 0);
    }

    /// Semantic rejections surface the same reasons as the synchronous
    /// harness, now as typed outcomes with a recorded fallback — and are
    /// never fed to the pacing machinery (no schedule fixes policy).
    #[test]
    fn rejections_record_fallback_to_default_path() {
        let (t, [a, b, _c, d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 2);
        net.configure(b, ResponderConfig {
            accept_any: false,
            allow: vec![d],
            ..Default::default()
        });
        let id = net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        assert_eq!(
            net.outcomes()[0].result,
            Err(FailReason::Rejected(RejectReason::NotAllowed))
        );
        let fb = &net.fallbacks()[0];
        assert_eq!(fb.id, id);
        assert_eq!(fb.requester, a);
        assert_eq!(
            fb.default_path,
            st.path(a).unwrap(),
            "the requester degrades to its BGP default path"
        );
        assert!(net.leases().is_empty());
        assert_eq!(net.pending_retry_count(), 0, "semantic failures are never retried");
    }

    /// A channel that eats everything: retries back off, then the
    /// requester gives up and falls back. Nothing is ever established,
    /// and — with no RTT echo ever arriving — Karn keeps the estimator
    /// empty, so the timing is exactly the static initial-RTO ladder.
    #[test]
    fn total_blackout_exhausts_retries_and_falls_back() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig {
            drop_permille: 1000,
            ..FaultConfig::PERFECT
        }, 3);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let ticks = net.run_until_settled(&st, 2_000);
        // 5 retries with doubling backoff from 4: 4+8+16+32+64+128 ticks.
        assert!(ticks < 300, "bounded retries actually bound time: {ticks}");
        assert_eq!(
            net.outcomes()[0].result,
            Err(FailReason::RetriesExhausted(Stage::Request))
        );
        assert_eq!(net.outcomes()[0].retransmits, 5);
        assert_eq!(net.fallbacks().len(), 1);
        assert_eq!(net.rto_snapshot().samples, 0, "Karn: no echo, no sample");
        assert!(net.leases().is_empty());
        assert!(net.tunnels(a).is_empty() && net.tunnels(b).is_empty());
        assert_eq!(net.pending_retry_count(), 1, "the episode queued a paced retry");
    }

    /// Moderate loss: retransmits push the handshake through.
    #[test]
    fn lossy_channel_succeeds_via_retransmit() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut ok = 0;
        for seed in 0..50u64 {
            let mut net = ReliableNet::new(&t, FaultConfig::lossy(100, 50, 100), seed);
            net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
            net.run_until_settled(&st, 2_000);
            assert_eq!(net.double_establish_count(), 0, "seed {seed}");
            match net.outcomes()[0].result {
                Ok(tid) => {
                    ok += 1;
                    assert!(net.tunnels(a).get(tid).is_some(), "seed {seed}");
                    assert!(net.tunnels(b).get(tid).is_some(), "seed {seed}");
                }
                Err(_) => {
                    assert_eq!(net.fallbacks().len(), 1, "failure recorded: seed {seed}");
                }
            }
        }
        assert!(ok >= 48, "10% loss overwhelmingly succeeds via retransmit: {ok}/50");
    }

    /// Every message duplicated: exactly one tunnel, tables agree, and the
    /// sequence layer (not luck) absorbed the copies.
    #[test]
    fn full_duplication_never_double_establishes() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig {
            dup_permille: 1000,
            delay_min: 0,
            delay_max: 2,
            ..FaultConfig::PERFECT
        }, 7);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 500);
        assert!(net.outcomes()[0].result.is_ok());
        assert_eq!(net.leases().len(), 1);
        assert_eq!(net.double_establish_count(), 0);
        assert_eq!(net.tunnels(a).len(), 1);
        assert_eq!(net.tunnels(b).len(), 1);
        assert!(net.duplicates_suppressed > 0, "the sequence layer did real work");
    }

    /// §4.3 under real loss: a tunnel survives transient keepalive loss
    /// (timeout > interval), and expires cleanly on both sides — ledger
    /// included — under a sustained outage.
    #[test]
    fn keepalive_soft_state_survives_transient_loss_and_expires_under_outage() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::lossy(100, 0, 100), 11);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 2_000);
        let tid = net.outcomes()[0].result.expect("established");
        // 10% keepalive loss for 200 ticks: with timeout 35 and interval
        // 10, expiry needs ~3 consecutive losses on a side — survives.
        for _ in 0..200 {
            net.tick(&st);
        }
        assert_eq!(net.leases().len(), 1, "tunnel survives transient loss");
        assert!(net.tunnels(a).get(tid).is_some());
        assert!(net.tunnels(b).get(tid).is_some());
        // Total outage: both sides expire their soft state. (Paced
        // re-negotiations launch but die against the same blackout.)
        net.set_fault(FaultConfig { drop_permille: 1000, ..FaultConfig::PERFECT });
        for _ in 0..100 {
            net.tick(&st);
        }
        assert!(net.leases().is_empty(), "ledger reaped");
        assert!(net.tunnels(a).get(tid).is_none(), "upstream expired");
        assert!(net.tunnels(b).get(tid).is_none(), "downstream expired");
        let died: Vec<_> = net
            .fallbacks()
            .iter()
            .filter(|f| f.reason == FailReason::SessionDied)
            .collect();
        assert_eq!(died.len(), 1, "the death was recorded as a fallback episode");
        assert_eq!(died[0].recovered_at, None, "nothing recovers under blackout");
    }

    /// A late `Established` after the requester already fell back is
    /// declined with a `Teardown`: no half-open tunnel survives. Pacing is
    /// disabled so the cleanup window stays quiet.
    #[test]
    fn late_established_after_fallback_is_torn_down() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        // Fast-exhausting requester so the race is easy to hit: one retry,
        // 1-tick initial RTO, no paced re-negotiation.
        let rel = ReliabilityConfig {
            rto_initial: 1,
            rto_min: 1,
            max_retries: 1,
            retry_budget: 0,
            ..Default::default()
        };
        let mut hit = false;
        for seed in 0..200u64 {
            let mut net = ReliableNet::with_reliability(
                &t,
                FaultConfig { drop_permille: 450, delay_min: 0, delay_max: 4, dup_permille: 0, reorder_permille: 0 },
                seed,
                rel,
            );
            net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
            net.run_until_settled(&st, 400);
            let failed = net.outcomes()[0].result.is_err();
            let responder_established = !net.tunnels(b).is_empty() || !net
                .tunnels(b)
                .torn_down
                .is_empty();
            if failed && responder_established {
                hit = true;
                // Let teardown / soft-state expiry finish the cleanup.
                for _ in 0..80 {
                    net.tick(&st);
                }
                assert!(net.tunnels(a).is_empty(), "seed {seed}: requester clean");
                assert!(net.tunnels(b).is_empty(), "seed {seed}: orphan reaped");
                assert!(net.leases().is_empty(), "seed {seed}: ledger clean");
                assert_eq!(net.orphan_count(), 0, "seed {seed}");
            }
        }
        assert!(hit, "the fallback-vs-established race was actually exercised");
    }

    /// Self-negotiation is refused exactly like the synchronous harness.
    #[test]
    fn self_negotiation_refused() {
        let (t, [a, ..]) = setup();
        let st = RoutingState::solve(&t, a);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 0);
        assert_eq!(
            net.start(&st, a, a, vec![], 100),
            Err(NegotiationError::SelfNegotiation)
        );
    }

    /// Construction-time validation rejects degenerate knobs with typed
    /// errors instead of latent misbehaviour.
    #[test]
    fn config_validation_rejects_nonsense() {
        let (t, _) = setup();
        let bad = |rel: ReliabilityConfig| {
            ReliableNet::try_with_reliability(&t, FaultConfig::PERFECT, 0, rel).err().unwrap()
        };
        assert_eq!(
            bad(ReliabilityConfig { max_retries: 0, ..Default::default() }),
            ConfigError::ZeroMaxRetries
        );
        assert_eq!(
            bad(ReliabilityConfig { rto_initial: 0, ..Default::default() }),
            ConfigError::ZeroInitialRto
        );
        assert_eq!(
            bad(ReliabilityConfig { rto_min: 9, rto_max: 3, ..Default::default() }),
            ConfigError::RtoRange { min: 9, max: 3 }
        );
        assert_eq!(
            bad(ReliabilityConfig {
                keepalive_interval: 10,
                keepalive_timeout: 10,
                ..Default::default()
            }),
            ConfigError::KeepaliveTimeout { interval: 10, timeout: 10 }
        );
        assert_eq!(
            bad(ReliabilityConfig { retry_base: 0, ..Default::default() }),
            ConfigError::RetryRange { base: 0, cap: 256 }
        );
        assert_eq!(
            bad(ReliabilityConfig { retry_base: 64, retry_cap: 8, ..Default::default() }),
            ConfigError::RetryRange { base: 64, cap: 8 }
        );
        // Invalid FaultConfig also surfaces through the same constructor.
        assert_eq!(
            ReliableNet::try_with_reliability(
                &t,
                FaultConfig { drop_permille: 1500, ..FaultConfig::PERFECT },
                0,
                ReliabilityConfig::default(),
            )
            .err()
            .unwrap(),
            ConfigError::PermilleOutOfRange { knob: "drop_permille", value: 1500 }
        );
    }

    /// Handshake echoes feed the per-peer estimators; on a short-RTT
    /// channel the learned RTO undercuts the static initial value.
    #[test]
    fn adaptive_rto_learns_the_channel() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 13);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        let snap = net.rto_snapshot();
        assert!(snap.peers >= 2, "both directions sampled: {}", snap.peers);
        assert!(snap.samples >= 3, "3 echoes in one clean handshake: {}", snap.samples);
        assert!(
            (snap.srtt_mean - 2.0).abs() < 1e-6,
            "perfect channel: one tick each way, srtt {}",
            snap.srtt_mean
        );
        // First sample R=2: RTO = 2 + 4·1 = 6; the second tightens it.
        // Either way the timer now reflects the measured channel, bounded
        // well under the doubling ladder's reach.
        assert!(
            snap.rto_mean >= 2.0 && snap.rto_mean <= 6.0,
            "learned RTO tracks the 2-tick RTT: {}",
            snap.rto_mean
        );
        assert!(snap.rto_peak <= 6, "peak stays near the measurement: {}", snap.rto_peak);
    }

    /// StaticLadder mode never samples: the A/B baseline really is the
    /// legacy fixed ladder.
    #[test]
    fn static_ladder_mode_disables_estimation() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let rel = ReliabilityConfig { rto_mode: RtoMode::StaticLadder, ..Default::default() };
        let mut net = ReliableNet::with_reliability(&t, FaultConfig::PERFECT, 13, rel);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        assert_eq!(net.rto_snapshot().samples, 0);
        assert!(net.outcomes()[0].result.is_ok());
    }

    /// A scheduled outage long enough to expire the soft state: the
    /// session dies, the paced re-negotiation machinery retries through
    /// the healed channel, and the original episode records its recovery.
    #[test]
    fn paced_retry_recovers_after_scheduled_outage() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 17);
        net.schedule_outage(10, 70).unwrap();
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        let first_tid = net.outcomes()[0].result.expect("establishes before the outage");
        // Drive time through the outage window (the net is quiescent until
        // the missing keepalives kill the session), then drain recovery.
        while net.clock < 75 {
            net.tick(&st);
        }
        let ticks = net.run_until_quiescent(&st, 2_000);
        assert!(ticks < 2_000, "recovery quiesces well inside the budget");
        // The outage (60 ticks > keepalive_timeout 35) killed the tunnel…
        assert!(net.tunnels(a).get(first_tid).is_none());
        let origin: Vec<_> = net
            .fallbacks()
            .iter()
            .filter(|fb| fb.retry_of.is_none() && fb.reason == FailReason::SessionDied)
            .collect();
        assert_eq!(origin.len(), 1, "exactly one fresh outage episode");
        // …and a paced retry brought service back on the original record.
        assert!(origin[0].recovered_at.is_some(), "episode recovered: {:?}", origin[0]);
        assert!(origin[0].retry_attempts >= 1);
        let new_tid = net
            .outcomes()
            .iter()
            .rev()
            .find_map(|o| o.result.ok())
            .expect("a retry re-established");
        assert_ne!(new_tid, first_tid, "fresh allocation, no id reuse");
        assert!(net.tunnels(a).get(new_tid).is_some());
        assert!(net.tunnels(b).get(new_tid).is_some());
        assert_eq!(net.leases().len(), 1);
        assert_eq!(net.orphan_count(), 0);
        assert_eq!(net.double_establish_count(), 0);
    }

    /// Under a permanent blackout the retry budget bounds the pacing
    /// machinery: a fixed number of attempts, then quiescence on the
    /// default path, with the episode left unrecovered.
    #[test]
    fn retry_budget_bounds_give_up_under_permanent_outage() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let rel = ReliabilityConfig {
            rto_initial: 1,
            rto_min: 1,
            max_retries: 2,
            retry_base: 4,
            retry_cap: 8,
            retry_budget: 2,
            ..Default::default()
        };
        let mut net = ReliableNet::with_reliability(&t, FaultConfig::PERFECT, 23, rel);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        net.outcomes()[0].result.expect("establishes before the blackout");
        net.set_fault(FaultConfig { drop_permille: 1000, ..FaultConfig::PERFECT });
        // Tick until the keepalive silence kills the session, then drain.
        while net.fallbacks().is_empty() && net.clock < 200 {
            net.tick(&st);
        }
        assert!(!net.fallbacks().is_empty(), "the blackout killed the session");
        let ticks = net.run_until_quiescent(&st, 2_000);
        assert!(ticks < 2_000, "the budget actually bounds the machinery: {ticks}");
        assert_eq!(net.pending_retry_count(), 0, "gave up for good");
        let origin: Vec<_> =
            net.fallbacks().iter().filter(|fb| fb.retry_of.is_none()).collect();
        assert_eq!(origin.len(), 1);
        assert_eq!(origin[0].reason, FailReason::SessionDied);
        assert_eq!(origin[0].retry_attempts, 2, "exactly the budget was spent");
        assert_eq!(origin[0].recovered_at, None);
        let chained: Vec<_> =
            net.fallbacks().iter().filter(|fb| fb.retry_of.is_some()).collect();
        assert_eq!(chained.len(), 2, "each failed attempt left a chained record");
        assert!(chained
            .iter()
            .all(|fb| fb.retry_of == Some(origin[0].id)
                && fb.reason == FailReason::RetriesExhausted(Stage::Request)));
    }

    /// Responder crash-restart: the requester detects the death via the
    /// keepalive/Teardown fast path, re-negotiates through pacing, and the
    /// restarted responder allocates a *fresh* id (boot-epoch allocator).
    #[test]
    fn crash_restart_renegotiates_with_fresh_id() {
        let (t, [a, b, _c, _d, e, f]) = setup();
        let st = RoutingState::solve(&t, f);
        let mut net = ReliableNet::new(&t, FaultConfig::PERFECT, 29);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.run_until_settled(&st, 50);
        let first_tid = net.outcomes()[0].result.expect("established");
        let lost = net.crash_restart(b);
        assert_eq!(lost, vec![first_tid], "the responder lost its only tunnel");
        assert!(net.tunnels(b).is_empty());
        assert!(net.tunnels(a).get(first_tid).is_some(), "requester still believes");
        // Tick until the keepalive/Teardown exchange surfaces the death,
        // then drain the paced recovery.
        while net.fallbacks().is_empty() && net.clock < 100 {
            net.tick(&st);
        }
        assert!(!net.fallbacks().is_empty(), "the crash was detected");
        let ticks = net.run_until_quiescent(&st, 2_000);
        assert!(ticks < 2_000);
        // Death detection beat the 35-tick soft-state timeout: the next
        // keepalive (≤10 ticks out) was answered with Teardown.
        let origin: Vec<_> = net
            .fallbacks()
            .iter()
            .filter(|fb| fb.retry_of.is_none() && fb.reason == FailReason::SessionDied)
            .collect();
        assert_eq!(origin.len(), 1);
        assert!(
            origin[0].at <= net.outcomes()[0].finished_at + net.rel.keepalive_interval + 2,
            "keepalive/Teardown detected the crash within one heartbeat round: {}",
            origin[0].at
        );
        assert!(origin[0].recovered_at.is_some(), "re-negotiation healed it");
        let new_tid = net
            .outcomes()
            .iter()
            .rev()
            .find_map(|o| o.result.ok())
            .expect("re-established");
        assert_ne!(new_tid, first_tid, "restart never re-issues a pre-crash id");
        assert!(net.tunnels(a).get(first_tid).is_none(), "stale tunnel torn down");
        assert!(net.tunnels(a).get(new_tid).is_some());
        assert!(net.tunnels(b).get(new_tid).is_some());
        assert_eq!(net.leases().len(), 1, "ledger reflects exactly the new tunnel");
        assert_eq!(net.orphan_count(), 0, "zero orphans at quiescence");
    }
}
