//! Soft-state tunnel management (sections 3.5 and 4.3).
//!
//! After a successful negotiation, the responding (downstream) AS assigns a
//! tunnel identifier — unique only within itself — and both sides install
//! state. A tunnel stays alive while keepalives flow; it is torn down
//! actively when either side's relevant route changes (the upstream's path
//! *to* the downstream AS, or the downstream's path to the destination), or
//! passively when the heartbeat timer expires (the "idle tunnels in the
//! downstream ASes" problem of section 4.3).
//!
//! Time is a virtual `u64` tick supplied by the caller, so the whole
//! control plane is deterministic and simulable.

use miro_topology::NodeId;
use std::collections::HashMap;

/// Downstream-scoped tunnel identifier (the "7" of Figures 3.1 and 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TunnelId(pub u32);

/// One endpoint's record of a live tunnel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tunnel {
    /// The id the downstream AS assigned.
    pub id: TunnelId,
    /// The AS at the other end of the tunnel.
    pub peer: NodeId,
    /// Destination prefix (AS-level) the tunnel serves.
    pub dest: NodeId,
    /// The negotiated path, *as held by the downstream AS* (next hop
    /// first, destination last).
    pub path: Vec<NodeId>,
    /// Agreed price per the negotiation.
    pub price: u32,
    /// Virtual time of the last keepalive seen (or establishment).
    pub last_heartbeat: u64,
}

/// Why a tunnel was torn down — reported so callers (and tests) can tell
/// active teardown from soft-state expiry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TeardownReason {
    /// Keepalives stopped arriving (section 4.3 soft state).
    Expired,
    /// The route underpinning the tunnel changed or failed.
    RouteChange,
    /// The peer asked for teardown.
    PeerRequest,
}

/// Tunnel table of one AS (either side of the relationship uses the same
/// structure; the downstream side is also the id allocator).
///
/// ```
/// use miro_core::tunnel::TunnelManager;
///
/// let mut mgr = TunnelManager::new();
/// let id = mgr.establish(/*peer*/ 7, /*dest*/ 9, vec![3, 9], /*price*/ 180, /*now*/ 0);
/// mgr.keepalive(id, 25);
/// assert!(mgr.expire(/*now*/ 30, /*timeout*/ 10).is_empty(), "fresh heartbeat");
/// let dead = mgr.expire(/*now*/ 99, /*timeout*/ 10);
/// assert_eq!(dead, vec![id], "silence kills the soft state");
/// ```
#[derive(Default, Debug)]
pub struct TunnelManager {
    next: u32,
    live: HashMap<TunnelId, Tunnel>,
    /// History of (id, reason), for diagnostics and tests.
    pub torn_down: Vec<(TunnelId, TeardownReason)>,
}

impl TunnelManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Downstream side: allocate an id and install state.
    pub fn establish(
        &mut self,
        peer: NodeId,
        dest: NodeId,
        path: Vec<NodeId>,
        price: u32,
        now: u64,
    ) -> TunnelId {
        let id = TunnelId(self.next);
        self.next += 1;
        self.live.insert(
            id,
            Tunnel { id, peer, dest, path, price, last_heartbeat: now },
        );
        id
    }

    /// Upstream side: install state under the id the downstream assigned.
    /// Returns `false` (and installs nothing) if the id is already taken —
    /// ids are scoped to the *downstream* AS, so an upstream AS tracking
    /// tunnels to several downstreams must key by (peer, id); this manager
    /// models one peer relationship per entry and treats collisions as
    /// caller error.
    pub fn adopt(&mut self, tunnel: Tunnel) -> bool {
        if self.live.contains_key(&tunnel.id) {
            return false;
        }
        self.live.insert(tunnel.id, tunnel);
        true
    }

    /// Record a heartbeat for `id` at time `now`.
    pub fn keepalive(&mut self, id: TunnelId, now: u64) -> bool {
        match self.live.get_mut(&id) {
            Some(t) => {
                t.last_heartbeat = now;
                true
            }
            None => false,
        }
    }

    /// Tear down every tunnel whose last heartbeat is older than
    /// `now - timeout`. Returns the expired ids.
    pub fn expire(&mut self, now: u64, timeout: u64) -> Vec<TunnelId> {
        let dead: Vec<TunnelId> = self
            .live
            .values()
            .filter(|t| now.saturating_sub(t.last_heartbeat) > timeout)
            .map(|t| t.id)
            .collect();
        for id in &dead {
            self.live.remove(id);
            self.torn_down.push((*id, TeardownReason::Expired));
        }
        let mut dead = dead;
        dead.sort_unstable();
        dead
    }

    /// The downstream AS observed that its route to `dest` changed and no
    /// longer matches what tunnels were sold on: tear down every tunnel to
    /// `dest` whose negotiated path is not `still_valid` (section 4.3:
    /// "AS B will tear down the tunnel if the path BCF to the destination
    /// prefix fails"). Pass `None` when the destination became unreachable.
    pub fn on_route_change(
        &mut self,
        dest: NodeId,
        still_valid: Option<&[NodeId]>,
    ) -> Vec<TunnelId> {
        let dead: Vec<TunnelId> = self
            .live
            .values()
            .filter(|t| t.dest == dest && Some(t.path.as_slice()) != still_valid)
            .map(|t| t.id)
            .collect();
        for id in &dead {
            self.live.remove(id);
            self.torn_down.push((*id, TeardownReason::RouteChange));
        }
        let mut dead = dead;
        dead.sort_unstable();
        dead
    }

    /// The upstream AS observed its path *toward* `peer` changed: every
    /// tunnel through that peer dies (section 4.3: "AS A will tear down
    /// the tunnel if the path AB changes").
    pub fn on_peer_path_change(&mut self, peer: NodeId) -> Vec<TunnelId> {
        let dead: Vec<TunnelId> =
            self.live.values().filter(|t| t.peer == peer).map(|t| t.id).collect();
        for id in &dead {
            self.live.remove(id);
            self.torn_down.push((*id, TeardownReason::RouteChange));
        }
        let mut dead = dead;
        dead.sort_unstable();
        dead
    }

    /// Link churn hit the tunnel table: tear down every tunnel whose
    /// negotiated path crosses a currently-failed link (section 4.3 under
    /// a RouteViews-style firehose — a tunnel dies the moment any hop of
    /// the path it was sold on loses its session). `owner` is the AS
    /// holding this table: the implicit first hop `owner -> path[0]` is
    /// checked too, since `Tunnel::path` starts at the downstream's next
    /// hop. Returns the torn-down ids (sorted), recorded as
    /// [`TeardownReason::RouteChange`].
    pub fn sweep_failed_links(
        &mut self,
        owner: NodeId,
        mut is_down: impl FnMut(NodeId, NodeId) -> bool,
    ) -> Vec<TunnelId> {
        let mut dead: Vec<TunnelId> = self
            .live
            .values()
            .filter(|t| {
                let mut at = owner;
                t.path.iter().any(|&hop| {
                    let cut = is_down(at, hop);
                    at = hop;
                    cut
                })
            })
            .map(|t| t.id)
            .collect();
        for id in &dead {
            self.live.remove(id);
            self.torn_down.push((*id, TeardownReason::RouteChange));
        }
        dead.sort_unstable();
        dead
    }

    /// The process behind this table crashed: every live tunnel and the
    /// teardown history vanish without ceremony (soft state is exactly
    /// the state you are allowed to lose). The id allocator survives —
    /// it models a boot-epoch-prefixed id space, so a restarted
    /// responder never re-issues an id a peer may still be holding from
    /// before the crash. Returns the ids that were live, for callers
    /// that account for the wreckage.
    pub fn crash(&mut self) -> Vec<TunnelId> {
        let mut lost: Vec<TunnelId> = self.live.keys().copied().collect();
        lost.sort_unstable();
        self.live.clear();
        self.torn_down.clear();
        lost
    }

    /// Peer-requested teardown.
    pub fn teardown(&mut self, id: TunnelId) -> bool {
        if self.live.remove(&id).is_some() {
            self.torn_down.push((id, TeardownReason::PeerRequest));
            true
        } else {
            false
        }
    }

    /// Look up a live tunnel.
    pub fn get(&self, id: TunnelId) -> Option<&Tunnel> {
        self.live.get(&id)
    }

    /// Number of live tunnels (drives the `tunnel_number < N` admission
    /// rule of section 6.3).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterate live tunnels in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Tunnel> {
        let mut v: Vec<&Tunnel> = self.live.values().collect();
        v.sort_by_key(|t| t.id);
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_with_two() -> TunnelManager {
        let mut m = TunnelManager::new();
        m.establish(1, 9, vec![2, 9], 120, 0);
        m.establish(1, 8, vec![3, 8], 180, 0);
        m
    }

    #[test]
    fn establish_allocates_fresh_ids() {
        let mut m = TunnelManager::new();
        let a = m.establish(1, 9, vec![9], 0, 0);
        let b = m.establish(2, 9, vec![9], 0, 0);
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a).unwrap().peer, 1);
    }

    #[test]
    fn keepalive_refreshes_and_expire_reaps() {
        let mut m = mgr_with_two();
        let ids: Vec<TunnelId> = m.iter().map(|t| t.id).collect();
        assert!(m.keepalive(ids[0], 50));
        // Timeout 30 at t=60: tunnel 0 heartbeat at 50 (age 10, lives);
        // tunnel 1 heartbeat at 0 (age 60, dies).
        let dead = m.expire(60, 30);
        assert_eq!(dead, vec![ids[1]]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.torn_down, vec![(ids[1], TeardownReason::Expired)]);
        // Unknown id keepalive is reported.
        assert!(!m.keepalive(ids[1], 70));
    }

    #[test]
    fn route_change_tears_down_mismatched_tunnels() {
        let mut m = TunnelManager::new();
        let a = m.establish(1, 9, vec![2, 9], 0, 0);
        let b = m.establish(4, 9, vec![3, 9], 0, 0);
        let c = m.establish(5, 8, vec![3, 8], 0, 0);
        // Our route to 9 is now [2, 9]: tunnel b (sold on [3, 9]) dies,
        // tunnel a survives, tunnel c (other dest) untouched.
        let dead = m.on_route_change(9, Some(&[2, 9]));
        assert_eq!(dead, vec![b]);
        assert!(m.get(a).is_some());
        assert!(m.get(c).is_some());
        // Destination unreachable: everything to 9 dies.
        let dead = m.on_route_change(9, None);
        assert_eq!(dead, vec![a]);
    }

    #[test]
    fn peer_path_change_kills_all_tunnels_through_peer() {
        let mut m = TunnelManager::new();
        let a = m.establish(1, 9, vec![2, 9], 0, 0);
        let _b = m.establish(1, 8, vec![2, 8], 0, 0);
        let c = m.establish(2, 9, vec![3, 9], 0, 0);
        let dead = m.on_peer_path_change(1);
        assert_eq!(dead.len(), 2);
        assert!(dead.contains(&a));
        assert!(m.get(c).is_some());
    }

    #[test]
    fn sweep_failed_links_kills_only_tunnels_crossing_the_cut() {
        let mut m = TunnelManager::new();
        // Owner is AS 1. Tunnel a: 1 -> 2 -> 9; tunnel b: 1 -> 3 -> 9;
        // tunnel c: 1 -> 3 -> 8.
        let a = m.establish(7, 9, vec![2, 9], 0, 0);
        let b = m.establish(7, 9, vec![3, 9], 0, 0);
        let c = m.establish(7, 8, vec![3, 8], 0, 0);

        // Link 3--9 fails: only tunnel b crosses it.
        let dead = m.sweep_failed_links(1, |x, y| (x.min(y), x.max(y)) == (3, 9));
        assert_eq!(dead, vec![b]);
        assert_eq!(m.torn_down, vec![(b, TeardownReason::RouteChange)]);
        assert!(m.get(a).is_some() && m.get(c).is_some());

        // The implicit first hop matters: owner 1 loses its link to 3.
        let dead = m.sweep_failed_links(1, |x, y| (x.min(y), x.max(y)) == (1, 3));
        assert_eq!(dead, vec![c]);

        // No failed links: nothing to do.
        assert!(m.sweep_failed_links(1, |_, _| false).is_empty());
        assert!(m.get(a).is_some());
    }

    #[test]
    fn explicit_teardown() {
        let mut m = mgr_with_two();
        let id = m.iter().next().unwrap().id;
        assert!(m.teardown(id));
        assert!(!m.teardown(id), "double teardown is reported");
        assert_eq!(m.torn_down.last(), Some(&(id, TeardownReason::PeerRequest)));
    }

    #[test]
    fn adopt_rejects_id_collisions() {
        let mut m = TunnelManager::new();
        let t = Tunnel {
            id: TunnelId(7),
            peer: 1,
            dest: 9,
            path: vec![9],
            price: 0,
            last_heartbeat: 0,
        };
        assert!(m.adopt(t.clone()));
        assert!(!m.adopt(t));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn crash_wipes_state_but_not_the_id_allocator() {
        let mut m = mgr_with_two();
        let first = m.iter().next().unwrap().id;
        m.teardown(first);
        let lost = m.crash();
        assert_eq!(lost, vec![TunnelId(1)], "the surviving tunnel was lost");
        assert!(m.is_empty());
        assert!(m.torn_down.is_empty(), "a crash loses the history too");
        let id = m.establish(1, 9, vec![9], 0, 0);
        assert_eq!(id, TunnelId(2), "post-restart ids never collide with pre-crash ones");
    }

    #[test]
    fn iteration_is_id_ordered() {
        let m = mgr_with_two();
        let ids: Vec<u32> = m.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
