//! The requesting-AS side: whom to negotiate with, and the avoid-AS
//! application (sections 3.3, 5.3, 6.2.1).
//!
//! The paper's negotiation-targeting heuristic for a security policy like
//! "avoid AS 312" is: contact the ASes sitting on the default path between
//! the requester and the offending AS (section 6.2.1). The evaluation also
//! studies plain 1-hop negotiation with immediate neighbors
//! (Figures 5.2/5.3's "1-hop" vs "path" curves). Both are
//! [`TargetStrategy`] variants, and [`avoid_via_negotiation`] is the
//! search loop whose success rates and state counts become Tables 5.2/5.3.

use crate::export::{ExportPolicy, Offer};
use crate::negotiate::Constraint;
use miro_bgp::route::CandidateRoute;
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Rel};

/// Whom the requesting AS contacts, in order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetStrategy {
    /// ASes on the requester's default path toward the destination,
    /// nearest first — stopping *before* the avoided AS when one is given
    /// (traffic must still reach the responder cleanly). The destination
    /// itself is never contacted (its alternate routes to itself are
    /// vacuous).
    OnPath,
    /// The requester's immediate neighbors, in AS-number order
    /// (Figures 5.2/5.3's "1-hop" scenario).
    OneHop,
    /// On-path ASes first, then any remaining immediate neighbors — the
    /// ablation strategy discussed in DESIGN.md.
    OnPathThenNeighbors,
}

impl TargetStrategy {
    /// Paper's curve label.
    pub fn label(self) -> &'static str {
        match self {
            TargetStrategy::OnPath => "path",
            TargetStrategy::OneHop => "1-hop",
            TargetStrategy::OnPathThenNeighbors => "path+1-hop",
        }
    }

    /// Ordered negotiation targets for `src` in routing state `st`.
    /// With `avoid = Some(a)`, on-path targets stop before `a`.
    pub fn targets(
        self,
        st: &RoutingState<'_>,
        src: NodeId,
        avoid: Option<NodeId>,
    ) -> Vec<NodeId> {
        let topo = st.topology();
        let on_path = || -> Vec<NodeId> {
            let Some(path) = st.path(src) else { return Vec::new() };
            let mut out = Vec::new();
            for &hop in &path {
                if Some(hop) == avoid || hop == st.dest() {
                    break;
                }
                out.push(hop);
            }
            out
        };
        let one_hop = || -> Vec<NodeId> {
            let mut ns: Vec<NodeId> = topo
                .neighbors(src)
                .iter()
                .map(|&(n, _)| n)
                .filter(|&n| Some(n) != avoid && n != st.dest())
                .collect();
            ns.sort_by_key(|&n| topo.asn(n));
            ns
        };
        match self {
            TargetStrategy::OnPath => on_path(),
            TargetStrategy::OneHop => one_hop(),
            TargetStrategy::OnPathThenNeighbors => {
                let mut v = on_path();
                for n in one_hop() {
                    if !v.contains(&n) {
                        v.push(n);
                    }
                }
                v
            }
        }
    }
}

/// The relationship that governs the responder's export decision toward a
/// (possibly non-adjacent) requester.
///
/// * Adjacent requester: the actual link relationship.
/// * Requester upstream on its own default path through the responder: the
///   relationship between the responder and its *upstream neighbor on that
///   path* — the AS the requester's traffic arrives through. (Documented
///   modeling choice; the paper leaves this open. See DESIGN.md.)
/// * Anything else: treated as a peer (a neutral, conservative default).
pub fn export_rel_toward(
    st: &RoutingState<'_>,
    requester: NodeId,
    responder: NodeId,
) -> Rel {
    let topo = st.topology();
    if let Some(rel) = topo.rel(responder, requester) {
        return rel; // what the requester is to the responder
    }
    if let Some(path) = st.path(requester) {
        if let Some(pos) = path.iter().position(|&h| h == responder) {
            let upstream = if pos == 0 { requester } else { path[pos - 1] };
            if let Some(rel) = topo.rel(responder, upstream) {
                return rel;
            }
        }
    }
    Rel::Peer
}

/// Result of one avoid-AS attempt (one (src, dest, avoid) tuple of
/// section 5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvoidOutcome {
    /// Could the objective be met *without* MIRO: some ordinary BGP
    /// candidate at the source already avoids the AS (Table 5.2's
    /// "Single" column).
    pub single_path_success: bool,
    /// Did negotiation find an avoiding route (Table 5.2's "Multi"
    /// columns)? `true` whenever `single_path_success` is (no negotiation
    /// is needed then).
    pub success: bool,
    /// ASes contacted before success or exhaustion (Table 5.3 "AS#").
    pub ases_contacted: usize,
    /// Candidate paths received across those negotiations (Table 5.3
    /// "Path#").
    pub paths_received: usize,
    /// The responder and route finally chosen, when negotiation succeeded.
    pub chosen: Option<(NodeId, CandidateRoute)>,
}

/// Run the avoid-AS search: can `src` reach `st.dest()` while avoiding
/// `avoid`, under the given responder export policy and targeting
/// strategy? `enabled`, when given, marks which ASes have deployed MIRO
/// (the incremental-deployment experiment, section 5.3.3); others cannot
/// respond.
pub fn avoid_via_negotiation(
    st: &RoutingState<'_>,
    src: NodeId,
    avoid: NodeId,
    policy: ExportPolicy,
    strategy: TargetStrategy,
    enabled: Option<&[bool]>,
) -> AvoidOutcome {
    // Single-path check: does any ordinary BGP candidate at src avoid it?
    let single = st
        .candidates(src)
        .into_iter()
        .find(|c| !c.traverses(avoid));
    if let Some(route) = single {
        return AvoidOutcome {
            single_path_success: true,
            success: true,
            ases_contacted: 0,
            paths_received: 0,
            chosen: Some((src, route)),
        };
    }

    let mut contacted = 0;
    let mut received = 0;
    for responder in strategy.targets(st, src, Some(avoid)) {
        if let Some(mask) = enabled {
            if !mask[responder as usize] {
                continue; // not a MIRO speaker; cannot answer a pull request
            }
        }
        let toward = export_rel_toward(st, src, responder);
        let offers = policy.offers(st, responder, toward);
        contacted += 1;
        received += offers.len();
        let constraint = Constraint::AvoidAs(avoid);
        if let Some(best) = offers
            .iter()
            .filter(|o| constraint.admits(o))
            .min_by_key(|o| (o.route.class, o.route.len(), o.price))
        {
            return AvoidOutcome {
                single_path_success: false,
                success: true,
                ases_contacted: contacted,
                paths_received: received,
                chosen: Some((responder, best.route.clone())),
            };
        }
    }
    AvoidOutcome {
        single_path_success: false,
        success: false,
        ases_contacted: contacted,
        paths_received: received,
        chosen: None,
    }
}

/// Multi-hop negotiation (section 3.3): "In responding to a request, an
/// AS may also contact one or more downstream ASes to provide additional
/// paths. For example, AS B may ask AS C to advertise alternate paths as
/// part of satisfying the request from AS A, if C is not already
/// announcing a path that avoids AS E."
///
/// Runs the ordinary [`avoid_via_negotiation`] search first; when it
/// fails, each contacted responder recursively queries the ASes on *its
/// own* default path before the offending AS and re-offers composed
/// paths (its default segment up to the sub-responder, then the
/// sub-responder's alternate). One level of recursion — the paper
/// expects "an end-to-end path typically includes at most one tunnel",
/// and concatenations to be "so rare they can be precluded" beyond this.
pub fn avoid_via_multihop_negotiation(
    st: &RoutingState<'_>,
    src: NodeId,
    avoid: NodeId,
    policy: ExportPolicy,
    strategy: TargetStrategy,
    enabled: Option<&[bool]>,
) -> AvoidOutcome {
    let direct = avoid_via_negotiation(st, src, avoid, policy, strategy, enabled);
    if direct.success {
        return direct;
    }
    let topo = st.topology();
    let mut contacted = direct.ases_contacted;
    let mut received = direct.paths_received;
    let constraint = Constraint::AvoidAs(avoid);
    for responder in strategy.targets(st, src, Some(avoid)) {
        if let Some(mask) = enabled {
            if !mask[responder as usize] {
                continue;
            }
        }
        // The responder's own candidate set was exhausted by the direct
        // search; it now asks each of its *neighbors* for their
        // MIRO-only alternates (routes the neighbor holds but would never
        // export over plain BGP because they are not its best).
        let rel_src = export_rel_toward(st, src, responder);
        let responder_best = st.best(responder);
        for &(sub, rel_of_sub) in topo.neighbors(responder) {
            if sub == src || sub == st.dest() || sub == avoid {
                continue;
            }
            if let Some(mask) = enabled {
                if !mask[sub as usize] {
                    continue;
                }
            }
            // What the responder is to the sub-responder governs the
            // sub-export.
            let Some(toward) = topo.rel(sub, responder) else { continue };
            let offers = policy.offers(st, sub, toward);
            contacted += 1;
            received += offers.len();
            let composed_ok = |o: &Offer| {
                if !constraint.admits(o) {
                    return false;
                }
                // Class of the composed route as the responder would hold
                // it: one hop to the neighbor, then the alternate.
                let class = miro_bgp::route::ExportScope::received_class(
                    o.route.class,
                    rel_of_sub,
                );
                match policy {
                    ExportPolicy::Flexible => true,
                    ExportPolicy::RespectExport => {
                        miro_bgp::route::ExportScope::allows(class, rel_src)
                    }
                    ExportPolicy::Strict => {
                        responder_best.is_some_and(|b| b.class == class)
                            && miro_bgp::route::ExportScope::allows(class, rel_src)
                    }
                }
            };
            if let Some(best) = offers
                .iter()
                .filter(|o| composed_ok(o))
                .min_by_key(|o| (o.route.class, o.route.len(), o.price))
            {
                let mut path = Vec::with_capacity(best.route.len() + 1);
                path.push(sub);
                path.extend(best.route.path.iter().copied());
                let class = miro_bgp::route::ExportScope::received_class(
                    best.route.class,
                    rel_of_sub,
                );
                return AvoidOutcome {
                    single_path_success: false,
                    success: true,
                    ases_contacted: contacted,
                    paths_received: received,
                    chosen: Some((responder, CandidateRoute { path, class })),
                };
            }
        }
    }
    AvoidOutcome {
        ases_contacted: contacted,
        paths_received: received,
        ..direct
    }
}

/// Count the alternate routes available to `src` toward `st.dest()` under
/// one policy and strategy: its ordinary BGP candidates plus every
/// alternate each target would export (the Figure 5.2/5.3 metric).
pub fn count_available_routes(
    st: &RoutingState<'_>,
    src: NodeId,
    policy: ExportPolicy,
    strategy: TargetStrategy,
) -> usize {
    let base = st.candidates(src).len();
    let extra: usize = strategy
        .targets(st, src, None)
        .into_iter()
        .map(|r| {
            let toward = export_rel_toward(st, src, r);
            policy.offers(st, r, toward).len()
        })
        .sum();
    base + extra
}

/// Offers available from a single responder toward `src` (exposed for the
/// examples and the inbound-traffic-control experiment).
pub fn offers_from(
    st: &RoutingState<'_>,
    src: NodeId,
    responder: NodeId,
    policy: ExportPolicy,
) -> Vec<Offer> {
    let toward = export_rel_toward(st, src, responder);
    policy.offers(st, responder, toward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_bgp::solver::RoutingState;
    use miro_topology::gen::figure_1_1;

    #[test]
    fn figure_1_1_avoid_e_succeeds_via_b() {
        // The paper's running example: A wants to reach F avoiding E.
        // Default path is ABEF; both of A's candidates traverse E, so
        // single-path fails; negotiating with B (on path, before E)
        // surfaces BCF.
        let (t, [a, b, c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let out = avoid_via_negotiation(
            &st,
            a,
            e,
            ExportPolicy::RespectExport,
            TargetStrategy::OnPath,
            None,
        );
        assert!(!out.single_path_success);
        assert!(out.success);
        assert_eq!(out.ases_contacted, 1);
        assert_eq!(out.paths_received, 1);
        let (responder, route) = out.chosen.unwrap();
        assert_eq!(responder, b);
        assert_eq!(route.path, vec![c, f]);
    }

    #[test]
    fn figure_1_1_strict_policy_hides_the_alternate() {
        // B's best (BEF) is a customer route; BCF is a peer route, so the
        // strict policy keeps it hidden and A's avoid-E attempt fails.
        let (t, [a, _b, _c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let out = avoid_via_negotiation(
            &st,
            a,
            e,
            ExportPolicy::Strict,
            TargetStrategy::OnPath,
            None,
        );
        assert!(!out.success);
        assert_eq!(out.ases_contacted, 1);
        assert_eq!(out.paths_received, 0);
    }

    #[test]
    fn on_path_targets_stop_before_avoid_and_dest() {
        let (t, [a, b, _c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // A's default path is B E F.
        assert_eq!(TargetStrategy::OnPath.targets(&st, a, Some(e)), vec![b]);
        assert_eq!(TargetStrategy::OnPath.targets(&st, a, None), vec![b, e]);
        let _ = t;
    }

    #[test]
    fn one_hop_targets_are_sorted_neighbors() {
        let (t, [a, b, _c, d, _e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        assert_eq!(TargetStrategy::OneHop.targets(&st, a, None), vec![b, d]);
        let _ = t;
    }

    #[test]
    fn combined_strategy_deduplicates() {
        let (t, [a, b, _c, d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let ts = TargetStrategy::OnPathThenNeighbors.targets(&st, a, None);
        assert_eq!(ts, vec![b, e, d]);
        let _ = t;
    }

    #[test]
    fn export_rel_adjacent_and_on_path() {
        let (t, [a, b, c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // A is B's customer (adjacent).
        assert_eq!(export_rel_toward(&st, a, b), Rel::Customer);
        // E is on A's path, upstream neighbor is B; B is E's provider.
        assert_eq!(export_rel_toward(&st, a, e), Rel::Provider);
        // C is not adjacent to A and not on A's path: conservative peer.
        assert_eq!(export_rel_toward(&st, a, c), Rel::Peer);
    }

    #[test]
    fn incremental_mask_disables_responders() {
        let (t, [a, b, _c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let mut mask = vec![true; t.num_nodes()];
        mask[b as usize] = false; // B has not deployed MIRO
        let out = avoid_via_negotiation(
            &st,
            a,
            e,
            ExportPolicy::Flexible,
            TargetStrategy::OnPath,
            Some(&mask),
        );
        assert!(!out.success, "the only useful responder is disabled");
        assert_eq!(out.ases_contacted, 0);
    }

    #[test]
    fn single_path_success_short_circuits() {
        // D's default to F is DEF; alternate candidate DABEF? A's best
        // traverses B,E... craft simpler: B avoiding C: B's own candidates
        // include BEF which avoids C already.
        let (t, [_a, b, c, _d, _e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let out = avoid_via_negotiation(
            &st,
            b,
            c,
            ExportPolicy::Strict,
            TargetStrategy::OnPath,
            None,
        );
        assert!(out.single_path_success);
        assert!(out.success);
        assert_eq!(out.ases_contacted, 0);
    }

    /// Multi-hop topology: A-B-E-F is the default; B's only alternates
    /// also cross E; but B's customer C quietly holds C-G-F, which plain
    /// BGP never surfaces (it is not C's best). Multi-hop negotiation
    /// (B asks C) finds it.
    fn multihop_topology() -> miro_topology::Topology {
        let mut bld = miro_topology::TopologyBuilder::new();
        for n in 1..=6 {
            bld.add_as(miro_topology::AsId(n));
        }
        let id = miro_topology::AsId;
        bld.provider_customer(id(2), id(1)); // B provides A
        bld.provider_customer(id(2), id(4)); // B provides E
        bld.provider_customer(id(2), id(3)); // B provides C
        bld.provider_customer(id(3), id(4)); // C provides E
        bld.provider_customer(id(3), id(6)); // C provides G
        bld.provider_customer(id(4), id(5)); // E provides F
        bld.provider_customer(id(6), id(5)); // G provides F
        bld.build_checked(true).expect("valid hierarchy")
    }

    #[test]
    fn multihop_negotiation_finds_hidden_alternates() {
        let t = multihop_topology();
        let n = |x: u32| t.node(miro_topology::AsId(x)).unwrap();
        let (a, b, c, e, f, g) = (n(1), n(2), n(3), n(4), n(5), n(6));
        let st = RoutingState::solve(&t, f);
        assert_eq!(st.path(a), Some(vec![b, e, f]), "default crosses E");
        // Direct negotiation fails under every policy: B's whole candidate
        // set crosses E.
        for policy in ExportPolicy::ALL {
            let direct =
                avoid_via_negotiation(&st, a, e, policy, TargetStrategy::OnPath, None);
            assert!(!direct.success, "{policy:?} direct must fail");
        }
        // Multi-hop succeeds: B asks its customer C, which reveals CGF.
        let out = avoid_via_multihop_negotiation(
            &st,
            a,
            e,
            ExportPolicy::RespectExport,
            TargetStrategy::OnPath,
            None,
        );
        assert!(out.success);
        let (responder, route) = out.chosen.unwrap();
        assert_eq!(responder, b, "the tunnel is still with the on-path responder");
        assert_eq!(route.path, vec![c, g, f]);
        assert!(!route.traverses(e));
        assert!(out.ases_contacted >= 2, "direct contact plus sub-contact");
        // Strict also works here (the composed route is customer-class,
        // matching B's best class).
        let strict = avoid_via_multihop_negotiation(
            &st,
            a,
            e,
            ExportPolicy::Strict,
            TargetStrategy::OnPath,
            None,
        );
        assert!(strict.success);
    }

    #[test]
    fn multihop_is_a_superset_of_direct() {
        let t = miro_topology::GenParams::tiny(47).generate();
        let d = t.nodes().next().unwrap();
        let st = RoutingState::solve(&t, d);
        for src in t.nodes().step_by(7) {
            let Some(path) = st.path(src) else { continue };
            if path.len() < 2 {
                continue;
            }
            let avoid = path[path.len() / 2];
            if avoid == d {
                continue;
            }
            for policy in ExportPolicy::ALL {
                let direct =
                    avoid_via_negotiation(&st, src, avoid, policy, TargetStrategy::OnPath, None);
                let multi = avoid_via_multihop_negotiation(
                    &st,
                    src,
                    avoid,
                    policy,
                    TargetStrategy::OnPath,
                    None,
                );
                assert!(
                    !direct.success || multi.success,
                    "multi-hop can only add successes"
                );
                if let Some((_, route)) = &multi.chosen {
                    assert!(!route.traverses(avoid));
                }
            }
        }
    }

    #[test]
    fn route_counts_monotone_in_policy() {
        let t = miro_topology::GenParams::tiny(41).generate();
        let d = t.nodes().last().unwrap();
        let st = RoutingState::solve(&t, d);
        for src in t.nodes().step_by(9) {
            if src == d {
                continue;
            }
            let s = count_available_routes(&st, src, ExportPolicy::Strict, TargetStrategy::OnPath);
            let e = count_available_routes(
                &st,
                src,
                ExportPolicy::RespectExport,
                TargetStrategy::OnPath,
            );
            let a =
                count_available_routes(&st, src, ExportPolicy::Flexible, TargetStrategy::OnPath);
            assert!(s <= e && e <= a, "policy relaxation can only add routes");
        }
    }
}
