//! A deployable negotiation endpoint: the Figure 4.2 exchange as an
//! asynchronous state machine over the [`crate::wire`] byte encoding.
//!
//! [`crate::node::MiroNetwork`] resolves a negotiation synchronously,
//! which is right for experiments; a real deployment talks to a remote
//! AS over a transport that loses time and sometimes messages. This
//! endpoint mirrors `miro-bgp::speaker`: callers feed inbound bytes and a
//! virtual clock, drain outbound bytes, and observe state transitions —
//! including request timeouts with bounded retry, the responder's
//! admission checks, and post-establishment keepalive generation.

use crate::export::{ExportPolicy, Offer};
use crate::negotiate::{admissible, Constraint, Message, NegotiationId, RejectReason};
use crate::tunnel::{Tunnel, TunnelId, TunnelManager};
use crate::wire;
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Rel};

/// Requester-side negotiation state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestState {
    /// Request sent, waiting for offers.
    AwaitingOffers { retries_left: u8 },
    /// Accept sent, waiting for the tunnel id.
    AwaitingEstablish,
    /// Tunnel live.
    Established(TunnelId),
    /// Given up (rejected, timed out, or nothing acceptable).
    Failed(FailReason),
}

/// Terminal failure reasons on the requester side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailReason {
    Rejected(RejectReason),
    NoneAcceptable,
    TimedOut,
}

/// One in-flight request.
struct Pending {
    id: NegotiationId,
    dest: NodeId,
    constraints: Vec<Constraint>,
    budget: u32,
    state: RequestState,
    deadline: u64,
    /// Accepted offer index (for Accept retransmission).
    choice: Option<usize>,
    /// Retransmissions left across all phases.
    retries_left: u8,
}

/// The requester endpoint: opens negotiations toward one responder and
/// manages the resulting tunnels' keepalives.
pub struct RequesterEndpoint {
    next_id: u64,
    pending: Vec<Pending>,
    pub tunnels: TunnelManager,
    out: Vec<u8>,
    /// Request timeout (virtual ticks) and retry budget.
    pub timeout: u64,
    pub max_retries: u8,
    /// Keepalive period for established tunnels.
    pub keepalive_every: u64,
    last_keepalive: u64,
    responder: NodeId,
}

impl RequesterEndpoint {
    pub fn new(responder: NodeId) -> Self {
        RequesterEndpoint {
            next_id: 0,
            pending: Vec::new(),
            tunnels: TunnelManager::new(),
            out: Vec::new(),
            timeout: 30,
            max_retries: 2,
            keepalive_every: 10,
            last_keepalive: 0,
            responder,
        }
    }

    /// Open a negotiation; returns its id.
    pub fn request(
        &mut self,
        dest: NodeId,
        constraints: Vec<Constraint>,
        budget: u32,
        now: u64,
    ) -> NegotiationId {
        let id = NegotiationId(self.next_id);
        self.next_id += 1;
        let msg = Message::Request { id, dest, constraints: constraints.clone() };
        self.out.extend(wire::emit(&msg).expect("request encodes"));
        self.pending.push(Pending {
            id,
            dest,
            constraints,
            budget,
            state: RequestState::AwaitingOffers { retries_left: self.max_retries },
            deadline: now + self.timeout,
            choice: None,
            retries_left: self.max_retries,
        });
        id
    }

    /// Current state of a negotiation.
    pub fn state(&self, id: NegotiationId) -> Option<RequestState> {
        self.pending.iter().find(|p| p.id == id).map(|p| p.state)
    }

    /// Drain outbound bytes.
    pub fn output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Feed inbound bytes (whole or partial messages; unparseable input
    /// is dropped — the transport's checksums are the integrity layer).
    pub fn input(&mut self, bytes: &[u8], now: u64) {
        let mut at = 0;
        while at < bytes.len() {
            match wire::parse(&bytes[at..]) {
                Ok((msg, used)) => {
                    at += used;
                    self.handle(msg, now);
                }
                Err(_) => break,
            }
        }
    }

    fn handle(&mut self, msg: Message, now: u64) {
        match msg {
            Message::Offers { id, offers } => {
                let Some(p) = self.pending.iter_mut().find(|p| p.id == id) else { return };
                if !matches!(p.state, RequestState::AwaitingOffers { .. }) {
                    return;
                }
                // Re-check constraints locally (don't trust the responder)
                // and pick best within budget.
                let admissible_offers = admissible(&offers, &p.constraints);
                let budget = p.budget;
                let choice = admissible_offers
                    .iter()
                    .filter(|o| o.price <= budget)
                    .min_by_key(|o| (o.route.class, o.route.len(), o.price))
                    .and_then(|best| offers.iter().position(|o| o == best));
                match choice {
                    Some(c) => {
                        p.state = RequestState::AwaitingEstablish;
                        p.deadline = now + self.timeout;
                        p.choice = Some(c);
                        let msg = Message::Accept { id, choice: c };
                        self.out.extend(wire::emit(&msg).expect("accept encodes"));
                    }
                    None => p.state = RequestState::Failed(FailReason::NoneAcceptable),
                }
            }
            Message::Established { id, tunnel } => {
                let Some(p) = self.pending.iter_mut().find(|p| p.id == id) else { return };
                if p.state == RequestState::AwaitingEstablish {
                    p.state = RequestState::Established(tunnel);
                    self.tunnels.adopt(Tunnel {
                        id: tunnel,
                        peer: self.responder,
                        dest: p.dest,
                        path: Vec::new(), // learned paths live in the offer; the
                        // data plane keys on the id
                        price: 0,
                        last_heartbeat: now,
                    });
                }
            }
            Message::Reject { id, reason } => {
                if let Some(p) = self.pending.iter_mut().find(|p| p.id == id) {
                    p.state = RequestState::Failed(FailReason::Rejected(reason));
                }
            }
            Message::Teardown { tunnel } => {
                self.tunnels.teardown(tunnel);
                for p in &mut self.pending {
                    if p.state == RequestState::Established(tunnel) {
                        p.state = RequestState::Failed(FailReason::Rejected(
                            RejectReason::NoCandidates,
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    /// Advance time: retry or fail timed-out requests, emit keepalives.
    pub fn tick(&mut self, now: u64) {
        for i in 0..self.pending.len() {
            if now < self.pending[i].deadline {
                continue;
            }
            match self.pending[i].state {
                RequestState::AwaitingOffers { retries_left } if retries_left > 0 => {
                    let p = &mut self.pending[i];
                    p.state = RequestState::AwaitingOffers { retries_left: retries_left - 1 };
                    p.retries_left = retries_left - 1;
                    p.deadline = now + self.timeout;
                    let msg = Message::Request {
                        id: p.id,
                        dest: p.dest,
                        constraints: p.constraints.clone(),
                    };
                    self.out.extend(wire::emit(&msg).expect("request encodes"));
                }
                // A lost Accept or Established: retransmit the Accept (the
                // responder answers duplicates idempotently).
                RequestState::AwaitingEstablish if self.pending[i].retries_left > 0 => {
                    let p = &mut self.pending[i];
                    p.retries_left -= 1;
                    p.deadline = now + self.timeout;
                    let msg = Message::Accept {
                        id: p.id,
                        choice: p.choice.expect("accept state implies a choice"),
                    };
                    self.out.extend(wire::emit(&msg).expect("accept encodes"));
                }
                RequestState::AwaitingOffers { .. } | RequestState::AwaitingEstablish => {
                    self.pending[i].state = RequestState::Failed(FailReason::TimedOut);
                }
                _ => {}
            }
        }
        if now.saturating_sub(self.last_keepalive) >= self.keepalive_every {
            self.last_keepalive = now;
            let ids: Vec<TunnelId> = self.tunnels.iter().map(|t| t.id).collect();
            for id in ids {
                self.tunnels.keepalive(id, now);
                self.out.extend(
                    wire::emit(&Message::Keepalive { tunnel: id }).expect("keepalive encodes"),
                );
            }
        }
    }
}

/// The responder endpoint: answers requests out of a routing state under
/// an export policy, allocates tunnel ids, expires silent tunnels.
pub struct ResponderEndpoint<'t> {
    node: NodeId,
    policy: ExportPolicy,
    /// Export relationship assumed toward this requester (the transport
    /// identifies the peer; relationship comes from configuration).
    toward: Rel,
    pub max_tunnels: usize,
    pub tunnels: TunnelManager,
    pub tunnel_timeout: u64,
    out: Vec<u8>,
    /// Offers sent per negotiation (to honor Accept by index).
    offered: Vec<(NegotiationId, NodeId, Vec<Offer>)>,
    /// Already-granted negotiations (duplicate Accepts are re-answered
    /// with the same tunnel id, not rejected — retransmission safety).
    granted: Vec<(NegotiationId, TunnelId)>,
    st: &'t RoutingState<'t>,
}

impl<'t> ResponderEndpoint<'t> {
    pub fn new(node: NodeId, st: &'t RoutingState<'t>, policy: ExportPolicy, toward: Rel) -> Self {
        ResponderEndpoint {
            node,
            policy,
            toward,
            max_tunnels: 1000,
            tunnels: TunnelManager::new(),
            tunnel_timeout: 30,
            out: Vec::new(),
            offered: Vec::new(),
            granted: Vec::new(),
            st,
        }
    }

    pub fn output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    pub fn input(&mut self, bytes: &[u8], now: u64) {
        let mut at = 0;
        while at < bytes.len() {
            match wire::parse(&bytes[at..]) {
                Ok((msg, used)) => {
                    at += used;
                    self.handle(msg, now);
                }
                Err(_) => break,
            }
        }
    }

    fn send(&mut self, msg: &Message) {
        self.out.extend(wire::emit(msg).expect("responder messages encode"));
    }

    fn handle(&mut self, msg: Message, now: u64) {
        match msg {
            Message::Request { id, dest, constraints } => {
                // Duplicate of an already-granted negotiation: replay.
                if let Some(&(_, tid)) = self.granted.iter().find(|(g, _)| *g == id) {
                    self.send(&Message::Established { id, tunnel: tid });
                    return;
                }
                if dest != self.st.dest() {
                    // One state per destination in this endpoint; a real
                    // deployment shards by prefix.
                    self.send(&Message::Reject { id, reason: RejectReason::NoCandidates });
                    return;
                }
                if self.tunnels.len() >= self.max_tunnels {
                    self.send(&Message::Reject { id, reason: RejectReason::TunnelLimit });
                    return;
                }
                let offers =
                    admissible(&self.policy.offers(self.st, self.node, self.toward), &constraints);
                if offers.is_empty() {
                    self.send(&Message::Reject { id, reason: RejectReason::NoCandidates });
                    return;
                }
                // Idempotent re-offer on duplicate/retried requests.
                self.offered.retain(|(oid, _, _)| *oid != id);
                self.offered.push((id, dest, offers.clone()));
                self.send(&Message::Offers { id, offers });
            }
            Message::Accept { id, choice } => {
                // Retransmitted Accept for a granted negotiation: replay
                // the Established instead of rejecting.
                if let Some(&(_, tid)) = self.granted.iter().find(|(g, _)| *g == id) {
                    self.send(&Message::Established { id, tunnel: tid });
                    return;
                }
                let Some(pos) = self.offered.iter().position(|(oid, _, _)| *oid == id) else {
                    self.send(&Message::Reject { id, reason: RejectReason::BadChoice });
                    return;
                };
                let (_, dest, offers) = self.offered.remove(pos);
                let Some(offer) = offers.get(choice) else {
                    self.send(&Message::Reject { id, reason: RejectReason::BadChoice });
                    return;
                };
                let tid = self.tunnels.establish(
                    self.node, // peer unknown at this layer; transport-scoped
                    dest,
                    offer.route.path.clone(),
                    offer.price,
                    now,
                );
                self.granted.push((id, tid));
                self.send(&Message::Established { id, tunnel: tid });
            }
            Message::Keepalive { tunnel } => {
                self.tunnels.keepalive(tunnel, now);
            }
            Message::Teardown { tunnel } => {
                self.tunnels.teardown(tunnel);
            }
            _ => {}
        }
    }

    /// Expire silent tunnels (the soft-state sweep); emits Teardown for
    /// each so the far side learns.
    pub fn tick(&mut self, now: u64) {
        for id in self.tunnels.expire(now, self.tunnel_timeout) {
            self.send(&Message::Teardown { tunnel: id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::figure_1_1;

    fn world() -> (miro_topology::Topology, [NodeId; 6]) {
        figure_1_1()
    }

    #[test]
    fn wire_level_negotiation_end_to_end() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let mut req = RequesterEndpoint::new(b);
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::RespectExport, Rel::Customer);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        // Transport: requester -> responder -> requester.
        resp.input(&req.output(), 0);
        req.input(&resp.output(), 0);
        // Offers arrived; accept went out; deliver it.
        resp.input(&req.output(), 1);
        req.input(&resp.output(), 1);
        match req.state(id) {
            Some(RequestState::Established(tid)) => {
                assert!(req.tunnels.get(tid).is_some());
                assert!(resp.tunnels.get(tid).is_some());
            }
            other => panic!("expected established, got {other:?}"),
        }
    }

    #[test]
    fn lost_request_is_retried_then_times_out() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let _ = &st;
        let mut req = RequesterEndpoint::new(b);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        let first = req.output();
        assert!(!first.is_empty());
        // The transport eats everything. Timeout -> retry (twice) -> fail.
        req.tick(30);
        assert!(!req.output().is_empty(), "first retry");
        assert_eq!(
            req.state(id),
            Some(RequestState::AwaitingOffers { retries_left: 1 })
        );
        req.tick(60);
        assert!(!req.output().is_empty(), "second retry");
        req.tick(90);
        assert_eq!(req.state(id), Some(RequestState::Failed(FailReason::TimedOut)));
    }

    #[test]
    fn duplicate_requests_are_idempotent_at_the_responder() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let mut req = RequesterEndpoint::new(b);
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::RespectExport, Rel::Customer);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        let request_bytes = req.output();
        // The request arrives twice (retry raced the response).
        resp.input(&request_bytes, 0);
        let first_offers = resp.output();
        resp.input(&request_bytes, 1);
        let second_offers = resp.output();
        assert!(!first_offers.is_empty() && !second_offers.is_empty());
        // The requester processes one response; the duplicate is ignored
        // (its state machine has moved on).
        req.input(&first_offers, 2);
        req.input(&second_offers, 2);
        resp.input(&req.output(), 3);
        req.input(&resp.output(), 3);
        assert!(matches!(req.state(id), Some(RequestState::Established(_))));
        assert_eq!(resp.tunnels.len(), 1, "exactly one tunnel despite the dup");
    }

    #[test]
    fn responder_rejections_reach_the_requester() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let mut req = RequesterEndpoint::new(b);
        // Strict policy: B has no same-class alternates (see export tests).
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::Strict, Rel::Customer);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        resp.input(&req.output(), 0);
        req.input(&resp.output(), 0);
        assert_eq!(
            req.state(id),
            Some(RequestState::Failed(FailReason::Rejected(RejectReason::NoCandidates)))
        );
    }

    #[test]
    fn keepalives_keep_the_responder_side_alive_and_silence_kills() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let mut req = RequesterEndpoint::new(b);
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::RespectExport, Rel::Customer);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        resp.input(&req.output(), 0);
        req.input(&resp.output(), 0);
        resp.input(&req.output(), 0);
        req.input(&resp.output(), 0);
        assert!(matches!(req.state(id), Some(RequestState::Established(_))));
        // Healthy: keepalives flow every 10 ticks.
        for now in [10u64, 20, 30, 40] {
            req.tick(now);
            resp.input(&req.output(), now);
            resp.tick(now);
        }
        assert_eq!(resp.tunnels.len(), 1);
        // Silence: the requester stops; the responder reaps at timeout and
        // notifies; the requester tears its side down on the Teardown.
        resp.tick(100);
        let teardown = resp.output();
        assert!(!teardown.is_empty());
        req.input(&teardown, 100);
        assert_eq!(resp.tunnels.len(), 0);
        assert!(req.tunnels.is_empty());
    }

    #[test]
    fn budget_filtering_happens_requester_side_too() {
        let (t, [_a, b, _c, _d, e, f]) = world();
        let st = RoutingState::solve(&t, f);
        let mut req = RequesterEndpoint::new(b);
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::RespectExport, Rel::Customer);
        // Budget below the 180 peer-route price.
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 100, 0);
        resp.input(&req.output(), 0);
        req.input(&resp.output(), 0);
        assert_eq!(req.state(id), Some(RequestState::Failed(FailReason::NoneAcceptable)));
        assert!(resp.tunnels.is_empty());
    }
}
