//! Wire encoding of the MIRO control-plane messages (Figure 4.2).
//!
//! The dissertation runs negotiations over "a persistent TCP connection"
//! just like BGP (the RCP variant of section 4.1 centralizes the
//! endpoint, not the protocol), so a deployable implementation needs a
//! concrete message encoding. Format, in the BGP style:
//!
//! ```text
//!   0      3 4       5 6      7 8
//!   +-------+---------+--------+----
//!   | MIRO  | version | type   | length (u16, total) | body...
//!   +-------+---------+--------+----
//! ```
//!
//! AS paths travel as 32-bit AS numbers (MIRO postdates 16-bit
//! exhaustion; the BGP compatibility constraints of `miro-bgp::wire` do
//! not apply to MIRO's own channel).

use crate::export::Offer;
use crate::negotiate::{Constraint, Message, NegotiationId, RejectReason};
use crate::tunnel::TunnelId;
use miro_bgp::route::CandidateRoute;
use miro_topology::RouteClass;

const MAGIC: &[u8; 4] = b"MIRO";
const VERSION: u8 = 1;
/// Fixed header: magic + version + type + length.
pub const HEADER_LEN: usize = 8;

/// Decode errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MiroWireError {
    Truncated,
    BadMagic,
    BadVersion(u8),
    BadType(u8),
    Malformed(&'static str),
    /// A length field exceeds the encodable range.
    Overflow(&'static str),
}

impl std::fmt::Display for MiroWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiroWireError::Truncated => write!(f, "truncated message"),
            MiroWireError::BadMagic => write!(f, "bad magic"),
            MiroWireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            MiroWireError::BadType(t) => write!(f, "unknown message type {t}"),
            MiroWireError::Malformed(w) => write!(f, "malformed {w}"),
            MiroWireError::Overflow(w) => write!(f, "{w} too large to encode"),
        }
    }
}

impl std::error::Error for MiroWireError {}

fn class_tag(c: RouteClass) -> u8 {
    match c {
        RouteClass::Customer => 0,
        RouteClass::Peer => 1,
        RouteClass::Provider => 2,
    }
}

fn class_from(t: u8) -> Result<RouteClass, MiroWireError> {
    match t {
        0 => Ok(RouteClass::Customer),
        1 => Ok(RouteClass::Peer),
        2 => Ok(RouteClass::Provider),
        _ => Err(MiroWireError::Malformed("route class")),
    }
}

/// Encode one control message.
pub fn emit(msg: &Message) -> Result<Vec<u8>, MiroWireError> {
    let mut body = Vec::new();
    let ty: u8 = match msg {
        Message::Request { id, dest, constraints } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            body.extend_from_slice(&dest.to_be_bytes());
            let n: u16 = constraints
                .len()
                .try_into()
                .map_err(|_| MiroWireError::Overflow("constraint count"))?;
            body.extend_from_slice(&n.to_be_bytes());
            for c in constraints {
                match *c {
                    Constraint::AvoidAs(x) => {
                        body.push(0);
                        body.extend_from_slice(&x.to_be_bytes());
                    }
                    Constraint::MaxLen(l) => {
                        body.push(1);
                        let l: u16 = l
                            .try_into()
                            .map_err(|_| MiroWireError::Overflow("max length"))?;
                        body.extend_from_slice(&l.to_be_bytes());
                    }
                    Constraint::MaxPrice(p) => {
                        body.push(2);
                        body.extend_from_slice(&p.to_be_bytes());
                    }
                }
            }
            1
        }
        Message::Offers { id, offers } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            let n: u16 = offers
                .len()
                .try_into()
                .map_err(|_| MiroWireError::Overflow("offer count"))?;
            body.extend_from_slice(&n.to_be_bytes());
            for o in offers {
                body.extend_from_slice(&o.price.to_be_bytes());
                body.push(class_tag(o.route.class));
                let len: u8 = o
                    .route
                    .path
                    .len()
                    .try_into()
                    .map_err(|_| MiroWireError::Overflow("path length"))?;
                body.push(len);
                for &hop in &o.route.path {
                    body.extend_from_slice(&hop.to_be_bytes());
                }
            }
            2
        }
        Message::Accept { id, choice } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            let c: u16 = (*choice)
                .try_into()
                .map_err(|_| MiroWireError::Overflow("choice"))?;
            body.extend_from_slice(&c.to_be_bytes());
            3
        }
        Message::Established { id, tunnel } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            body.extend_from_slice(&tunnel.0.to_be_bytes());
            4
        }
        Message::Reject { id, reason } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            body.push(match reason {
                RejectReason::TunnelLimit => 0,
                RejectReason::NotAllowed => 1,
                RejectReason::NoCandidates => 2,
                RejectReason::BadChoice => 3,
            });
            5
        }
        Message::Keepalive { tunnel } => {
            body.extend_from_slice(&tunnel.0.to_be_bytes());
            6
        }
        Message::Teardown { tunnel } => {
            body.extend_from_slice(&tunnel.0.to_be_bytes());
            7
        }
        Message::Ack { id } => {
            body.extend_from_slice(&id.0.to_be_bytes());
            8
        }
    };
    let total = HEADER_LEN + body.len();
    let total16: u16 =
        total.try_into().map_err(|_| MiroWireError::Overflow("message"))?;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(ty);
    out.extend_from_slice(&total16.to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MiroWireError> {
        if self.at + n > self.data.len() {
            return Err(MiroWireError::Truncated);
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, MiroWireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, MiroWireError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, MiroWireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, MiroWireError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes(s.try_into().expect("length checked")))
    }
    fn done(&self) -> bool {
        self.at == self.data.len()
    }
}

/// Decode one control message from the front of `data`; returns it and
/// the bytes consumed.
pub fn parse(data: &[u8]) -> Result<(Message, usize), MiroWireError> {
    if data.len() < HEADER_LEN {
        return Err(MiroWireError::Truncated);
    }
    if &data[..4] != MAGIC {
        return Err(MiroWireError::BadMagic);
    }
    if data[4] != VERSION {
        return Err(MiroWireError::BadVersion(data[4]));
    }
    let ty = data[5];
    let total = u16::from_be_bytes([data[6], data[7]]) as usize;
    if total < HEADER_LEN {
        return Err(MiroWireError::Malformed("length field"));
    }
    if data.len() < total {
        return Err(MiroWireError::Truncated);
    }
    let mut r = Reader { data: &data[HEADER_LEN..total], at: 0 };
    let msg = match ty {
        1 => {
            let id = NegotiationId(r.u64()?);
            let dest = r.u32()?;
            let n = r.u16()?;
            let mut constraints = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let tag = r.u8()?;
                constraints.push(match tag {
                    0 => Constraint::AvoidAs(r.u32()?),
                    1 => Constraint::MaxLen(r.u16()? as usize),
                    2 => Constraint::MaxPrice(r.u32()?),
                    _ => return Err(MiroWireError::Malformed("constraint tag")),
                });
            }
            Message::Request { id, dest, constraints }
        }
        2 => {
            let id = NegotiationId(r.u64()?);
            let n = r.u16()?;
            let mut offers = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let price = r.u32()?;
                let class = class_from(r.u8()?)?;
                let len = r.u8()? as usize;
                let mut path = Vec::with_capacity(len);
                for _ in 0..len {
                    path.push(r.u32()?);
                }
                offers.push(Offer { route: CandidateRoute { path, class }, price });
            }
            Message::Offers { id, offers }
        }
        3 => Message::Accept { id: NegotiationId(r.u64()?), choice: r.u16()? as usize },
        4 => Message::Established {
            id: NegotiationId(r.u64()?),
            tunnel: TunnelId(r.u32()?),
        },
        5 => {
            let id = NegotiationId(r.u64()?);
            let reason = match r.u8()? {
                0 => RejectReason::TunnelLimit,
                1 => RejectReason::NotAllowed,
                2 => RejectReason::NoCandidates,
                3 => RejectReason::BadChoice,
                _ => return Err(MiroWireError::Malformed("reject reason")),
            };
            Message::Reject { id, reason }
        }
        6 => Message::Keepalive { tunnel: TunnelId(r.u32()?) },
        7 => Message::Teardown { tunnel: TunnelId(r.u32()?) },
        8 => Message::Ack { id: NegotiationId(r.u64()?) },
        t => return Err(MiroWireError::BadType(t)),
    };
    if !r.done() {
        return Err(MiroWireError::Malformed("trailing bytes"));
    }
    Ok((msg, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Request {
                id: NegotiationId(42),
                dest: 7,
                constraints: vec![
                    Constraint::AvoidAs(312),
                    Constraint::MaxLen(5),
                    Constraint::MaxPrice(250),
                ],
            },
            Message::Offers {
                id: NegotiationId(42),
                offers: vec![
                    Offer {
                        route: CandidateRoute {
                            path: vec![3, 6, 7],
                            class: RouteClass::Peer,
                        },
                        price: 180,
                    },
                    Offer {
                        route: CandidateRoute { path: vec![], class: RouteClass::Customer },
                        price: 0,
                    },
                ],
            },
            Message::Accept { id: NegotiationId(42), choice: 1 },
            Message::Established { id: NegotiationId(42), tunnel: TunnelId(7) },
            Message::Reject { id: NegotiationId(9), reason: RejectReason::NoCandidates },
            Message::Keepalive { tunnel: TunnelId(7) },
            Message::Teardown { tunnel: TunnelId(7) },
            Message::Ack { id: NegotiationId(42) },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for m in samples() {
            let bytes = emit(&m).expect("encodes");
            let (parsed, used) = parse(&bytes).expect("own output parses");
            assert_eq!(parsed, m);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn stream_of_messages_reassembles() {
        let mut stream = Vec::new();
        for m in samples() {
            stream.extend(emit(&m).expect("encodes"));
        }
        let mut at = 0;
        let mut count = 0;
        while at < stream.len() {
            let (_, used) = parse(&stream[at..]).expect("parses in sequence");
            at += used;
            count += 1;
        }
        assert_eq!(count, samples().len());
    }

    #[test]
    fn header_violations_rejected() {
        let bytes = emit(&Message::Keepalive { tunnel: TunnelId(1) }).unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(parse(&bad).unwrap_err(), MiroWireError::BadMagic);
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(parse(&bad).unwrap_err(), MiroWireError::BadVersion(9));
        let mut bad = bytes.clone();
        bad[5] = 99;
        assert_eq!(parse(&bad).unwrap_err(), MiroWireError::BadType(99));
        assert_eq!(parse(&bytes[..4]).unwrap_err(), MiroWireError::Truncated);
    }

    #[test]
    fn truncated_bodies_rejected() {
        for m in samples() {
            let bytes = emit(&m).unwrap();
            for cut in HEADER_LEN..bytes.len() {
                // Shortened buffer with the original length field: must be
                // Truncated, never a panic or a wrong parse.
                assert_eq!(
                    parse(&bytes[..cut]).unwrap_err(),
                    MiroWireError::Truncated,
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_within_length_rejected() {
        let mut bytes = emit(&Message::Accept { id: NegotiationId(1), choice: 0 }).unwrap();
        // Grow the length field past the real body.
        bytes.push(0xee);
        let total = bytes.len() as u16;
        bytes[6..8].copy_from_slice(&total.to_be_bytes());
        assert_eq!(
            parse(&bytes).unwrap_err(),
            MiroWireError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn bad_enum_tags_rejected() {
        // Corrupt the constraint tag of a Request.
        let m = Message::Request {
            id: NegotiationId(1),
            dest: 2,
            constraints: vec![Constraint::AvoidAs(3)],
        };
        let mut bytes = emit(&m).unwrap();
        let tag_at = HEADER_LEN + 8 + 4 + 2;
        bytes[tag_at] = 7;
        assert_eq!(
            parse(&bytes).unwrap_err(),
            MiroWireError::Malformed("constraint tag")
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        for seed in 0u8..100 {
            let data: Vec<u8> =
                (0..48).map(|i| seed.wrapping_mul(37).wrapping_add(i * 3)).collect();
            let _ = parse(&data);
        }
    }
}
