//! MIRO: multi-path interdomain routing (the paper's primary contribution).
//!
//! MIRO keeps BGP's path-vector default routes and adds, on top (Chapter 3):
//!
//! * **pull-based supplemental route retrieval** - an AS that is unhappy
//!   with its default path *asks* another AS for alternates instead of
//!   having every alternate flooded to everyone (section 3.2);
//! * **bilateral negotiation** between arbitrary - not necessarily
//!   adjacent - AS pairs (section 3.3), implemented as an explicit
//!   request/offer/accept/establish state machine ([`negotiate`],
//!   Figure 4.2);
//! * **selective export**: the responding AS controls which alternates it
//!   reveals (section 3.4). The three policy levels studied by the
//!   evaluation - strict `/s`, respect-export `/e`, most-flexible `/a` -
//!   are [`export::ExportPolicy`];
//! * **tunnels** bound to negotiated paths in the data plane
//!   (section 3.5), managed as soft state with keepalives and torn down on
//!   route changes (section 4.3) by [`tunnel::TunnelManager`]. (The actual
//!   packet encapsulation lives in `miro-dataplane`.)
//!
//! [`strategy`] hosts the requester side: whom to ask (on-path vs 1-hop,
//! section 6.2.1) and the avoid-AS search loop whose success rates are
//! Table 5.2. [`node`] wires everything into a small control-plane
//! message-passing harness with a virtual clock — over a perfect channel.
//! [`chan`] provides the seeded unreliable channel (drop / duplicate /
//! reorder / delay) and [`reliable`] reruns the Figure-4.2 handshake over
//! it with sequence numbers, retransmit/backoff timers, duplicate-safe
//! handlers, and graceful fallback to the BGP default path.

pub mod chan;
pub mod config;
pub mod endpoint;
pub mod export;
pub mod negotiate;
pub mod node;
pub mod reliable;
pub mod rto;
pub mod strategy;
pub mod tunnel;
pub mod wire;

pub use chan::{ChannelStats, Envelope, FaultConfig, FaultyChannel};
pub use config::ConfigError;
pub use export::{ExportPolicy, Offer};
pub use negotiate::{Constraint, NegotiationError, NegotiationId};
pub use reliable::{
    FailReason, FallbackEvent, NegotiationOutcome, ReliabilityConfig, ReliableNet, RtoMode,
    RtoSnapshot, Stage,
};
pub use rto::RtoEstimator;
pub use strategy::{AvoidOutcome, TargetStrategy};
pub use tunnel::{TunnelId, TunnelManager};
