//! Property-based tests for the reliability layer: under arbitrary
//! duplication, reordering, and delay (but no loss), every negotiation
//! completes, no negotiation ever owns two tunnels, and the requester and
//! responder tunnel tables agree at quiescence.
//!
//! Loss is excluded from the *completion* property on purpose: with
//! `drop_permille: 0` retries cannot exhaust, so completion is a *hard*
//! invariant rather than a probability; the lossy regimes are covered by
//! seeded unit tests in `miro_core::reliable` and the `miro resilience`
//! sweep. The crash-restart property below does include loss — its
//! invariants (ledger/table agreement, zero orphans) must hold whether or
//! not any individual re-negotiation survives.

use miro_bgp::solver::RoutingState;
use miro_core::chan::FaultConfig;
use miro_core::negotiate::Constraint;
use miro_core::reliable::ReliableNet;
use miro_topology::gen::figure_1_1;
use proptest::prelude::*;

proptest! {
    /// Duplicate/reorder-safety: two concurrent negotiations toward the
    /// same destination settle into exactly one tunnel each, with both
    /// endpoint tables holding exactly the leases in the ledger.
    #[test]
    fn duplication_and_reordering_never_corrupt_state(
        seed in 0u64..300,
        dup in 0u32..501,
        reorder in 0u32..501,
        delay_max in 0u64..5,
    ) {
        let (t, [a, b, _c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let fault = FaultConfig {
            drop_permille: 0,
            dup_permille: dup,
            reorder_permille: reorder,
            delay_min: 0,
            delay_max,
        };
        let mut net = ReliableNet::new(&t, fault, seed);
        // The two pairs that negotiate successfully in Figure 1.1 toward
        // f, both against the same responder so its table sees
        // interleaved (and possibly duplicated/reordered) sessions.
        let id_a = net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        let id_d = net.start(&st, e, b, vec![], 250).unwrap();
        let ticks = net.run_until_settled(&st, 3_000);
        prop_assert!(net.handshakes_settled(), "must settle, took {} ticks", ticks);

        // With zero loss nothing can exhaust: both handshakes complete.
        prop_assert_eq!(net.outcomes().len(), 2);
        for out in net.outcomes() {
            prop_assert!(out.result.is_ok(), "no-loss channel cannot fail: {:?}", out);
        }
        prop_assert!(net.fallbacks().is_empty());
        prop_assert_eq!(net.double_establish_count(), 0);

        // The ledger holds exactly one lease per negotiation...
        prop_assert_eq!(net.leases().len(), 2);
        let tid_a = net.outcomes().iter().find(|o| o.id == id_a).unwrap().result.unwrap();
        let tid_d = net.outcomes().iter().find(|o| o.id == id_d).unwrap().result.unwrap();
        prop_assert_ne!(tid_a, tid_d, "responder allocates distinct ids");

        // ...and requester/responder tables agree at quiescence: each
        // requester holds its tunnel, the responder holds both, and the
        // paired records match on peer, path, and price.
        prop_assert_eq!(net.tunnels(a).len(), 1);
        prop_assert_eq!(net.tunnels(e).len(), 1);
        prop_assert_eq!(net.tunnels(b).len(), 2);
        for (req, tid) in [(a, tid_a), (e, tid_d)] {
            let up = net.tunnels(req).get(tid).expect("requester side holds the tunnel");
            let down = net.tunnels(b).get(tid).expect("responder side holds the tunnel");
            prop_assert_eq!(up.peer, b);
            prop_assert_eq!(down.peer, req);
            prop_assert_eq!(&up.path, &down.path);
            prop_assert_eq!(up.price, down.price);
        }
        // The negotiated constraint is honored end to end.
        prop_assert!(
            !net.tunnels(a).get(tid_a).unwrap().path.contains(&e),
            "AvoidAs constraint honored"
        );
    }

    /// Crash-restart safety under arbitrary faults (loss included): after
    /// the shared responder loses all soft state, keepalive-death
    /// detection plus paced re-negotiation must drain to quiescence with
    /// zero orphaned tunnels, no double-established negotiations, and the
    /// lease ledger in exact agreement with both endpoint tables — no
    /// tunnel anywhere may reference a session the restarted process no
    /// longer knows about.
    #[test]
    fn crash_restart_never_leaves_orphans_or_dead_session_refs(
        seed in 0u64..200,
        drop in 0u32..301,
        dup in 0u32..301,
        reorder in 0u32..301,
        delay_max in 0u64..4,
    ) {
        let (t, [a, b, _c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let fault = FaultConfig {
            drop_permille: drop,
            dup_permille: dup,
            reorder_permille: reorder,
            delay_min: 0,
            delay_max,
        };
        let mut net = ReliableNet::new(&t, fault, seed);
        net.start(&st, a, b, vec![Constraint::AvoidAs(e)], 250).unwrap();
        net.start(&st, e, b, vec![], 250).unwrap();
        net.run_until_settled(&st, 5_000);

        // The responder's process restarts: every tunnel it held is gone,
        // but its peers still hold theirs and keep heartbeating.
        net.crash_restart(b);
        // Detection runs over the still-faulty channel for a while...
        for _ in 0..100 {
            net.tick(&st);
        }
        // ...then the channel heals. Tick through several keepalive
        // rounds explicitly (quiescence alone does not wait for the next
        // heartbeat interval), then drain the recovery machinery.
        net.set_fault(FaultConfig::PERFECT);
        for _ in 0..200 {
            net.tick(&st);
        }
        net.run_until_quiescent(&st, 20_000);
        prop_assert!(net.quiescent(), "recovery machinery must drain");

        prop_assert_eq!(net.orphan_count(), 0, "no one-sided tunnels at quiescence");
        prop_assert_eq!(net.double_establish_count(), 0);

        // Ledger <-> table agreement: every lease is held by both sides
        // with matching records...
        for l in net.leases() {
            let up = net.tunnels(l.upstream).get(l.id);
            let down = net.tunnels(l.downstream).get(l.id);
            prop_assert!(up.is_some() && down.is_some(), "lease {:?} one-sided", l.id);
            let (up, down) = (up.unwrap(), down.unwrap());
            prop_assert_eq!(up.peer, l.downstream);
            prop_assert_eq!(down.peer, l.upstream);
            prop_assert_eq!(&up.path, &down.path);
            prop_assert_eq!(up.price, down.price);
        }
        // ...and every live tunnel anywhere is backed by a lease: the
        // only nodes that can hold tunnels are the two requesters and the
        // responder, and each lease accounts for exactly two records.
        let live: usize = [a, b, e].iter().map(|&n| net.tunnels(n).len()).sum();
        prop_assert_eq!(
            live,
            2 * net.leases().len(),
            "a tunnel outlived its session (dead-session reference)"
        );
    }
}
