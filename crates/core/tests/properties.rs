//! Property-based tests for the MIRO core: export-policy lattice
//! invariants, negotiation outcomes, and tunnel-manager state machine
//! soundness under arbitrary operation sequences.

use miro_bgp::solver::RoutingState;
use miro_core::export::ExportPolicy;
use miro_core::strategy::{avoid_via_negotiation, count_available_routes, TargetStrategy};
use miro_core::tunnel::TunnelManager;
use miro_topology::{GenParams, Rel};
use proptest::prelude::*;

proptest! {
    /// The export lattice /s ⊆ /e ⊆ /a holds for every responder, every
    /// destination, every requester relationship, on arbitrary seeds.
    #[test]
    fn export_policies_form_a_lattice(seed in 0u64..150, dsel in 0usize..50) {
        let t = GenParams::tiny(seed).generate();
        let nodes: Vec<_> = t.nodes().collect();
        let d = nodes[dsel % nodes.len()];
        let st = RoutingState::solve(&t, d);
        for r in t.nodes().step_by(11) {
            for toward in [Rel::Customer, Rel::Peer, Rel::Provider, Rel::Sibling] {
                let s = ExportPolicy::Strict.offers(&st, r, toward);
                let e = ExportPolicy::RespectExport.offers(&st, r, toward);
                let a = ExportPolicy::Flexible.offers(&st, r, toward);
                for o in &s {
                    prop_assert!(e.contains(o));
                }
                for o in &e {
                    prop_assert!(a.contains(o));
                }
                // Offers never include the responder's own best path.
                if let Some(best) = st.path(r) {
                    for o in &a {
                        prop_assert_ne!(&o.route.path, &best);
                    }
                }
            }
        }
    }

    /// Negotiated avoid-AS routes actually avoid the AS, and outcome
    /// success is monotone in both policy strength and deployment.
    #[test]
    fn avoid_outcomes_are_sound_and_monotone(seed in 0u64..100, pick in 0usize..200) {
        let t = GenParams::tiny(seed).generate();
        let nodes: Vec<_> = t.nodes().collect();
        let d = nodes[pick % nodes.len()];
        let st = RoutingState::solve(&t, d);
        let src = nodes[(pick * 7 + 3) % nodes.len()];
        let Some(path) = st.path(src) else { return Ok(()) };
        if path.len() < 2 { return Ok(()); }
        let avoid = path[path.len() / 2];
        if avoid == d || avoid == src { return Ok(()); }
        let mut results = Vec::new();
        for policy in ExportPolicy::ALL {
            let out = avoid_via_negotiation(&st, src, avoid, policy, TargetStrategy::OnPath, None);
            if let Some((_, route)) = &out.chosen {
                prop_assert!(!route.traverses(avoid), "chosen route violates constraint");
            }
            results.push(out.success);
        }
        prop_assert!(!results[0] || results[1], "strict ⊆ export success");
        prop_assert!(!results[1] || results[2], "export ⊆ flexible success");
        // Disabling everyone kills negotiated (non-single-path) success.
        let none = vec![false; t.num_nodes()];
        let dead = avoid_via_negotiation(
            &st, src, avoid, ExportPolicy::Flexible, TargetStrategy::OnPath, Some(&none));
        prop_assert_eq!(dead.success, dead.single_path_success);
    }

    /// Route counts are monotone in policy and consistent across
    /// strategies: the combined strategy sees at least as many routes as
    /// either component.
    #[test]
    fn route_counts_monotone(seed in 0u64..100) {
        let t = GenParams::tiny(seed).generate();
        let d = t.nodes().last().expect("non-empty");
        let st = RoutingState::solve(&t, d);
        for src in t.nodes().step_by(13) {
            if src == d { continue; }
            let on = count_available_routes(&st, src, ExportPolicy::Flexible, TargetStrategy::OnPath);
            let hop = count_available_routes(&st, src, ExportPolicy::Flexible, TargetStrategy::OneHop);
            let both = count_available_routes(
                &st, src, ExportPolicy::Flexible, TargetStrategy::OnPathThenNeighbors);
            prop_assert!(both >= on);
            prop_assert!(both >= hop);
            let s = count_available_routes(&st, src, ExportPolicy::Strict, TargetStrategy::OnPath);
            prop_assert!(s <= on);
        }
    }

    /// Tunnel-manager state machine: after an arbitrary sequence of
    /// establish / keepalive / expire / teardown operations, the live set
    /// and the teardown history are consistent (no double-free, no lost
    /// tunnels, live + torn == established).
    #[test]
    fn tunnel_manager_state_machine(ops in proptest::collection::vec((0u8..4, 0u32..8, 0u64..100), 1..60)) {
        let mut m = TunnelManager::new();
        let mut established = 0usize;
        let mut ids = Vec::new();
        for (op, sel, time) in ops {
            match op {
                0 => {
                    let id = m.establish(1, 9, vec![2, 9], 0, time);
                    prop_assert!(!ids.contains(&id), "id reuse");
                    ids.push(id);
                    established += 1;
                }
                1 => {
                    if let Some(&id) = ids.get(sel as usize % ids.len().max(1)) {
                        let _ = m.keepalive(id, time);
                    }
                }
                2 => {
                    let _ = m.expire(time, 10);
                }
                _ => {
                    if let Some(&id) = ids.get(sel as usize % ids.len().max(1)) {
                        let _ = m.teardown(id);
                    }
                }
            }
            prop_assert_eq!(m.len() + m.torn_down.len(), established);
            // No tunnel is both live and torn down.
            for &(id, _) in &m.torn_down {
                prop_assert!(m.get(id).is_none());
            }
        }
    }
}
