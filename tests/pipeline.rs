//! The paper's measurement pipeline, end to end: ground-truth topology ->
//! BGP stable routes -> AS-path extraction -> relationship inference
//! (Gao and Agarwal) -> re-annotated topology, with accuracy checks —
//! and the two route engines cross-validated on every dataset preset.

use miro_bgp::sim::{GaoRexford, Sim};
use miro_bgp::solver::{as_paths_to, RoutingState};
use miro_topology::gen::DatasetPreset;
use miro_topology::infer::{agarwal_infer, agreement, gao_infer, AgarwalParams, GaoParams};
use miro_topology::{GenParams, Rel};

fn small_world() -> miro_topology::Topology {
    DatasetPreset::Gao2005.params(0.012, 3).generate()
}

/// Gao inference over solver-produced AS paths recovers most
/// provider-customer links of the ground truth.
#[test]
fn gao_inference_recovers_most_relationships() {
    let truth = small_world();
    let dests: Vec<_> = truth.nodes().step_by(3).collect();
    let paths = as_paths_to(&truth, &dests);
    assert!(paths.len() > 5_000, "plenty of vantage paths: {}", paths.len());
    let inferred = gao_infer(&paths, GaoParams::default());
    let acc = agreement(&truth, &inferred);
    assert!(acc > 0.75, "Gao agreement too low: {acc}");
}

/// The Agarwal pipeline also recovers the bulk of the hierarchy; the
/// paper treats it as the secondary reference ("the Gao algorithm
/// produces more accurate inference results"), so allow it a lower bar —
/// and check the Table 5.1 signature that it labels far *fewer sibling*
/// links than Gao's algorithm (177 vs 687 at paper scale).
#[test]
fn agarwal_inference_is_reasonable_and_sibling_lighter() {
    let truth = small_world();
    let dests: Vec<_> = truth.nodes().step_by(3).collect();
    let paths = as_paths_to(&truth, &dests);
    let gao = gao_infer(&paths, GaoParams::default());
    let aga = agarwal_infer(&paths, AgarwalParams::default());
    let acc = agreement(&truth, &aga);
    assert!(acc > 0.55, "Agarwal agreement too low: {acc}");
    let count_rel = |t: &miro_topology::Topology, want: Rel| {
        t.nodes()
            .flat_map(|x| t.neighbors(x).iter().map(move |&(y, r)| (x, y, r)))
            .filter(|&(x, y, r)| x < y && r == want)
            .count()
    };
    assert!(
        count_rel(&aga, Rel::Sibling) <= count_rel(&gao, Rel::Sibling),
        "Agarwal should label fewer siblings ({} vs {})",
        count_rel(&aga, Rel::Sibling),
        count_rel(&gao, Rel::Sibling)
    );
    assert!(count_rel(&aga, Rel::Peer) > 0, "it must still find peering links");
}

/// Inference degrades gracefully with fewer vantage points (fewer paths):
/// accuracy with 1/8 of the destinations is below accuracy with all of
/// them, but both stay sane.
#[test]
fn inference_improves_with_more_vantage_points() {
    let truth = small_world();
    let few: Vec<_> = truth.nodes().step_by(24).collect();
    let many: Vec<_> = truth.nodes().step_by(3).collect();
    let acc_few = agreement(&truth, &gao_infer(&as_paths_to(&truth, &few), GaoParams::default()));
    let acc_many =
        agreement(&truth, &gao_infer(&as_paths_to(&truth, &many), GaoParams::default()));
    assert!(acc_many >= acc_few - 0.05, "more data should not hurt much: {acc_many} vs {acc_few}");
    assert!(acc_few > 0.5);
}

/// Engine cross-validation on every Table 5.1 preset: the closed-form
/// solver and the event-driven simulator agree on every node's selected
/// path (the stable state is unique under Guideline A).
#[test]
fn solver_and_simulator_agree_on_every_preset() {
    for preset in DatasetPreset::ALL {
        let t = preset.params(0.006, 9).generate();
        for d in t.nodes().step_by(37) {
            let st = RoutingState::solve(&t, d);
            let mut sim = Sim::new(&t, GaoRexford, d);
            assert!(sim.run(17, 50_000_000).converged(), "{preset:?} dest {d}");
            for x in t.nodes() {
                assert_eq!(
                    sim.selected(x).map(|p| p.to_vec()),
                    st.path(x),
                    "{preset:?}: engines disagree at node {x} for dest {d}"
                );
            }
        }
    }
}

/// Link failure: after failing the first hop of some node's path, the
/// simulator reconverges and the new state equals a fresh solve on the
/// edited topology.
#[test]
fn failure_reconvergence_matches_fresh_solve() {
    let t = GenParams::tiny(33).generate();
    let d = t.nodes().next().expect("non-empty");
    let mut sim = Sim::new(&t, GaoRexford, d);
    assert!(sim.run(5, 10_000_000).converged());
    // Fail the busiest first-hop link into d.
    let victim = t
        .neighbors(d)
        .iter()
        .map(|&(n, _)| n)
        .next()
        .expect("destination has neighbors");
    sim.fail_link(d, victim);
    assert!(sim.run(6, 10_000_000).converged());
    // Fresh solve on a rebuilt topology without that link.
    let mut b = miro_topology::TopologyBuilder::new();
    for x in t.nodes() {
        b.add_as(t.asn(x));
    }
    for x in t.nodes() {
        for &(y, rel) in t.neighbors(x) {
            if x < y && !(x == d && y == victim) && !(x == victim && y == d) {
                // `neighbors` reports what y is to x, which is exactly the
                // builder's `link(x, y, rel)` convention.
                b.link(t.asn(x), t.asn(y), rel);
            }
        }
    }
    let t2 = b.build().expect("valid");
    let st2 = RoutingState::solve(&t2, t2.node(t.asn(d)).expect("present"));
    for x in t.nodes() {
        let sim_path: Option<Vec<_>> =
            sim.selected(x).map(|p| p.iter().map(|&h| t.asn(h)).collect());
        let x2 = t2.node(t.asn(x)).expect("present");
        let solve_path: Option<Vec<_>> =
            st2.path(x2).map(|p| p.iter().map(|&h| t2.asn(h)).collect());
        assert_eq!(sim_path, solve_path, "post-failure state at {:?}", t.asn(x));
    }
}

/// The full ingest pipeline, end to end: a CAIDA-format snapshot on disk
/// -> `miro ingest` (the actual CLI entry point) -> JSON cache ->
/// `miro-eval`'s dataset loader -> a whole-network what-if solve over
/// the loaded graph.
#[test]
fn ingest_cache_feeds_the_eval_pipeline() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/data/caida_sample.txt");
    let cache = std::env::temp_dir().join("miro_pipeline_ingest.cache.json");
    let report = miro_cli::ingest::run(&[
        fixture.to_string(),
        "--out".into(),
        cache.display().to_string(),
        "--name".into(),
        "caida-sample".into(),
    ])
    .expect("ingest succeeds");
    assert!(report.contains("accepted 23 edges over 16 ASes"), "{report}");

    let ds = miro_eval::datasets::Dataset::load_cache(&cache.display().to_string())
        .expect("cache loads");
    assert_eq!(ds.name(), "caida-sample");
    assert_eq!(ds.census.nodes, 16);
    assert_eq!(ds.census.edges, 23);

    // One solve per destination through the parallel what-if engine; for
    // each, knock out the destination's first tree link and confirm the
    // delta answer matches a full masked re-solve.
    let topo = &ds.topo;
    let dests: Vec<_> = topo.nodes().collect();
    let checks = miro_bgp::engine::par_over_dests_whatif(topo, &dests, 2, |d, wi| {
        let reachable = wi.base().reachable_count();
        let Some((v, next)) = topo
            .nodes()
            .filter(|&v| v != d)
            .find_map(|v| wi.base().best(v).map(|r| (v, r.next)))
        else {
            return (reachable, true);
        };
        let delta_best = wi.without_link(v, next, |st| st.best(v));
        let full = RoutingState::solve_without_link(topo, d, v, next);
        (reachable, delta_best == full.best(v))
    });
    assert_eq!(checks.len(), 16);
    for (reachable, delta_ok) in checks {
        assert_eq!(reachable, 16, "the fixture is connected");
        assert!(delta_ok, "what-if delta must match the masked re-solve");
    }
}

/// `solve_without_link` agrees with a fresh solve on the edited topology
/// for every link incident to sampled destinations — the cheap what-if
/// the control plane uses on withdrawals.
#[test]
fn masked_solve_matches_topology_rebuild() {
    let t = GenParams::tiny(71).generate();
    let d = t.nodes().next().expect("non-empty");
    for &(victim, _) in t.neighbors(d).iter().take(3) {
        let masked = RoutingState::solve_without_link(&t, d, d, victim);
        // Rebuild without the link.
        let mut b = miro_topology::TopologyBuilder::new();
        for x in t.nodes() {
            b.add_as(t.asn(x));
        }
        for x in t.nodes() {
            for &(y, rel) in t.neighbors(x) {
                if x < y && !(x == d.min(victim) && y == d.max(victim)) {
                    b.link(t.asn(x), t.asn(y), rel);
                }
            }
        }
        let t2 = b.build().expect("valid");
        let st2 = RoutingState::solve(&t2, t2.node(t.asn(d)).expect("present"));
        for x in t.nodes() {
            let masked_path: Option<Vec<_>> =
                masked.path(x).map(|p| p.iter().map(|&h| t.asn(h)).collect());
            let x2 = t2.node(t.asn(x)).expect("present");
            let rebuilt_path: Option<Vec<_>> =
                st2.path(x2).map(|p| p.iter().map(|&h| t2.asn(h)).collect());
            assert_eq!(masked_path, rebuilt_path, "node {:?}", t.asn(x));
            // Candidate sets agree too (the MIRO-relevant part).
            let masked_cands = masked.candidates(x).len();
            let rebuilt_cands = st2.candidates(x2).len();
            assert_eq!(masked_cands, rebuilt_cands, "candidates at {:?}", t.asn(x));
        }
    }
}
