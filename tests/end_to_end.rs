//! End-to-end integration: control plane (negotiation) and data plane
//! (encapsulation + intra-AS forwarding) working together across crates,
//! on the paper's running example.

use miro_bgp::solver::RoutingState;
use miro_core::negotiate::Constraint;
use miro_core::node::MiroNetwork;
use miro_dataplane::encap;
use miro_dataplane::intra::{figure_4_1, Forwarded};
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Header};
use miro_dataplane::lpm::Prefix;
use miro_topology::gen::figure_1_1;

/// Negotiate the Figure 3.1 tunnel, then push a packet through the
/// negotiated path using the wire-format encapsulation: the decapsulated
/// bytes at the downstream AS must be the original packet, and the shim
/// must carry the leased tunnel id.
#[test]
fn negotiated_tunnel_carries_real_packets() {
    let (topo, [a, b, c, _d, e, f]) = figure_1_1();
    let st = RoutingState::solve(&topo, f);
    let mut net = MiroNetwork::new(&topo);
    let tid = net
        .negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250)
        .expect("paper example succeeds");
    let lease = &net.leases()[0];
    assert_eq!(lease.path, vec![c, f], "the negotiated alternate is BCF");

    // Data plane: A encapsulates toward B's endpoint with the leased id.
    let payload = b"probe";
    let inner = Ipv4Header::new(
        Ipv4Addr4::new(10, 0, 0, 1),
        Ipv4Addr4::new(12, 34, 56, 78),
        17,
        payload.len() as u16,
    )
    .emit_with_payload(payload);
    let endpoint = Ipv4Addr4::new(20, 0, 0, 2);
    let wire = encap::encapsulate(&inner, Ipv4Addr4::new(10, 0, 0, 254), endpoint, tid.0)
        .expect("fits");
    let (outer, shim, revealed) = encap::decapsulate(wire).expect("well-formed");
    assert_eq!(outer.dst, endpoint);
    assert_eq!(shim.tunnel_id, tid.0);
    assert_eq!(revealed, inner);
}

/// The Figure 4.1 story joined up: the AS fabric's iBGP produces distinct
/// selections at distinct routers; MIRO sells the non-default path; the
/// tunnel ends at the right edge router; directed forwarding overrides
/// the default exit.
#[test]
fn intra_as_fabric_honors_miro_tunnel() {
    let u_prefix = Prefix::new(Ipv4Addr4::new(60, 0, 0, 0), 8);
    let mut fabric = figure_4_1(u_prefix);
    // The fabric knows both VU and WU even though each router selects one.
    let alternates = fabric.valid_as_paths(u_prefix);
    assert_eq!(alternates.len(), 2);

    // MIRO control plane decision (abstracted): the customer leased the
    // VU path with tunnel id 7; install directed forwarding at R2.
    fabric.router_mut(1).tunnel_table.insert(7, 20);

    let inner = Ipv4Header::new(
        Ipv4Addr4::new(10, 1, 1, 1),
        Ipv4Addr4::new(60, 1, 2, 3),
        6,
        3,
    )
    .emit_with_payload(b"abc");
    let wire = encap::encapsulate(
        &inner,
        Ipv4Addr4::new(10, 1, 1, 254),
        fabric.router(1).addr,
        7,
    )
    .expect("fits");
    match fabric.forward(0, wire) {
        Forwarded::TunnelExit { link, inner: got, endpoint_router } => {
            assert_eq!(link, 20, "directed forwarding picks the V exit link");
            assert_eq!(endpoint_router, 1);
            assert_eq!(got, inner);
        }
        other => panic!("expected tunnel exit, got {other:?}"),
    }

    // Non-tunneled traffic to the same prefix still follows the default.
    let plain = Ipv4Header::new(
        Ipv4Addr4::new(10, 1, 1, 1),
        Ipv4Addr4::new(60, 9, 9, 9),
        6,
        0,
    )
    .emit_with_payload(b"");
    match fabric.forward(0, plain) {
        Forwarded::Exit { link, .. } => assert_eq!(link, 20, "R1 defaults via R2 (IGP)"),
        other => panic!("expected plain exit, got {other:?}"),
    }
}

/// Keepalive lifecycle across the network harness: healthy tunnels
/// survive arbitrary ticking, silent peers expire, and the ledger and
/// per-node tables never disagree.
#[test]
fn tunnel_soft_state_is_consistent() {
    let (topo, [a, b, _c, d, e, f]) = figure_1_1();
    let st = RoutingState::solve(&topo, f);
    let mut net = MiroNetwork::new(&topo);
    // D is neither adjacent to B nor on a default path through it, so the
    // conservative /e export would refuse it; B sells flexibly here.
    net.configure(
        b,
        miro_core::node::ResponderConfig {
            policy: miro_core::export::ExportPolicy::Flexible,
            ..Default::default()
        },
    );
    let t1 = net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).expect("ok");
    let t2 = net.negotiate(&st, d, b, vec![Constraint::AvoidAs(e)], 250).expect("ok");
    assert_ne!(t1, t2);
    for _ in 0..20 {
        net.tick(5, 30);
        for lease in net.leases() {
            assert!(net.tunnels(lease.downstream).get(lease.id).is_some());
            assert!(net.tunnels(lease.upstream).get(lease.id).is_some());
        }
    }
    assert_eq!(net.leases().len(), 2);
    // t1's upstream goes silent; only t1 dies.
    net.silence(t1, 31, 30);
    assert_eq!(net.leases().len(), 1);
    assert_eq!(net.leases()[0].id, t2);
    assert!(net.tunnels(a).get(t1).is_none());
    assert!(net.tunnels(b).get(t1).is_none());
}

/// The complete data-plane story across two ASes: the upstream AS
/// classifies traffic (section 3.5), encapsulates the matching flows
/// toward the downstream AS's RCP-granted tunnel (sections 4.1-4.3), the
/// packet crosses the inter-AS link through a lossy transport, and the
/// downstream fabric decapsulates and directed-forwards out the
/// negotiated exit link while default traffic keeps the default exit.
#[test]
fn cross_as_walk_classifier_tunnel_rcp() {
    use miro_dataplane::classifier::{Action, Classifier, FlowKey, Match};
    use miro_dataplane::fault::{FaultyLink, LinkEvent};
    use miro_dataplane::rcp::Rcp;
    
    // Downstream AS X: the Figure 4.1 fabric under an RCP controller.
    let u_prefix = miro_dataplane::lpm::Prefix::new(Ipv4Addr4::new(60, 0, 0, 0), 8);
    let mut rcp = Rcp::new(figure_4_1(u_prefix));
    // The MIRO negotiation concluded on the VU path; the controller
    // grants the tunnel and installs directed forwarding.
    let tid = rcp.grant_tunnel(u_prefix, &[500, 600], 0).expect("VU is sellable");
    let endpoint = rcp.fabric().router(rcp.tunnel(tid).expect("live").egress_router).addr;

    // Upstream AS Y: voice traffic takes the tunnel, the rest defaults.
    let classifier = Classifier::new(vec![(
        Match { tos: Some(0xb8), ..Default::default() },
        Action::Tunnel(tid),
    )]);
    let mut link = FaultyLink::new(7, 0, 0); // clean link for the walk

    let send = |tos: u8, rcp: &Rcp, classifier: &Classifier, link: &mut FaultyLink| {
        let mut hdr = Ipv4Header::new(
            Ipv4Addr4::new(10, 9, 9, 9),
            Ipv4Addr4::new(60, 1, 2, 3),
            17,
            5,
        );
        hdr.dscp_ecn = tos;
        let inner = hdr.emit_with_payload(b"voice");
        let key = FlowKey {
            src: hdr.src,
            dst: hdr.dst,
            src_port: 4000,
            dst_port: 5060,
            protocol: 17,
            tos,
        };
        let wire = match classifier.classify(&key) {
            Action::Tunnel(id) => {
                encap::encapsulate(&inner, Ipv4Addr4::new(10, 9, 9, 254), endpoint, id)
                    .expect("fits")
            }
            Action::Default => inner.clone(),
            Action::Drop => panic!("unexpected drop"),
        };
        match link.transmit(wire) {
            LinkEvent::Delivered(pkt) => rcp.forward(0, pkt),
            other => panic!("clean link must deliver: {other:?}"),
        }
    };

    // Voice flow: through the tunnel, out the V link (20).
    match send(0xb8, &rcp, &classifier, &mut link) {
        miro_dataplane::intra::Forwarded::TunnelExit { link, inner, .. } => {
            assert_eq!(link, 20, "negotiated exit");
            let (h, payload) = Ipv4Header::parse(inner).expect("intact");
            assert_eq!(h.dscp_ecn, 0xb8);
            assert_eq!(&payload[..], b"voice");
        }
        other => panic!("voice must take the tunnel: {other:?}"),
    }
    // Best-effort flow: destination-based forwarding on the default exit.
    match send(0, &rcp, &classifier, &mut link) {
        miro_dataplane::intra::Forwarded::Exit { link, .. } => {
            assert_eq!(link, 20, "R1 defaults via R2 (IGP tie-break)")
        }
        other => panic!("default traffic exits normally: {other:?}"),
    }

    // The controller's health monitor reaps the tunnel when keepalives
    // stop; tunneled packets then go nowhere while default traffic is
    // unaffected — the soft-state guarantee of section 4.3, at packet
    // granularity.
    rcp.health_sweep(100, 30);
    match send(0xb8, &rcp, &classifier, &mut link) {
        miro_dataplane::intra::Forwarded::NoRoute => {}
        other => panic!("expired tunnel must drop: {other:?}"),
    }
    match send(0, &rcp, &classifier, &mut link) {
        miro_dataplane::intra::Forwarded::Exit { .. } => {}
        other => panic!("default path unaffected by tunnel expiry: {other:?}"),
    }
}

/// Wire-format interop: a negotiation transcript captured from the
/// in-process harness re-encodes through the MIRO control codec and
/// parses back identically — the byte stream a TCP deployment would see.
#[test]
fn negotiation_transcript_round_trips_on_the_wire() {
    let (topo, [a, b, _c, _d, e, f]) = figure_1_1();
    let st = RoutingState::solve(&topo, f);
    let mut net = MiroNetwork::new(&topo);
    net.negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250).expect("ok");
    net.tick(10, 30);
    let mut stream = Vec::new();
    for (_, _, msg) in &net.log {
        stream.extend(miro_core::wire::emit(msg).expect("every message encodes"));
    }
    let mut at = 0;
    let mut decoded = Vec::new();
    while at < stream.len() {
        let (msg, used) = miro_core::wire::parse(&stream[at..]).expect("parses");
        decoded.push(msg);
        at += used;
    }
    let originals: Vec<_> = net.log.iter().map(|(_, _, m)| m.clone()).collect();
    assert_eq!(decoded, originals);
    assert!(decoded.len() >= 5, "request, offers, accept, established, keepalive");
}

/// The deployable endpoints over a lossy transport: 30% of control
/// messages are dropped, yet the requester's retry machinery still lands
/// the tunnel (or fails cleanly when the budget of retries runs out).
#[test]
fn endpoint_negotiation_survives_message_loss() {
    use miro_core::endpoint::{RequesterEndpoint, RequestState, ResponderEndpoint};
    use miro_core::export::ExportPolicy;
    use miro_dataplane::fault::{FaultyLink, LinkEvent};
    use miro_topology::Rel;

    let (topo, [_a, b, _c, _d, e, f]) = figure_1_1();
    let st = RoutingState::solve(&topo, f);
    let mut successes = 0;
    let mut attempts = 0;
    for seed in 0..20u64 {
        let mut req = RequesterEndpoint::new(b);
        req.max_retries = 8; // a lossy channel earns a real retry budget
        req.timeout = 10;
        let mut resp = ResponderEndpoint::new(b, &st, ExportPolicy::RespectExport, Rel::Customer);
        // A 30%-lossy control channel in each direction. MIRO control
        // messages are self-contained datagrams here, so a drop loses
        // whole messages, never partial bytes.
        let mut to_resp = FaultyLink::new(seed, 300, 0);
        let mut to_req = FaultyLink::new(seed ^ 0xBEEF, 300, 0);
        let id = req.request(f, vec![Constraint::AvoidAs(e)], 250, 0);
        attempts += 1;
        for now in 0..200u64 {
            req.tick(now);
            let bytes = req.output();
            if !bytes.is_empty() {
                if let LinkEvent::Delivered(pkt) = to_resp.transmit(bytes.into()) {
                    resp.input(&pkt, now);
                }
            }
            let bytes = resp.output();
            if !bytes.is_empty() {
                if let LinkEvent::Delivered(pkt) = to_req.transmit(bytes.into()) {
                    req.input(&pkt, now);
                }
            }
            if matches!(
                req.state(id),
                Some(RequestState::Established(_)) | Some(RequestState::Failed(_))
            ) {
                break;
            }
        }
        match req.state(id) {
            Some(RequestState::Established(tid)) => {
                successes += 1;
                assert!(resp.tunnels.get(tid).is_some(), "both sides agree");
            }
            Some(RequestState::Failed(_)) => {} // clean failure: acceptable
            other => panic!("negotiation must terminate, got {other:?}"),
        }
    }
    // With 8 retransmissions against 30% loss, nearly all must succeed.
    assert!(
        successes * 10 >= attempts * 8,
        "only {successes}/{attempts} negotiations survived 30% loss"
    );
}
