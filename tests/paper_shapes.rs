//! The headline reproduction checks: every table/figure regenerated at
//! test scale must exhibit the *shape* the paper reports — who wins, by
//! roughly what factor, where the crossovers fall. (Absolute values are
//! documented in EXPERIMENTS.md; these tests pin the orderings.)

use miro_eval::avoid::{sample_probes, table5_2_row, table5_3_rows};
use miro_eval::convergence_exp::{run_fig7_1, run_fig7_2};
use miro_eval::datasets::{table5_1, Dataset, EvalConfig};
use miro_eval::{deploy, routes};
use miro_topology::gen::DatasetPreset;

fn cfg() -> EvalConfig {
    EvalConfig { scale: 0.015, seed: 77, dest_samples: 40, src_samples: 30, threads: 4 }
}

/// Table 5.1: the four datasets have the paper's relative sizes and link
/// mix (P/C >> peering >> sibling; Agarwal's sibling count lowest of its
/// year-peers).
#[test]
fn table5_1_shape() {
    let cfg = cfg();
    let ds = Dataset::build_all(&cfg);
    let rows = table5_1(&ds);
    for r in &rows {
        assert!(r.pc_links > 5 * r.peering_links, "{}: P/C dominates", r.name);
        assert!(r.peering_links > r.sibling_links, "{}", r.name);
    }
    assert!(rows[0].nodes < rows[1].nodes && rows[1].nodes < rows[2].nodes);
}

/// Table 5.2 across *all four datasets*: Single < Multi/s <= Multi/e <=
/// Multi/a <= Source, and MIRO at least 1.5x the single-path rate — the
/// paper's central claim (roughly 30% -> 65-76%).
#[test]
fn table5_2_shape_on_all_datasets() {
    let cfg = cfg();
    for preset in DatasetPreset::ALL {
        let ds = Dataset::build(preset, &cfg);
        let probes = sample_probes(&ds, &cfg);
        assert!(probes.len() > 150, "{preset:?}: {} triples", probes.len());
        let row = table5_2_row(ds.name(), &probes);
        assert!(row.single_pct < row.multi_s_pct, "{row:?}");
        assert!(row.multi_s_pct <= row.multi_e_pct + 1e-9, "{row:?}");
        assert!(row.multi_e_pct <= row.multi_a_pct + 1e-9, "{row:?}");
        assert!(row.multi_a_pct <= row.source_pct + 1e-9, "{row:?}");
        assert!(
            row.multi_s_pct > 1.5 * row.single_pct,
            "{preset:?}: MIRO should at least 1.5x the single-path rate: {row:?}"
        );
        assert!(row.source_pct > 70.0, "{preset:?}: source routing bound: {row:?}");
    }
}

/// Table 5.3: policy relaxation trades fewer negotiations for more
/// candidate paths shipped — the paper's 3.30 -> 2.43 ASes and 43 -> 164
/// paths trend (at our scale the magnitudes are smaller; the direction
/// must hold).
#[test]
fn table5_3_shape() {
    let cfg = cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let probes = sample_probes(&ds, &cfg);
    let rows = table5_3_rows(&probes);
    assert!(rows[2].as_per_tuple <= rows[0].as_per_tuple + 0.15);
    assert!(rows[2].path_per_tuple >= rows[0].path_per_tuple);
    assert!(rows[0].success_pct <= rows[2].success_pct + 1e-9);
}

/// Figures 5.2/5.3: relaxing policy shifts the available-route CDF right,
/// and only a small fraction of pairs is stuck with no alternate.
#[test]
fn fig5_2_shape() {
    let cfg = cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let r = routes::fig5_2(&ds, &cfg);
    let s = &r.series;
    // 1-hop: strict <= export <= flexible on the median.
    assert!(s[0].percentile(50) <= s[1].percentile(50));
    assert!(s[1].percentile(50) <= s[2].percentile(50));
    // Worst case (1-hop strict): most pairs still have an alternate.
    assert!(s[0].no_alternates_pct() < 40.0, "{}", s[0].no_alternates_pct());
    // Best case (path flexible): hardly anyone is stuck.
    assert!(s[5].no_alternates_pct() < 12.0, "{}", s[5].no_alternates_pct());
}

/// Figures 5.4/5.5: a few high-degree adopters give most of the benefit;
/// low-degree-first gives little until very late. (The paper: top 1% ->
/// 50-75% of the gain; <10% until 95% deployment edge-first.)
#[test]
fn fig5_4_shape() {
    let cfg = cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let probes = sample_probes(&ds, &cfg);
    let r = deploy::fig5_4(&ds, &probes);
    let at = |c: &deploy::DeployCurve, f: f64| {
        c.points.iter().find(|p| (p.0 - f).abs() < 1e-12).expect("swept").1
    };
    let flex = &r.by_degree[2];
    assert!(at(flex, 0.01) > 0.25, "top 1%: {}", at(flex, 0.01));
    assert!(at(flex, 0.05) > 0.45, "top 5%: {}", at(flex, 0.05));
    assert!((at(flex, 1.0) - 1.0).abs() < 1e-9);
    assert!(
        at(&r.low_degree_first, 0.05) < at(flex, 0.05) / 2.0,
        "edge-first must trail core-first by a wide margin: {} vs {}",
        at(&r.low_degree_first, 0.05),
        at(flex, 0.05)
    );
}

/// Figures 7.1/7.2: the exact qualitative outcomes of Chapter 7.
#[test]
fn fig7_shapes() {
    let f1 = run_fig7_1(250);
    assert!(!f1[0].converged && f1[1].converged && f1[2].converged);
    let f2 = run_fig7_2(250);
    assert!(!f2[0].converged && f2[1].converged && f2[2].converged);
    // Oscillation is sustained, not transient.
    assert!(f1[0].teardowns > 100);
    assert!(f2[0].teardowns > 100);
}
