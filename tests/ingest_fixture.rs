//! Golden-fixture test for the streaming ingest path.
//!
//! `data/caida_sample.txt` is a hand-written snapshot in the real CAIDA
//! `as1|as2|rel` grammar (see its header for provenance). This test pins
//! the parse down to exact counters, checks the graph's shape, and runs
//! the paper's measurement pipeline over it: solver paths in, Gao and
//! Agarwal relationship inference out, both agreeing with the fixture's
//! ground-truth annotations.

use miro_bgp::solver::as_paths_to;
use miro_topology::infer::{agarwal_infer, agreement, gao_infer, AgarwalParams, GaoParams};
use miro_topology::io::stream;
use miro_topology::stats::link_census;
use miro_topology::{AsId, Topology};
use std::io::BufReader;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/caida_sample.txt");

fn load() -> (Topology, stream::ParseStats) {
    let f = std::fs::File::open(FIXTURE).expect("fixture present");
    stream::parse(BufReader::new(f)).expect("fixture parses")
}

#[test]
fn fixture_parses_with_exact_counters() {
    let (topo, stats) = load();
    assert_eq!(stats.edges, 23, "distinct links");
    assert_eq!(stats.duplicate_edges, 1, "the planted duplicate");
    assert_eq!(stats.self_loops, 1, "the planted self-loop");
    assert_eq!(stats.nodes, 16);
    // Every non-comment line is one of the records above.
    assert_eq!(stats.lines, stats.comments + 23 + 1 + 1);
    assert_eq!(topo.num_nodes(), 16);
    assert_eq!(topo.num_edges(), 23);
    // The self-loop's AS never enters the graph.
    assert!(topo.node(AsId(7)).is_none(), "self-loop endpoint must not be interned");
}

#[test]
fn fixture_census_and_degrees_match_the_header() {
    let (topo, _) = load();
    let census = link_census(&topo);
    assert_eq!(census.pc_links, 18);
    assert_eq!(census.peering_links, 4);
    assert_eq!(census.sibling_links, 1);
    assert_eq!(census.stubs, 8);
    assert_eq!(census.multihomed_stubs, 2);
    let deg = |asn: u32| topo.neighbors(topo.node(AsId(asn)).expect("present")).len();
    assert_eq!(deg(10), 6, "AS 10: two providers, a peer, a sibling, two customers");
    assert_eq!(deg(20), 6);
    let max_deg = topo.nodes().map(|x| topo.neighbors(x).len()).max().unwrap();
    assert_eq!(max_deg, 6);
    assert_eq!(deg(400), 1, "singly-homed stub");
    // The hierarchy is a DAG — providers can be topologically ordered.
    assert!(topo.customer_to_provider_order().is_some());
}

#[test]
fn fixture_supports_the_inference_pipeline() {
    let (truth, _) = load();
    let dests: Vec<_> = truth.nodes().collect();
    let paths = as_paths_to(&truth, &dests);
    assert!(paths.len() >= 16 * 15 / 2, "paths from every vantage: {}", paths.len());
    let gao = gao_infer(&paths, GaoParams::default());
    let aga = agarwal_infer(&paths, AgarwalParams::default());
    // The pipeline is deterministic, so these pin today's exact scores
    // (0.565 / 0.652 / 0.652) with a little slack. Gao's degree-ratio
    // heuristics are tuned for Internet-sized graphs, so its agreement
    // on a 16-node fixture sits well below the ~0.8 it reaches at scale.
    let gao_acc = agreement(&truth, &gao);
    let aga_acc = agreement(&truth, &aga);
    assert!(gao_acc > 0.55, "Gao agreement on the fixture: {gao_acc}");
    assert!(aga_acc > 0.6, "Agarwal agreement on the fixture: {aga_acc}");
    // The two algorithms broadly agree with each other as well.
    let cross = agreement(&gao, &aga);
    assert!(cross > 0.6, "Gao vs Agarwal cross-agreement: {cross}");
}
