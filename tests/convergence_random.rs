//! Randomized versions of the Chapter 7 theorems: on random hierarchical
//! topologies with random tunnel desires, every safety guideline must
//! converge under every fair activation schedule we throw at it.
//! (The *unrestricted* configuration is allowed to diverge — that is the
//! point of the counter-examples — so no assertion is made there.)

use miro_bgp::solver::RoutingState;
use miro_convergence::{Desire, Guideline, TunnelSim};
use miro_topology::{GenParams, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Random desires: pick sources, walk their default paths, and ask an
/// on-path AS for one of its real candidates (what MIRO negotiations
/// actually produce).
fn random_desires(
    topo: &miro_topology::Topology,
    rng: &mut StdRng,
    count: usize,
) -> Vec<Desire> {
    let nodes: Vec<NodeId> = topo.nodes().collect();
    let mut out = Vec::new();
    let mut guard = 0;
    while out.len() < count && guard < count * 200 {
        guard += 1;
        let dest = nodes[rng.gen_range(0..nodes.len())];
        let req = nodes[rng.gen_range(0..nodes.len())];
        if req == dest {
            continue;
        }
        let st = RoutingState::solve(topo, dest);
        let Some(path) = st.path(req) else { continue };
        if path.len() < 2 {
            continue;
        }
        let responder = path[rng.gen_range(0..path.len() - 1)];
        if responder == dest || responder == req {
            continue;
        }
        let cands = st.candidates(responder);
        if cands.is_empty() {
            continue;
        }
        let wanted = cands[rng.gen_range(0..cands.len())].path.clone();
        out.push(Desire { requester: req, responder, dest, wanted });
    }
    out
}

fn run_guideline(seed: u64, guideline: Guideline) {
    let topo = GenParams {
        name: "conv".into(),
        num_nodes: 90,
        target_pc_links: 150,
        target_peer_links: 14,
        target_sibling_links: 3,
        lowtier_peering: false,
        seed,
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
    let desires = random_desires(&topo, &mut rng, 12);
    assert!(!desires.is_empty());
    let config = match guideline {
        Guideline::D => {
            // A random *total* order per requester over all ASes: total
            // orders are valid strict partial orders and exercise the gate.
            let mut orders: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for d in &desires {
                orders.entry(d.requester).or_insert_with(|| {
                    let mut v: Vec<NodeId> = topo.nodes().collect();
                    // Deterministic shuffle.
                    for i in (1..v.len()).rev() {
                        v.swap(i, rng.gen_range(0..=i));
                    }
                    v
                });
            }
            Guideline::config_with_order(orders)
        }
        g => g.config(),
    };
    for sched_seed in 0..3u64 {
        let mut sim = TunnelSim::new(&topo, config.clone(), desires.clone());
        let out = sim.run(sched_seed ^ seed, 500);
        assert!(
            out.converged(),
            "{guideline:?} must converge (topo seed {seed}, sched {sched_seed})"
        );
    }
}

#[test]
fn guideline_b_always_converges() {
    for seed in 0..6 {
        run_guideline(seed, Guideline::B);
    }
}

#[test]
fn guideline_c_always_converges() {
    for seed in 0..6 {
        run_guideline(seed, Guideline::C);
    }
}

#[test]
fn guideline_d_always_converges() {
    for seed in 0..6 {
        run_guideline(seed, Guideline::D);
    }
}

#[test]
fn guideline_e_always_converges() {
    for seed in 0..6 {
        run_guideline(seed, Guideline::E);
    }
}

/// Mixing guidelines (section 7.4): desires split between B-style and
/// E-style constraints still converge. We model the mix with the
/// strictest common transport (pinned BGP) and mixed offer rules by
/// running the two configurations on disjoint desire subsets over the
/// same topology — stability of each layer implies stability of the
/// union because pinned-BGP tunnels never interact.
#[test]
fn mixed_guidelines_converge() {
    let topo = GenParams::tiny(61).generate();
    let mut rng = StdRng::seed_from_u64(0xA1);
    let desires = random_desires(&topo, &mut rng, 16);
    let (left, right) = desires.split_at(desires.len() / 2);
    let mut sim_b = TunnelSim::new(&topo, Guideline::B.config(), left.to_vec());
    let mut sim_e = TunnelSim::new(&topo, Guideline::E.config(), right.to_vec());
    assert!(sim_b.run(1, 500).converged());
    assert!(sim_e.run(2, 500).converged());
}

/// Convergence is schedule-independent for the safe guidelines: the set
/// of established tunnels at quiescence is identical across schedules
/// (the stable state is unique, as the constructive proofs build it).
#[test]
fn guideline_e_stable_state_is_schedule_independent() {
    let topo = GenParams::tiny(62).generate();
    let mut rng = StdRng::seed_from_u64(0xB2);
    let desires = random_desires(&topo, &mut rng, 10);
    let mut reference: Option<Vec<bool>> = None;
    for sched in 0..8u64 {
        let mut sim = TunnelSim::new(&topo, Guideline::E.config(), desires.clone());
        assert!(sim.run(sched, 500).converged());
        let state: Vec<bool> =
            (0..desires.len()).map(|i| sim.is_established(i)).collect();
        match &reference {
            None => reference = Some(state),
            Some(r) => assert_eq!(&state, r, "schedule {sched} reached a different state"),
        }
    }
}
