//! Full-scale reproduction pins: these run the *default* evaluation
//! configuration (5% topologies, full sample counts) and assert the
//! EXPERIMENTS.md numbers within tolerance. They are `#[ignore]`d so
//! `cargo test` stays fast; run them with
//!
//! ```sh
//! cargo test --release --test full_reproduction -- --ignored
//! ```

use miro_eval::avoid::{sample_probes, table5_2_row};
use miro_eval::datasets::{Dataset, EvalConfig};
use miro_eval::{deploy, inbound};
use miro_topology::gen::DatasetPreset;

fn default_cfg() -> EvalConfig {
    EvalConfig::default()
}

/// Table 5.2 at default scale: the numbers recorded in EXPERIMENTS.md,
/// within +-3 percentage points (sampling noise across seeds).
#[test]
#[ignore = "full-scale reproduction; run with -- --ignored"]
fn table5_2_default_scale_matches_experiments_md() {
    let cfg = default_cfg();
    let expected = [
        (DatasetPreset::Gao2000, 28.3, 66.2, 73.8, 73.9, 87.1),
        (DatasetPreset::Gao2003, 34.6, 68.1, 75.7, 75.9, 88.0),
        (DatasetPreset::Gao2005, 33.3, 69.9, 75.4, 75.6, 88.4),
        (DatasetPreset::Agarwal2004, 33.5, 68.1, 74.3, 74.3, 89.6),
    ];
    for (preset, single, s, e, a, source) in expected {
        let ds = Dataset::build(preset, &cfg);
        let probes = sample_probes(&ds, &cfg);
        let row = table5_2_row(ds.name(), &probes);
        let close = |got: f64, want: f64| (got - want).abs() <= 3.0;
        assert!(close(row.single_pct, single), "{preset:?} single: {row:?}");
        assert!(close(row.multi_s_pct, s), "{preset:?} /s: {row:?}");
        assert!(close(row.multi_e_pct, e), "{preset:?} /e: {row:?}");
        assert!(close(row.multi_a_pct, a), "{preset:?} /a: {row:?}");
        assert!(close(row.source_pct, source), "{preset:?} source: {row:?}");
    }
}

/// Figure 5.4 at default scale: the adoption-curve anchors of
/// EXPERIMENTS.md (top 0.2% ~= 27%, top 1% ~= 53% of the gain).
#[test]
#[ignore = "full-scale reproduction; run with -- --ignored"]
fn fig5_4_default_scale_matches_experiments_md() {
    let cfg = default_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let probes = sample_probes(&ds, &cfg);
    let r = deploy::fig5_4(&ds, &probes);
    let at = |c: &deploy::DeployCurve, f: f64| {
        c.points.iter().find(|p| (p.0 - f).abs() < 1e-12).expect("swept").1
    };
    let flex = &r.by_degree[2];
    assert!((at(flex, 0.002) - 0.27).abs() < 0.08, "top 0.2%: {}", at(flex, 0.002));
    assert!((at(flex, 0.01) - 0.53).abs() < 0.08, "top 1%: {}", at(flex, 0.01));
    assert!(at(&r.low_degree_first, 0.25) < 0.05, "edge-first stays near zero");
}

/// Figures 5.6/5.7 at default scale: the EXPERIMENTS.md CDF anchors and
/// the power-node distance composition (paper: 68% two hops away).
#[test]
#[ignore = "full-scale reproduction; run with -- --ignored"]
fn fig5_6_default_scale_matches_experiments_md() {
    let cfg = default_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let r = inbound::fig5_6(&ds, &cfg);
    assert!(r.stubs_evaluated >= 100);
    assert!((r.cdf_at(0, 0, 0.10) - 0.95).abs() < 0.06, "strict/convert >=10%");
    assert!((r.cdf_at(1, 0, 0.10) - 1.00).abs() < 0.03, "flexible/convert >=10%");
    assert!((r.cdf_at(1, 1, 0.10) - 0.95).abs() < 0.07, "flexible/indep >=10%");
    let (_, two_hops) = r.power_distance_stats();
    assert!(
        (two_hops - 0.67).abs() < 0.12,
        "power nodes two hops away (paper 68%): {two_hops}"
    );
}
