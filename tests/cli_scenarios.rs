//! Keep the shipped demo scenario honest: run `data/demo.miro` through
//! the shell and check the narrative beats.

#[test]
fn demo_scenario_plays_through() {
    let script = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/data/demo.miro"),
    )
    .expect("demo scenario ships with the repo");
    // Rebase the `load` path onto the manifest dir so the test is
    // cwd-independent.
    let script = script.replace(
        "load data/figure_1_1.txt",
        &format!("load {}/data/figure_1_1.txt", env!("CARGO_MANIFEST_DIR")),
    );
    let mut repl = miro_cli::Repl::new();
    let out = repl.run_script(&script);
    assert!(out.contains("loaded topology: 6 ASes, 8 links"), "{out}");
    assert!(out.contains("tunnel 0 established"), "{out}");
    assert!(out.contains("AS1 buys [3 6] from AS2 at price 180"), "{out}");
    assert!(out.contains("lease(s) dropped"), "{out}");
    assert!(!out.contains("error:"), "scenario must be clean: {out}");
    assert!(out.trim_end().ends_with("bye"), "{out}");
}

/// The shipped figure_1_1.txt matches the programmatic figure_1_1().
#[test]
fn shipped_topology_file_matches_the_figure()  {
    let text = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/data/figure_1_1.txt"),
    )
    .expect("data file ships with the repo");
    let from_file = miro_topology::io::from_text(&text).expect("parses");
    let (programmatic, _) = miro_topology::gen::figure_1_1();
    assert_eq!(
        miro_topology::io::to_text(&from_file),
        miro_topology::io::to_text(&programmatic),
        "data/figure_1_1.txt drifted from gen::figure_1_1()"
    );
}
